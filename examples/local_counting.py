#!/usr/bin/env python3
"""Local triangle counting with confidence intervals.

Demonstrates two library extensions built on the paper's machinery:

* **local counts** — :class:`LocalSubgraphCounter` taps the estimator's
  per-instance contributions (the ``instance_observers`` hook) and
  maintains unbiased per-vertex triangle estimates, the quantity behind
  the paper's anomaly-detection motivation;
* **variance analysis** — :func:`repeated_trials` +
  :func:`summarize_trials` turn repeated runs into a confidence interval
  for the global count, the statistical summary behind every paper table.

Run:  python examples/local_counting.py
"""

from repro import ExactCounter, GPSHeuristicWeight, WSD, build_stream, load_dataset
from repro.estimators import (
    LocalSubgraphCounter,
    repeated_trials,
    summarize_trials,
)


def main() -> None:
    edges = load_dataset("com-YT", scale=0.4, seed=0)
    stream = build_stream(edges, "light", beta=0.2, rng=1)
    truth = ExactCounter("triangle").process_stream(stream)
    budget = max(8, stream.num_insertions // 20)
    print(f"stream: {len(stream)} events, truth = {truth} triangles, "
          f"M = {budget}")

    # --- local counting: one run, per-vertex estimates -------------------
    sampler = WSD("triangle", budget, GPSHeuristicWeight(), rng=2)
    local = LocalSubgraphCounter().attach(sampler)
    sampler.process_stream(stream)
    print(f"\nglobal estimate: {sampler.estimate:.0f}")
    print("top-5 vertices by estimated local triangle count:")
    for vertex, estimate in local.top_vertices(5):
        print(f"  vertex {vertex}: ~{estimate:.0f} triangles")

    # --- variance analysis: repeated runs, CI for the mean ---------------
    estimates = repeated_trials(
        lambda rng: WSD("triangle", budget, GPSHeuristicWeight(), rng=rng),
        stream,
        trials=20,
        seed=3,
    )
    summary = summarize_trials(estimates, level=0.95)
    print(f"\n20 independent runs: mean = {summary.mean:.0f}, "
          f"std = {summary.std:.0f}")
    print(f"95% CI for the mean: [{summary.ci_low:.0f}, "
          f"{summary.ci_high:.0f}]")
    print(f"covers the exact count ({truth})? {summary.covers(truth)}")
    print(f"coefficient of variation: "
          f"{summary.coefficient_of_variation:.3f}")


if __name__ == "__main__":
    main()
