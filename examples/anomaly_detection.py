#!/usr/bin/env python3
"""Streaming anomaly detection, hosted on the counting service.

The paper's introduction motivates subgraph counting with spam/anomaly
detection [Kang et al.]: normal accounts have mild triangle-count to
degree ratios, while spammers link many otherwise-unconnected accounts
— high degree, almost no triangles. This example is the first *hosted*
workload of the counting-as-a-service tier:

* a :class:`~repro.streams.service.CountingService` runs on localhost
  with a WSD-H stream that tracks per-vertex local triangle counts
  (``track_local=True`` — each counted instance credits its inverse
  inclusion probability to its three vertices, Triest-local style);
* a client pushes the social stream over the TCP ingestion front as
  columnar event blocks, exactly as a production feed would;
* while ingestion continues, the client queries ``local_counts`` for
  the vertices it tracks degrees for, and flags the vertex whose
  estimated triangles-per-degree-pair ratio is far below the
  population.

A synthetic "spammer" is injected: one vertex that connects to many
random users who share no mutual edges. Because the stream's randomness
is a pure function of ``(config.seed, stream name)``, re-running the
same workload in-process with :func:`repro.open_stream` reproduces the
hosted numbers bit for bit.

Run:  python examples/anomaly_detection.py
"""

from collections import defaultdict

import numpy as np

import repro
from repro import build_stream
from repro.graph.edges import canonical_edge
from repro.graph.generators import powerlaw_cluster
from repro.streams.ingest import ServiceClient
from repro.streams.service import CountingService, ServiceConfig, StreamConfig

STREAM_NAME = "social-feed"


def inject_spammer(edges, fan_out=60, rng=None):
    """Append a burst of spammer edges to random low-degree targets."""
    rng = np.random.default_rng(rng)
    vertices = sorted({v for e in edges for v in e})
    spammer = max(vertices) + 1
    targets = rng.choice(len(vertices), size=fan_out, replace=False)
    spam_edges = [
        canonical_edge(spammer, vertices[int(t)]) for t in targets
    ]
    # Interleave spam edges through the last half of the stream.
    out = list(edges)
    positions = sorted(
        rng.integers(len(out) // 2, len(out), size=len(spam_edges))
    )
    for offset, (pos, edge) in enumerate(zip(positions, spam_edges)):
        out.insert(pos + offset, edge)
    return out, spammer


def main() -> None:
    edges = powerlaw_cluster(1_500, m=6, triangle_probability=0.8, rng=0)
    edges, spammer = inject_spammer(edges, fan_out=100, rng=1)
    stream = build_stream(edges, "light", beta=0.1, rng=2)
    events = list(stream)
    print(f"stream: {len(events)} events; injected spammer vertex {spammer}")

    budget = max(8, stream.num_insertions // 4)
    config = StreamConfig(
        algorithm="WSD-H",
        pattern="triangle",
        budget=budget,
        seed=3,
        track_local=True,
    )

    # Host the stream: a service on a loopback port, one tenant.
    service = CountingService(ServiceConfig(listen="127.0.0.1:0"))
    address = service.start()
    print(f"counting service listening on {address}")
    client = ServiceClient(address)
    client.create_stream(STREAM_NAME, config)

    # The client tracks degrees itself (cheap, exact) and feeds the
    # service in block-sized pushes, querying as it goes.
    degree: dict[object, int] = defaultdict(int)
    chunk = 1024
    for start in range(0, len(events), chunk):
        batch = events[start:start + chunk]
        for event in batch:
            u, v = event.edge
            step = 1 if event.is_insertion else -1
            degree[u] += step
            degree[v] += step
        client.send_events(batch)  # fire-and-forget columnar push
        if start // chunk % 4 == 3:
            stats = client.stats()  # barrier: a consistent snapshot
            print(
                f"  clock={stats['clock']:6d} "
                f"global triangle estimate={stats['estimate']:10.1f}"
            )

    # Anomaly score: degree-pair count vs estimated local triangles,
    # served by the stream's local counter.
    suspects = [vertex for vertex, d in degree.items() if d >= 40]
    local = client.local_counts(suspects)
    print(f"\n{'vertex':>8s} {'degree':>7s} {'est. local tri':>15s} "
          f"{'ratio':>9s}")
    scored = []
    for vertex in suspects:
        d = degree[vertex]
        pairs = d * (d - 1) / 2
        tri = float(local[vertex])
        scored.append((tri / pairs, vertex, d, tri))
    scored.sort()
    for ratio, vertex, d, tri in scored[:5]:
        marker = "  <-- injected spammer" if vertex == spammer else ""
        print(f"{str(vertex):>8s} {d:7d} {tri:15.1f} {ratio:9.4f}{marker}")

    flagged = scored[0][1]
    print(
        f"\nlowest triangle/degree ratio: vertex {flagged} "
        f"({'correctly flags the spammer' if flagged == spammer else 'spammer not ranked first'})"
    )

    hosted_estimate = client.estimate()
    client.close()
    service.stop()

    # The parity contract: the same named config, run in-process,
    # reproduces the hosted stream bit for bit.
    with repro.open_stream(config, name=STREAM_NAME) as session:
        session.ingest(events)
        serial_estimate = session.queries.estimate()
    match = "bit-identical" if serial_estimate == hosted_estimate else "MISMATCH"
    print(
        f"hosted estimate {hosted_estimate:.6f} vs in-process "
        f"{serial_estimate:.6f}: {match}"
    )


if __name__ == "__main__":
    main()
