#!/usr/bin/env python3
"""Streaming anomaly detection via triangle-to-degree ratios.

The paper's introduction motivates subgraph counting with spam/anomaly
detection [Kang et al.]: normal accounts have mild triangle-count to
degree ratios, while spammers link many otherwise-unconnected accounts
— high degree, almost no triangles. This example monitors a social
stream with a *local* variant of the WSD machinery:

* a WSD sampler maintains a weighted edge sample of the stream;
* per-vertex triangle participation is estimated from the sampled
  instances (each instance contributes its inverse inclusion
  probability to its three vertices);
* vertices whose estimated triangles-per-degree-pair ratio is far below
  the population are flagged.

A synthetic "spammer" is injected: one vertex that connects to many
random users who share no mutual edges.

Run:  python examples/anomaly_detection.py
"""

from collections import defaultdict

import numpy as np

from repro import WSD, GPSHeuristicWeight, build_stream
from repro.graph.edges import canonical_edge
from repro.graph.generators import powerlaw_cluster


def inject_spammer(edges, fan_out=60, rng=None):
    """Append a burst of spammer edges to random low-degree targets."""
    rng = np.random.default_rng(rng)
    vertices = sorted({v for e in edges for v in e})
    spammer = max(vertices) + 1
    targets = rng.choice(len(vertices), size=fan_out, replace=False)
    spam_edges = [
        canonical_edge(spammer, vertices[int(t)]) for t in targets
    ]
    # Interleave spam edges through the last half of the stream.
    out = list(edges)
    positions = sorted(
        rng.integers(len(out) // 2, len(out), size=len(spam_edges))
    )
    for offset, (pos, edge) in enumerate(zip(positions, spam_edges)):
        out.insert(pos + offset, edge)
    return out, spammer


def main() -> None:
    edges = powerlaw_cluster(1_500, m=6, triangle_probability=0.8, rng=0)
    edges, spammer = inject_spammer(edges, fan_out=60, rng=1)
    stream = build_stream(edges, "light", beta=0.1, rng=2)
    print(f"stream: {len(stream)} events; injected spammer vertex {spammer}")

    budget = max(8, stream.num_insertions // 10)
    # capture_context=True keeps WeightContext snapshots (and therefore
    # the per-event instance lists) available on sampler.last_context.
    sampler = WSD(
        "triangle", budget, GPSHeuristicWeight(), rng=3, capture_context=True
    )

    # Estimated per-vertex triangle participation: every instance found
    # by the estimator credits its three vertices with the instance's
    # inverse-probability value.
    local_triangles: dict[object, float] = defaultdict(float)
    degree: dict[object, int] = defaultdict(int)

    for event in stream:
        u, v = event.edge
        if event.is_insertion:
            degree[u] += 1
            degree[v] += 1
        else:
            degree[u] -= 1
            degree[v] -= 1
        before = sampler.estimate
        sampler.process(event)
        delta = sampler.estimate - before
        if delta != 0.0 and sampler.last_context is not None:
            for instance in (
                sampler.last_context.instances if event.is_insertion else ()
            ):
                vertices = {u, v}
                for a, b in instance:
                    vertices.update((a, b))
                share = delta / max(
                    1, len(sampler.last_context.instances)
                )
                for vertex in vertices:
                    local_triangles[vertex] += share

    # Anomaly score: degree-pair count vs estimated triangle share.
    print(f"\n{'vertex':>8s} {'degree':>7s} {'est. local tri':>15s} "
          f"{'ratio':>9s}")
    scored = []
    for vertex, d in degree.items():
        if d < 25:
            continue
        pairs = d * (d - 1) / 2
        ratio = local_triangles.get(vertex, 0.0) / pairs
        scored.append((ratio, vertex, d, local_triangles.get(vertex, 0.0)))
    scored.sort()
    for ratio, vertex, d, tri in scored[:5]:
        marker = "  <-- injected spammer" if vertex == spammer else ""
        print(f"{str(vertex):>8s} {d:7d} {tri:15.1f} {ratio:9.4f}{marker}")

    flagged = scored[0][1]
    print(
        f"\nlowest triangle/degree ratio: vertex {flagged} "
        f"({'correctly flags the spammer' if flagged == spammer else 'spammer not ranked first'})"
    )


if __name__ == "__main__":
    main()
