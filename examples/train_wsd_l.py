#!/usr/bin/env python3
"""Train a WSD-L weight policy with DDPG and deploy it (Section IV).

Reproduces the paper's offline-training / online-deployment split:

1. build training streams from a *training* graph (cit-HE) under the
   light-deletion scenario;
2. train the DDPG agent — the actor is a single linear layer producing
   each arriving edge's weight (Eq. 27), the reward is the decrease in
   estimation error (Eq. 25);
3. freeze the actor into a Policy, save it to disk;
4. evaluate WSD-L vs WSD-H on the same-category *test* graph (cit-PT),
   as in Tables II/III.

Run:  python examples/train_wsd_l.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    ExactCounter,
    GPSHeuristicWeight,
    LearnedWeight,
    Policy,
    WSD,
    build_stream,
    load_dataset,
)
from repro.estimators import absolute_relative_error
from repro.rl.training import (
    TrainingConfig,
    make_training_streams,
    train_weight_policy,
)


def main() -> None:
    # 1. Training streams: 4 independent light-deletion streams over the
    # citation training graph (the paper uses 10 streams; Section V-A).
    train_edges = load_dataset("cit-HE", seed=0)
    streams = make_training_streams(
        train_edges, "light", num_streams=4, beta=0.2, seed=1
    )
    print(f"training graph cit-HE: {len(train_edges)} edges, "
          f"{len(streams)} streams")

    # 2. Train (300 DDPG updates; the paper uses 1,000 at full scale).
    budget = max(8, len(train_edges) // 25)
    result = train_weight_policy(
        streams,
        "triangle",
        budget,
        config=TrainingConfig(iterations=300, num_streams=4),
        seed=2,
    )
    print(f"trained: {result.total_updates} updates over "
          f"{len(result.episodes)} episodes")
    print(f"actor weights: {np.round(result.policy.weights, 3)}, "
          f"bias {result.policy.bias:.3f}")

    # 3. Persist and reload — the deployable artefact is tiny.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "wsd_l_citation_triangle.npz"
        result.policy.save(path)
        policy = Policy.load(path)
        print(f"policy saved/reloaded from {path.name} "
              f"({path.stat().st_size} bytes)")

    # 4. Evaluate on the held-out test graph of the same category.
    test_edges = load_dataset("cit-PT", seed=0)
    stream = build_stream(test_edges, "light", beta=0.2, rng=3)
    truth = ExactCounter("triangle").process_stream(stream)
    test_budget = max(8, stream.num_insertions // 25)
    print(f"\ntest graph cit-PT: {len(stream)} events, "
          f"truth = {truth} triangles, M = {test_budget}")

    trials = 10
    for name, weight_factory in (
        ("WSD-L", lambda: LearnedWeight(policy)),
        ("WSD-H", GPSHeuristicWeight),
    ):
        ares = []
        for seed in range(trials):
            sampler = WSD("triangle", test_budget, weight_factory(), rng=seed)
            estimate = sampler.process_stream(stream)
            ares.append(absolute_relative_error(estimate, truth))
        print(f"{name}: mean ARE over {trials} trials = "
              f"{np.mean(ares):.2f}% (std {np.std(ares):.2f})")


if __name__ == "__main__":
    main()
