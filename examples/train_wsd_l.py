#!/usr/bin/env python3
"""Train a WSD-L weight policy, freeze it, and serve it (Section IV).

Reproduces the paper's offline-training / online-deployment split, now
with the explicit train → freeze → serve pipeline:

1. **Train**: build training streams from a *training* graph (cit-HE)
   under the light-deletion scenario and run DDPG — the actor is a
   single linear layer producing each arriving edge's weight (Eq. 27),
   the reward is the decrease in estimation error (Eq. 25);
2. **Freeze**: pin the trained actor into a
   :class:`~repro.rl.policy.FrozenPolicy` — the serving artifact with a
   fixed evaluation order — and round-trip it through ``.npz``, the
   paper's "hardcode θ = {W, b} into the runtime" step;
3. **Serve**: a frozen policy switches :class:`LearnedWeight` onto the
   kernels' block path automatically (state features assembled inline
   from the estimator walk, no per-event WeightContext), which is how
   WSD-L runs at streaming rates; the trajectory is bit-identical to
   the legacy context path under the same seed;
4. **Inspect**: reproduce the Figure 2(d) relationship — the learned
   weight grows with the number of pattern instances the arriving edge
   completes, which is exactly why weighted sampling beats uniform;
5. **Evaluate** WSD-L vs WSD-H on the same-category *test* graph
   (cit-PT), as in Tables II/III.

Run:  python examples/train_wsd_l.py
"""

import tempfile
from collections import defaultdict
from pathlib import Path

import numpy as np

from repro import (
    ExactCounter,
    GPSHeuristicWeight,
    LearnedWeight,
    WSD,
    build_stream,
    load_dataset,
)
from repro.estimators import absolute_relative_error
from repro.rl.policy import FrozenPolicy
from repro.rl.training import (
    TrainingConfig,
    make_training_streams,
    train_weight_policy,
)


def main() -> None:
    # 1. Training streams: 4 independent light-deletion streams over the
    # citation training graph (the paper uses 10 streams; Section V-A).
    train_edges = load_dataset("cit-HE", seed=0)
    streams = make_training_streams(
        train_edges, "light", num_streams=4, beta=0.2, seed=1
    )
    print(f"training graph cit-HE: {len(train_edges)} edges, "
          f"{len(streams)} streams")

    # 2. Train (300 DDPG updates; the paper uses 1,000 at full scale).
    # Training is seed-reproducible: exploration noise, network init,
    # and replay sampling each draw from an independent child stream of
    # the one seed below.
    budget = max(8, len(train_edges) // 25)
    result = train_weight_policy(
        streams,
        "triangle",
        budget,
        config=TrainingConfig(iterations=300, num_streams=4),
        seed=2,
    )
    print(f"trained: {result.total_updates} updates over "
          f"{len(result.episodes)} episodes")
    print(f"actor weights: {np.round(result.policy.weights, 3)}, "
          f"bias {result.policy.bias:.3f}")

    # 3. Freeze + persist: the deployable artifact is a FrozenPolicy —
    # same parameters, pinned evaluation order (the block-serving
    # bit-identity contract). ``.npz`` round-trips it in a few hundred
    # bytes.
    frozen = result.policy.freeze()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "wsd_l_citation_triangle.npz"
        frozen.save(path)
        policy = FrozenPolicy.load(path)
        print(f"frozen policy saved/reloaded from {path.name} "
              f"({path.stat().st_size} bytes)")

    # 4. Serve on the held-out test graph. A FrozenPolicy turns block
    # serving on automatically — LearnedWeight skips WeightContext
    # construction and evaluates the actor from the kernels' inline
    # state summaries.
    test_edges = load_dataset("cit-PT", seed=0)
    stream = build_stream(test_edges, "light", beta=0.2, rng=3)
    truth = ExactCounter("triangle").process_stream(stream)
    test_budget = max(8, stream.num_insertions // 25)
    print(f"\ntest graph cit-PT: {len(stream)} events, "
          f"truth = {truth} triangles, M = {test_budget}")

    serving = LearnedWeight(policy)
    print(f"block serving: {serving.block_serving} "
          "(frozen actor -> fast path)")

    # Figure 2(d): the learned weight vs the number of triangles the
    # arriving edge completes. The state observer sees every served
    # (raw state, time) pair; replaying them through the vectorised
    # block evaluator yields the exact per-event weights to bucket.
    rows, times = [], []
    serving.state_observer = lambda row, t: (rows.append(row),
                                             times.append(t))
    sampler = WSD("triangle", test_budget, serving, rng=0)
    estimate = sampler.process_stream(stream)
    serving.state_observer = None
    weights = serving.weights_for_block(np.array(rows), times)
    weight_by_count: dict[int, list[float]] = defaultdict(list)
    for row, weight in zip(rows, weights):
        weight_by_count[int(row[0])].append(float(weight))
    print(f"WSD-L estimate: {estimate:.1f} "
          f"(ARE {absolute_relative_error(estimate, truth):.2f}%)")
    print("weight vs completed-triangle count (Figure 2(d)):")
    for count in sorted(weight_by_count)[:6]:
        bucket = weight_by_count[count]
        print(f"  |H_k| = {count}: mean weight "
              f"{np.mean(bucket):8.3f}  ({len(bucket)} edges)")

    # 5. WSD-L vs WSD-H over repeated trials (Tables II/III).
    trials = 10
    for name, weight_factory in (
        ("WSD-L", lambda: LearnedWeight(policy)),
        ("WSD-H", GPSHeuristicWeight),
    ):
        ares = []
        for seed in range(trials):
            sampler = WSD("triangle", test_budget, weight_factory(), rng=seed)
            estimate = sampler.process_stream(stream)
            ares.append(absolute_relative_error(estimate, truth))
        print(f"{name}: mean ARE over {trials} trials = "
              f"{np.mean(ares):.2f}% (std {np.std(ares):.2f})")


if __name__ == "__main__":
    main()
