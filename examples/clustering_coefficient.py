#!/usr/bin/env python3
"""Monitor the global clustering coefficient of a dynamic network.

The paper's introduction lists the clustering coefficient and the
transitivity ratio as the canonical triangle-count applications. Both
reduce to two streaming counts:

    transitivity = 3 * triangles / wedges

This example runs *two* WSD samplers — one per pattern — over the same
fully dynamic stream and reports the estimated transitivity at
checkpoints against the exact value, demonstrating multi-pattern use of
the library on one pass over the data.

Run:  python examples/clustering_coefficient.py
"""

from repro import ExactCounter, WSD, GPSHeuristicWeight, build_stream, load_dataset


def transitivity(triangles: float, wedges: float) -> float:
    return 3.0 * triangles / wedges if wedges > 0 else 0.0


def main() -> None:
    edges = load_dataset("soc-TW", seed=0)
    stream = build_stream(edges, "light", beta=0.2, rng=1)
    print(f"soc-TW stand-in: {len(stream)} events")

    budget = max(8, stream.num_insertions // 20)
    tri_sampler = WSD("triangle", budget, GPSHeuristicWeight(), rng=2)
    wedge_sampler = WSD("wedge", budget, GPSHeuristicWeight(), rng=3)
    tri_exact = ExactCounter("triangle")
    wedge_exact = ExactCounter("wedge")

    checkpoint_every = max(1, len(stream) // 10)
    print(f"\n{'events':>8s} {'est. transitivity':>18s} "
          f"{'exact transitivity':>19s}")
    for i, event in enumerate(stream, start=1):
        tri_sampler.process(event)
        wedge_sampler.process(event)
        tri_exact.process(event)
        wedge_exact.process(event)
        if i % checkpoint_every == 0 or i == len(stream):
            estimated = transitivity(
                tri_sampler.estimate, wedge_sampler.estimate
            )
            exact = transitivity(tri_exact.count, wedge_exact.count)
            print(f"{i:8d} {estimated:18.4f} {exact:19.4f}")

    final_est = transitivity(tri_sampler.estimate, wedge_sampler.estimate)
    final_exact = transitivity(tri_exact.count, wedge_exact.count)
    error = abs(final_est - final_exact) / final_exact * 100
    print(f"\nfinal estimate off by {error:.1f}% using "
          f"2 x {budget} sampled edges "
          f"({2 * budget / stream.num_insertions:.1%} of the stream)")


if __name__ == "__main__":
    main()
