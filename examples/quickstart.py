#!/usr/bin/env python3
"""Quickstart: estimate triangle counts on a fully dynamic graph stream.

This walks through the library's core loop in five steps:

1. generate a graph with temporal structure (Forest Fire, as in the
   paper's synthetic experiments);
2. turn it into a fully dynamic stream (insertions + massive deletions);
3. maintain exact ground truth alongside (for evaluation only — the
   samplers never see it);
4. run WSD with the GPS heuristic weight (WSD-H) and two uniform
   baselines under the same memory budget;
5. compare final estimates and ARE.

Run:  python examples/quickstart.py
"""

from repro import (
    ExactCounter,
    GPSHeuristicWeight,
    ThinkD,
    Triest,
    UniformWeight,
    WSD,
    build_stream,
)
from repro.estimators import absolute_relative_error
from repro.graph.generators import forest_fire


def main() -> None:
    # 1. A graph whose edges arrive in generation order.
    edges = forest_fire(3_000, p=0.5, rng=0)
    print(f"graph: {len(edges)} edges")

    # 2. A fully dynamic stream: each edge has a 20% chance of being
    # deleted at a random later position (the light-deletion scenario).
    stream = build_stream(edges, "light", beta=0.2, rng=1)
    print(
        f"stream: {len(stream)} events "
        f"({stream.num_insertions} insertions, {stream.num_deletions} deletions)"
    )

    # 3. Exact ground truth (linear time, for evaluation only).
    truth = ExactCounter("triangle").process_stream(stream)
    print(f"exact triangle count at the end of the stream: {truth}")

    # 4. Four samplers sharing one memory budget M. WSD accepts any
    # weight function; the learned one (WSD-L) is trained in
    # examples/train_wsd_l.py and is the paper's most accurate variant.
    budget = max(8, stream.num_insertions // 25)  # 4% of insertions
    samplers = {
        "WSD-H (heuristic)": WSD(
            "triangle", budget, GPSHeuristicWeight(), rng=42
        ),
        "WSD-U (uniform w)": WSD("triangle", budget, UniformWeight(), rng=42),
        "Triest (baseline)": Triest("triangle", budget, rng=42),
        "ThinkD (baseline)": ThinkD("triangle", budget, rng=42),
    }

    # 5. One pass each; report estimate and absolute relative error.
    print(f"\nmemory budget M = {budget} edges")
    print(f"{'algorithm':20s} {'estimate':>12s} {'ARE %':>8s}")
    for name, sampler in samplers.items():
        estimate = sampler.process_stream(stream)
        are = absolute_relative_error(estimate, truth)
        print(f"{name:20s} {estimate:12.1f} {are:8.2f}")
    print("\nnext: python examples/train_wsd_l.py trains the RL weight "
          "function (WSD-L)")


if __name__ == "__main__":
    main()
