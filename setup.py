"""Setuptools shim for environments without PEP 660 support.

All metadata lives in ``pyproject.toml`` (including the ``numpy``
install requirement and the ``[test]`` extra that CI installs via
``pip install -e .[test]``); this file only enables legacy editable
installs.
"""
from setuptools import setup

setup()
