"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class. Subclasses are grouped by the
subsystem that raises them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class GraphError(ReproError):
    """Base class for graph-structure errors."""


class EdgeExistsError(GraphError):
    """Raised when inserting an edge that is already present."""


class EdgeNotFoundError(GraphError):
    """Raised when deleting or querying an edge that is absent."""


class SelfLoopError(GraphError):
    """Raised when an operation would create a self-loop.

    The paper ignores self-loops in all datasets (Section V-A), so the
    library rejects them at construction time rather than silently
    dropping them.
    """


class StreamError(ReproError):
    """Base class for edge-stream errors."""


class InfeasibleEventError(StreamError):
    """Raised when an event sequence violates stream feasibility.

    Feasibility (Section II): an insertion of an edge already alive, or
    a deletion of an edge not alive, is infeasible.
    """


class StreamFormatError(StreamError):
    """Raised when parsing a malformed stream file."""


class SamplerError(ReproError):
    """Base class for sampler errors."""


class ReservoirFullError(SamplerError):
    """Raised when forcing an item into a full fixed-size reservoir."""


class ExecutorError(ReproError):
    """Base class for sharded-executor errors."""


class ProtocolError(ExecutorError):
    """Raised when a wire frame fails validation.

    Every frame of the shard-transport wire format (and every framed
    checkpoint payload) carries a magic tag, a protocol version, and a
    declared length. A frame that is truncated, carries the wrong
    magic, declares an absurd length, or speaks a different protocol
    version fails loudly with this error instead of deserialising
    garbage — and version mismatches are rejected at connection
    handshake, before any payload is exchanged.
    """


class WorkerCrashError(ExecutorError):
    """Raised when a shard worker process dies or reports a failure.

    Carries the shard index and, when the worker managed to report one,
    the original exception's message and traceback text. The surviving
    shards keep their state; the crashed shard can be respawned from its
    latest checkpoint via
    :meth:`~repro.streams.executor.ShardedStreamExecutor.restart_shard`.
    """

    def __init__(self, shard_index: int, message: str) -> None:
        super().__init__(f"shard {shard_index}: {message}")
        self.shard_index = shard_index


class ServiceError(ExecutorError):
    """Raised when the counting service rejects or fails an operation.

    Client-side, this carries the service's error report (including the
    remote traceback text when the failure happened inside a stream
    operation); service-side it marks requests that cannot be honoured,
    e.g. attaching to a stream that does not exist.
    """


class ConfigurationError(ReproError):
    """Raised for invalid user-supplied configuration values."""


class PolicyError(ReproError):
    """Raised for malformed or incompatible learned policies."""


class DatasetError(ReproError):
    """Raised when a dataset name is unknown or a file cannot be read."""
