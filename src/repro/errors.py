"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class. Subclasses are grouped by the
subsystem that raises them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class RetryableError:
    """Mixin marking failures that a supervisor may retry.

    The recovery layer (:mod:`repro.streams.supervisor`) is type-driven:
    an error that mixes this in describes a *transient* condition —
    a crashed worker that can be respawned from its checkpoint, a peer
    that may come back, an overloaded service that will drain. Errors
    without the mixin are treated as fatal and surface immediately.
    ``isinstance(exc, RetryableError)`` is the whole classification.
    """


class GraphError(ReproError):
    """Base class for graph-structure errors."""


class EdgeExistsError(GraphError):
    """Raised when inserting an edge that is already present."""


class EdgeNotFoundError(GraphError):
    """Raised when deleting or querying an edge that is absent."""


class SelfLoopError(GraphError):
    """Raised when an operation would create a self-loop.

    The paper ignores self-loops in all datasets (Section V-A), so the
    library rejects them at construction time rather than silently
    dropping them.
    """


class StreamError(ReproError):
    """Base class for edge-stream errors."""


class InfeasibleEventError(StreamError):
    """Raised when an event sequence violates stream feasibility.

    Feasibility (Section II): an insertion of an edge already alive, or
    a deletion of an edge not alive, is infeasible.
    """


class StreamFormatError(StreamError):
    """Raised when parsing a malformed stream file."""


class SamplerError(ReproError):
    """Base class for sampler errors."""


class ReservoirFullError(SamplerError):
    """Raised when forcing an item into a full fixed-size reservoir."""


class ExecutorError(ReproError):
    """Base class for sharded-executor errors."""


class ProtocolError(ExecutorError):
    """Raised when a wire frame fails validation.

    Every frame of the shard-transport wire format (and every framed
    checkpoint payload) carries a magic tag, a protocol version, and a
    declared length. A frame that is truncated, carries the wrong
    magic, declares an absurd length, or speaks a different protocol
    version fails loudly with this error instead of deserialising
    garbage — and version mismatches are rejected at connection
    handshake, before any payload is exchanged.
    """


class WorkerCrashError(ExecutorError, RetryableError):
    """Raised when a shard worker process dies or reports a failure.

    Carries the shard index and, when the worker managed to report one,
    the original exception's message and traceback text. The surviving
    shards keep their state; the crashed shard can be respawned from its
    latest checkpoint via
    :meth:`~repro.streams.executor.ShardedStreamExecutor.restart_shard` —
    which is why it is retryable: a supervisor restarts and replays
    instead of surfacing the crash to the caller.
    """

    def __init__(self, shard_index: int, message: str) -> None:
        super().__init__(f"shard {shard_index}: {message}")
        self.shard_index = shard_index


class PeerLostError(ExecutorError, RetryableError):
    """Raised when a network peer is declared dead or unreachable.

    Liveness detection raises this instead of hanging: a heartbeat send
    that fails, an idle deadline that expires with no frame (not even a
    HEARTBEAT) from the peer, or a connection that cannot be
    established. Retryable — the peer may come back, and a shard behind
    a lost host can be re-leased elsewhere. Carries ``shard_index``
    when the lost peer was hosting a specific shard (``None`` for the
    service front).
    """

    def __init__(
        self, message: str, *, shard_index: int | None = None
    ) -> None:
        super().__init__(message)
        self.shard_index = shard_index


class OperationTimeoutError(ExecutorError, RetryableError):
    """Raised when a request's reply did not arrive within ``op_timeout``.

    The client-side guard against a hung service: every token-matched
    reply wait is bounded, so a wedged peer surfaces as this typed
    (retryable) error instead of blocking the caller forever.
    """


class ShardUnrecoverableError(ExecutorError):
    """Raised when supervised recovery gives up on a shard.

    The escalation end-state of :mod:`repro.streams.supervisor`: the
    per-incident attempt limit or the shard's lifetime failure budget
    is exhausted, so automatic restart + replay stops and the operator
    has to intervene. Deliberately *not* retryable — retrying is
    exactly what just failed. Carries the shard index and the failure
    count that broke the budget.
    """

    def __init__(
        self, shard_index: int, message: str, *, failures: int = 0
    ) -> None:
        super().__init__(f"shard {shard_index}: {message}")
        self.shard_index = shard_index
        self.failures = failures


class ServiceError(ExecutorError):
    """Raised when the counting service rejects or fails an operation.

    Client-side, this carries the service's error report (including the
    remote traceback text when the failure happened inside a stream
    operation); service-side it marks requests that cannot be honoured,
    e.g. attaching to a stream that does not exist.
    """


class ServiceOverloadedError(ServiceError, RetryableError):
    """Raised when the service sheds load instead of growing its WAL.

    A session whose write-ahead log hit its hard limit rejects the
    batch *before* appending or dispatching anything, so the reject is
    atomic: no partial ingest. Retryable by construction — a checkpoint
    (or the durability cadence) trims the WAL and ingestion resumes;
    :attr:`retry_after` is the service's hint for how long to wait.
    """

    def __init__(
        self, message: str, *, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class CorruptStateWarning(UserWarning):
    """Warned when persisted state fails validation and is quarantined.

    The durability layer validates everything it reads back — CRC-framed
    WAL segments, checkpoint shard files, generation manifests. A file
    that fails (truncated, bit-flipped, zero-length, wrong format) is
    renamed into the state directory's ``quarantine/`` folder and this
    warning names it; restore then falls back to the newest generation
    that validates in full. A warning rather than an error because the
    whole point of retaining the previous generation is that the
    service *survives* the corruption — but silently would hide that
    data loss (the events between the surviving generation and the
    corrupt one) may have occurred.
    """


class ConfigurationError(ReproError):
    """Raised for invalid user-supplied configuration values."""


class PolicyError(ReproError):
    """Raised for malformed or incompatible learned policies."""


class DatasetError(ReproError):
    """Raised when a dataset name is unknown or a file cannot be read."""
