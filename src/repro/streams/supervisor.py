"""Supervised shard recovery: policy-driven restart with backoff.

Before this module, crash recovery was *mechanically* complete (a
crashed shard restarts from its retained snapshot and replays exactly
its lost sub-stream, see :meth:`~repro.streams.service.StreamSession`)
but *operationally* naive: the retry loop was a hard-coded bound with
no backoff, no memory across incidents, and no escalation state. This
module separates the two concerns:

* :class:`RecoveryPolicy` — the *what*: how many restart attempts one
  incident gets, how the delay between attempts grows (exponential
  backoff with deterministic, seeded jitter — two services with the
  same policy seed back off identically, which the chaos harness
  relies on), and how many failures a single shard may accumulate over
  the supervisor's lifetime before recovery escalates.
* :class:`ShardSupervisor` — the *engine*: classifies errors through
  the :class:`~repro.errors.RetryableError` mixin (type-driven — a
  fatal error surfaces immediately, untouched), runs the attempt loop,
  tracks per-shard failure budgets, and raises
  :class:`~repro.errors.ShardUnrecoverableError` when a budget or the
  attempt limit is exhausted. It also keeps the recovery ledger
  (:meth:`ShardSupervisor.stats`) that the chaos benchmark publishes.

Determinism: the jitter stream is ``random.Random(derive_seed(policy
seed, supervisor name))``, consumed once per computed delay, so a
fixed fault sequence produces a fixed delay sequence — recovery timing
is as reproducible as the estimates themselves.
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass, fields
from typing import Callable

from repro.errors import (
    ConfigurationError,
    ReproError,
    RetryableError,
    ShardUnrecoverableError,
)
from repro.utils.rng import derive_seed

__all__ = ["RecoveryPolicy", "ShardSupervisor", "DEFAULT_RECOVERY_POLICY"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """How supervised recovery behaves (JSON round-trippable).

    ``max_attempts`` bounds one *incident* — the consecutive restart
    attempts triggered by a single surfaced failure (replay can expose
    a second dead shard; that continues the same incident). The delay
    before attempt *k* (k >= 1; the first attempt is immediate) is::

        min(backoff_max, backoff_base * backoff_factor**(k-1)) * jitter

    where ``jitter`` is a deterministic draw in ``[1-jitter_fraction,
    1+jitter_fraction]`` from the policy-seeded stream.
    ``failure_budget`` is per-shard and lifetime-scoped: a shard that
    keeps dying across incidents eventually escalates even though each
    individual incident recovered.
    """

    max_attempts: int = 5
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter_fraction: float = 0.1
    failure_budget: int = 16
    seed: int = 0

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0:
            raise ConfigurationError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.backoff_max < 0:
            raise ConfigurationError("backoff_max must be >= 0")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError(
                "jitter_fraction must be in [0, 1), got "
                f"{self.jitter_fraction!r}"
            )
        if self.failure_budget < 1:
            raise ConfigurationError(
                f"failure_budget must be >= 1, got {self.failure_budget}"
            )

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Seconds to wait before restart ``attempt`` (0 = immediate).

        Consumes exactly one draw from ``rng`` per non-zero delay, so
        the delay sequence is a pure function of (policy, seed, fault
        sequence).
        """
        if attempt <= 0 or self.backoff_base == 0:
            return 0.0
        raw = self.backoff_base * self.backoff_factor ** (attempt - 1)
        raw = min(self.backoff_max, raw)
        if self.jitter_fraction:
            raw *= 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return raw

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "RecoveryPolicy":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown RecoveryPolicy keys: {unknown}; "
                f"known: {sorted(known)}"
            )
        policy = cls(**payload)
        policy.validate()
        return policy

    def build_supervisor(
        self, num_shards: int, *, name: str = "", sleep=None
    ) -> "ShardSupervisor":
        """A fresh supervisor applying this policy to ``num_shards``."""
        return ShardSupervisor(self, num_shards, name=name, sleep=sleep)


#: The library default: a handful of quick attempts, sub-second
#: backoff, a generous lifetime budget.
DEFAULT_RECOVERY_POLICY = RecoveryPolicy()


class ShardSupervisor:
    """The recovery engine one session (or executor) runs its policy on.

    Stateful where the policy is pure: per-shard lifetime failure
    counts, the recovery ledger, and the seeded jitter stream all live
    here. ``sleep`` is injectable so tests and the chaos harness run
    backoff logic without wall-clock cost.
    """

    def __init__(
        self,
        policy: RecoveryPolicy,
        num_shards: int,
        *,
        name: str = "",
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        policy.validate()
        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.policy = policy
        self.num_shards = num_shards
        self.name = name
        self._sleep = time.sleep if sleep is None else sleep
        self._rng = random.Random(
            derive_seed(policy.seed, f"supervisor-{name}")
        )
        #: Lifetime failure count per shard (index ``None`` failures,
        #: e.g. a lost service peer, are tracked separately).
        self.failures = [0] * num_shards
        self._anonymous_failures = 0
        #: Incidents that ended in a successful recovery.
        self.recoveries = 0
        #: The recovery ledger: one dict per failure observed.
        self.log: list[dict] = []

    # -- classification ------------------------------------------------------

    @staticmethod
    def is_retryable(exc: BaseException) -> bool:
        """The whole classification: the RetryableError mixin."""
        return isinstance(exc, RetryableError)

    # -- bookkeeping ---------------------------------------------------------

    def _shard_of(self, exc: BaseException) -> int | None:
        index = getattr(exc, "shard_index", None)
        if isinstance(index, int) and 0 <= index < self.num_shards:
            return index
        return None

    def record_failure(self, exc: BaseException) -> None:
        """Count one failure against its shard's lifetime budget.

        Raises :class:`~repro.errors.ShardUnrecoverableError` the
        moment a shard exceeds ``failure_budget`` — escalation is
        immediate, not deferred to the end of the incident.
        """
        shard = self._shard_of(exc)
        self.log.append(
            {
                "shard": shard,
                "error": type(exc).__name__,
                "retryable": self.is_retryable(exc),
            }
        )
        if shard is None:
            self._anonymous_failures += 1
            return
        self.failures[shard] += 1
        if self.failures[shard] > self.policy.failure_budget:
            raise ShardUnrecoverableError(
                shard,
                f"failure budget exhausted: {self.failures[shard]} "
                f"failures > budget {self.policy.failure_budget} "
                f"(last: {type(exc).__name__}: {exc})",
                failures=self.failures[shard],
            ) from exc

    # -- the attempt loop ----------------------------------------------------

    def recover(
        self,
        first: ReproError,
        attempt: Callable[[ReproError], None],
    ) -> None:
        """Run one recovery incident to completion (or escalation).

        ``attempt(error)`` performs one restart-and-replay round for
        the failure it is handed; raising a retryable error continues
        the incident against the *new* failure (replay discovering a
        second dead shard is the normal cascade), raising anything else
        is fatal and propagates. Backoff between attempts follows the
        policy; attempt 0 is immediate.
        """
        error: ReproError = first
        for round_index in range(self.policy.max_attempts):
            if not self.is_retryable(error):
                raise error
            self.record_failure(error)
            self._sleep(self.policy.delay(round_index, self._rng))
            try:
                attempt(error)
            except ReproError as again:
                error = again
                continue
            self.recoveries += 1
            return
        shard = self._shard_of(error)
        raise ShardUnrecoverableError(
            -1 if shard is None else shard,
            f"recovery gave up after {self.policy.max_attempts} "
            f"attempts (last: {type(error).__name__}: {error})",
            failures=0 if shard is None else self.failures[shard],
        ) from error

    # -- retry of a plain callable ------------------------------------------

    def run(self, fn: Callable[[], object], *, what: str = "operation"):
        """Call ``fn`` with supervised retries; return its result.

        The non-incident variant for idempotent bring-up work (leasing
        a shard onto a host that may still be rebooting): retryable
        failures back off and retry up to ``max_attempts``; fatal ones
        propagate immediately.
        """
        last: BaseException | None = None
        for round_index in range(self.policy.max_attempts):
            if last is not None:
                self.record_failure(last)
                self._sleep(self.policy.delay(round_index, self._rng))
            try:
                return fn()
            except ReproError as exc:
                if not self.is_retryable(exc):
                    raise
                last = exc
        shard = self._shard_of(last)
        raise ShardUnrecoverableError(
            -1 if shard is None else shard,
            f"{what} failed after {self.policy.max_attempts} attempts "
            f"(last: {type(last).__name__}: {last})",
            failures=0 if shard is None else self.failures[shard],
        ) from last

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict:
        """The recovery ledger summary (what the chaos bench records)."""
        return {
            "recoveries": self.recoveries,
            "failures": list(self.failures),
            "anonymous_failures": self._anonymous_failures,
            "incidents": len(self.log),
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ShardSupervisor(name={self.name!r}, "
            f"shards={self.num_shards}, recoveries={self.recoveries}, "
            f"failures={sum(self.failures)})"
        )
