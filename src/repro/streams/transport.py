"""Shard transports: how a coordinator reaches a shard replica.

The :class:`~repro.streams.workers.ShardWorker` protocol layer (strict
request/reply, crash surfacing, token matching) is transport-agnostic;
this module defines the :class:`ShardTransport` interface it drives and
the *network* implementation. Three transports exist:

* the bounded-queue and shared-memory slot-ring paths of the process
  backend (:class:`~repro.streams.workers.ProcessShardTransport`,
  which lives next to the worker entry point it spawns);
* :class:`TcpShardTransport` (here) — the same protocol over a TCP
  connection to a shard **host agent** (:mod:`repro.streams.host`),
  which is what makes shard replicas location-transparent in fact: a
  replica restored from a shipped checkpoint behind a socket behaves
  bit-identically to one in a local worker process.

Wire format (stdlib only — ``socket`` + ``struct``): every frame is a
fixed header (magic, protocol version byte, frame kind, payload
length) followed by exactly ``length`` payload bytes. A truncated
frame, a wrong magic, a declared length above the frame cap
(:data:`DEFAULT_MAX_FRAME_BYTES`, checked *before* any allocation), or
a cross-version frame raises :class:`~repro.errors.ProtocolError`
instead of deserialising garbage, and version mismatches are rejected
at the HELLO handshake before any payload is exchanged. Three frame
kinds carry the whole protocol:

* ``HELLO`` — handshake metadata (JSON), exchanged once per
  connection in both directions;
* ``BLOCK`` — one encoded :class:`~repro.graph.stream.EventBlock`
  (the PR-4 ``write_into``/``from_buffer`` wire format, reused
  byte-for-byte), with the declared event count cross-checked against
  the frame length;
* ``CONTROL`` — a protocol tuple in the RSX2 control codec
  (:mod:`repro.streams.codec`): batch chunks for non-int label
  streams, ``sync``/``snapshot``/``stop`` requests and replies, the
  initial shard lease, and error reports. Every decoded message is
  schema-validated before dispatch, so a well-formed-but-wrong tuple
  is as loud as a corrupt one. Checkpoint states inside control
  tuples travel framed by
  :func:`~repro.samplers.checkpoint.state_to_wire` (magic + version +
  CRC-32), so state corruption also fails loudly.

Backpressure: the host agent reads and processes one frame at a time,
so an ingesting coordinator can run ahead of a shard only by what the
kernel socket buffers hold — a fixed bound, playing the role the
bounded inbox queue plays for the process backend. Ordering and the
strict request/reply discipline are identical across transports, which
is why serial == process == remote bit-identity holds.

Liveness: a fourth frame kind, ``HEARTBEAT`` (empty payload), lets
either end of a connection prove it is alive without application
traffic. Senders that enable ``heartbeat_interval`` emit one per
interval from a background thread (all writes to a shared socket are
serialised by a send lock, so a heartbeat can never tear a mid-flight
frame); receivers that enable an idle deadline treat *any* frame —
heartbeats included — as liveness, and declare the peer lost when the
window passes with silence. A declared-dead peer surfaces as the typed
(retryable) :class:`~repro.errors.PeerLostError` instead of a hang or
a late send failure.

Trust model: **no pickle on the wire.** Since protocol version 2,
control payloads ride the RSX2 codec — tagged scalars and containers
with hard depth and size limits — and leases carry a *named*
weight-spec registry entry instead of a pickled callable, so hostile
bytes can produce a typed error, never code execution or an oversized
allocation. Optional shared-key authentication (:class:`FrameAuth`)
narrows *who* can speak at all: with ``--auth-key`` set on both ends,
every frame carries an HMAC-SHA256 tag keyed by a per-connection
session key (each HELLO contributes a fresh nonce), so an unkeyed
peer cannot get a single frame accepted. HMAC narrows who, the codec
narrows what; neither encrypts traffic — this remains a
cluster-internal transport, not a public API surface.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_module
import json
import os
import socket
import struct
import threading
import time
from abc import ABC, abstractmethod

from repro.errors import ConfigurationError, PeerLostError, ProtocolError
from repro.graph.stream import EventBlock
from repro.streams.codec import decode as _decode_payload
from repro.streams.codec import encode as _encode_payload
from repro.streams.codec import validate_host_reply

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "ShardTransport",
    "TransportClosed",
    "TcpShardTransport",
    "FrameAuth",
    "parse_address",
    "frame_bytes",
    "parse_frame_header",
    "read_frame",
    "write_frame",
    "FRAME_HEADER_SIZE",
    "FRAME_HELLO",
    "FRAME_CONTROL",
    "FRAME_BLOCK",
    "FRAME_HEARTBEAT",
]

#: Version byte carried by every frame; bumped on any incompatible
#: wire-format change. Mismatches are rejected at handshake, so a
#: mixed fleet fails closed with a typed error instead of misparsing.
#: Version 2 retired pickled CONTROL payloads for the RSX2 codec.
PROTOCOL_VERSION = 2

#: Frame header: magic, protocol version, frame kind, payload length.
_FRAME_MAGIC = b"RSX1"
_FRAME_HEADER = struct.Struct("<4sBBxxQ")

FRAME_HELLO = 0
FRAME_CONTROL = 1
FRAME_BLOCK = 2
#: Liveness proof; empty payload. Same header, so pre-heartbeat peers
#: reject it loudly (unknown kind) rather than misparsing it.
FRAME_HEARTBEAT = 3
_FRAME_KINDS = (FRAME_HELLO, FRAME_CONTROL, FRAME_BLOCK, FRAME_HEARTBEAT)

#: Default upper bound on a declared payload length, enforced *before*
#: any allocation: a hostile u64 length claim fails as a ProtocolError
#: while still just a header. 64 MiB is far above any real frame
#: (event chunks are slot-ring sized, checkpoints are compact JSON)
#: yet small enough that even a burst of lying peers cannot pressure
#: memory. Raisable per executor/service via the ``max_frame_bytes``
#: knob when genuinely huge checkpoints need to travel.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024


class TransportClosed(Exception):
    """Internal signal: the peer is gone (or reported a failure).

    Transports raise this from :meth:`ShardTransport.send` /
    :meth:`ShardTransport.recv`; the protocol layer
    (:class:`~repro.streams.workers.ShardWorker`) converts it into a
    :class:`~repro.errors.WorkerCrashError` naming the shard. Never
    part of the public API.
    """

    def __init__(self, failure: str | None = None) -> None:
        super().__init__(failure or "transport closed")
        #: The peer's error report (formatted traceback text) when one
        #: was salvaged before the connection died, else ``None``.
        self.failure = failure


class ShardTransport(ABC):
    """One shard replica's message pipe, launch included.

    A transport owns the *whole* path to a replica: constructing it
    brings the replica up at the far end (spawning a worker process, or
    leasing the shard onto a remote host agent from its checkpoint) and
    tearing it down releases every resource. The protocol layer above
    is identical for every implementation — that is the point: the
    executor cannot tell a local worker from a remote one.

    Contracts every implementation honours:

    * :meth:`send` blocks on backpressure and raises
      :class:`TransportClosed` (carrying any salvaged error report)
      when the peer is dead;
    * :meth:`recv` blocks for the next reply and raises
      :class:`TransportClosed` when the peer dies with no reply left;
      error reports travel as ordinary ``("error", ...)`` replies;
    * message order is preserved, and chunk/framing boundaries never
      change what the replica computes.
    """

    #: Position of this replica in the executor (for error messages).
    shard_index: int

    @abstractmethod
    def send(self, message: tuple) -> None:
        """Ship one protocol message (blocks on backpressure)."""

    def send_block(self, block: EventBlock) -> None:
        """Ship one columnar event chunk (optimised per transport)."""
        self.send(("block", block.to_bytes()))

    @abstractmethod
    def recv(self) -> tuple:
        """Block for the peer's next reply."""

    @abstractmethod
    def is_alive(self) -> bool:
        """Whether the peer is believed reachable."""

    @abstractmethod
    def kill(self) -> None:
        """Force-terminate the peer side and release local resources."""

    @abstractmethod
    def release(self) -> None:
        """Release local resources after a clean stop (idempotent)."""

    def join(self, timeout: float) -> None:
        """Wait for the peer to wind down after a clean stop."""


def parse_address(address: str) -> tuple[str, int]:
    """Split a ``"host:port"`` string, validating the port."""
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"host address must look like 'host:port', got {address!r}"
        )
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ConfigurationError(
            f"bad port in host address {address!r}"
        ) from exc
    if not 0 <= port <= 65535:
        raise ConfigurationError(f"port out of range in {address!r}")
    return host, port


# -- frame authentication -----------------------------------------------------


class FrameAuth:
    """Shared-key HMAC-SHA256 signing of RSX1 frames.

    Construction wraps the *static* shared key (the ``--auth-key``
    value, both ends identical). Each side's HELLO carries a fresh
    random nonce and is signed with the static key; after the
    handshake, both sides derive the same per-connection **session
    key** from the two nonces (:meth:`derived`) and sign every later
    frame with it — so a captured frame cannot be replayed into a
    different connection, and a peer without the key cannot produce a
    single acceptable frame. The tag covers the frame kind byte as
    well as the payload, so a signed CONTROL frame cannot be replayed
    as a BLOCK.

    This is peer *authentication*, not encryption: payloads still
    travel in the clear, on what must remain a trusted network.
    """

    #: HMAC-SHA256 digest size appended to every signed payload.
    TAG_BYTES = 32

    def __init__(self, key: str | bytes) -> None:
        if isinstance(key, str):
            key = key.encode("utf-8")
        if not key:
            raise ConfigurationError("auth key must be non-empty")
        self._key = key

    @staticmethod
    def new_nonce() -> str:
        """A fresh per-connection challenge (hex, HELLO-safe)."""
        return os.urandom(16).hex()

    def derived(self, initiator_nonce: str, acceptor_nonce: str) -> "FrameAuth":
        """The session-key variant bound to one connection's nonces.

        Both ends call this with the nonces in the same role order
        (connection initiator first), so they derive the same key.
        """
        material = f"{initiator_nonce}:{acceptor_nonce}".encode("utf-8")
        session_key = hmac_module.new(
            self._key, material, hashlib.sha256
        ).digest()
        return FrameAuth(session_key)

    def sign(self, kind: int, payload: bytes) -> bytes:
        """The tag to append to ``payload`` for a ``kind`` frame."""
        return hmac_module.new(
            self._key, bytes([kind]) + payload, hashlib.sha256
        ).digest()

    def verify(self, kind: int, signed_payload: bytes) -> bytes:
        """Check and strip the tag; raises ProtocolError on any failure."""
        if len(signed_payload) < self.TAG_BYTES:
            raise ProtocolError(
                "unauthenticated frame from peer (frame shorter than "
                "an HMAC tag; is the peer running without --auth-key?)"
            )
        payload = signed_payload[: -self.TAG_BYTES]
        tag = signed_payload[-self.TAG_BYTES:]
        if not hmac_module.compare_digest(tag, self.sign(kind, payload)):
            raise ProtocolError(
                "frame HMAC verification failed: peer is unkeyed, "
                "wrong-keyed, or the frame was tampered with"
            )
        return payload


# -- frame plumbing -----------------------------------------------------------

#: Size of the fixed frame header, for readers that buffer their own
#: bytes (the asyncio ingestion front) instead of owning a socket.
FRAME_HEADER_SIZE = _FRAME_HEADER.size


def frame_bytes(kind: int, payload, auth: FrameAuth | None = None) -> bytes:
    """One wire frame (header + payload) as a single bytes object."""
    if auth is not None:
        payload = bytes(payload) + auth.sign(kind, payload)
    header = _FRAME_HEADER.pack(
        _FRAME_MAGIC, PROTOCOL_VERSION, kind, len(payload)
    )
    return header + payload if len(payload) else header


def parse_frame_header(
    header_bytes: bytes, max_frame_bytes: int | None = None
) -> tuple[int, int]:
    """Validate a frame header; return ``(kind, payload length)``.

    The validation half of :func:`read_frame`, factored out for
    readers that do their own buffering (``asyncio`` streams): magic,
    protocol version, frame kind, and the declared-length cap
    (``max_frame_bytes``, default :data:`DEFAULT_MAX_FRAME_BYTES`) all
    fail with :class:`~repro.errors.ProtocolError` exactly as the
    socket reader does — and the cap fails *here*, on header bytes
    alone, so a lying length never reaches an allocation.
    """
    cap = DEFAULT_MAX_FRAME_BYTES if max_frame_bytes is None else max_frame_bytes
    magic, version, kind, length = _FRAME_HEADER.unpack(header_bytes)
    if magic != _FRAME_MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"peer speaks protocol version {version}, this build speaks "
            f"{PROTOCOL_VERSION}; refusing the frame"
        )
    if kind not in _FRAME_KINDS:
        raise ProtocolError(f"unknown frame kind {kind}")
    if length > cap:
        raise ProtocolError(
            f"frame declares a payload of {length} bytes, above the "
            f"{cap}-byte frame cap; refusing before allocation"
        )
    return kind, length


def write_frame(
    sock: socket.socket,
    kind: int,
    payload,
    auth: FrameAuth | None = None,
) -> None:
    """Send one framed payload (header + exact payload bytes).

    Header and payload go out as two ``sendall`` calls on purpose: a
    peer death between them surfaces on the payload send, so a failed
    frame is detected *during* the frame that lost it rather than one
    frame later — the remote executor's fault-injection tests pin that
    timing. With ``auth``, the HMAC tag rides inside the payload (the
    declared length covers it).
    """
    if auth is not None:
        payload = bytes(payload) + auth.sign(kind, payload)
    header = _FRAME_HEADER.pack(
        _FRAME_MAGIC, PROTOCOL_VERSION, kind, len(payload)
    )
    sock.sendall(header)
    if len(payload):
        sock.sendall(payload)


def _recv_exact(
    sock: socket.socket,
    n: int,
    *,
    at_boundary: bool,
    deadline: float | None = None,
) -> bytes:
    """Read exactly ``n`` bytes, tolerating timeout-based liveness polls.

    A clean EOF *between* frames (``at_boundary``) returns ``b""`` so
    the caller can treat it as a session end; EOF mid-frame is a
    truncation and raises :class:`~repro.errors.ProtocolError`.

    ``deadline`` (a :func:`time.monotonic` timestamp) bounds the wait:
    the socket must carry a finite timeout for the poll ticks to fire,
    and a tick past the deadline raises :class:`TimeoutError` instead
    of polling forever — the hook every idle-deadline and op-timeout
    above this function hangs off. Payload bytes mid-frame count as
    activity only in the sense that the deadline is the caller's to
    refresh per frame.
    """
    chunks: list[bytes] = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(n - got)
        except TimeoutError:
            # Liveness poll: nothing arrived this tick.
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"no data from peer within the deadline ({got} of "
                    f"{n} bytes read)"
                ) from None
            continue
        if not chunk:
            if at_boundary and not chunks:
                return b""
            raise ProtocolError(
                f"truncated frame: connection closed after {got} of "
                f"{n} bytes"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket,
    *,
    deadline: float | None = None,
    auth: FrameAuth | None = None,
    max_frame_bytes: int | None = None,
) -> tuple[int, bytes] | None:
    """Read one frame; ``None`` on a clean close between frames.

    Validates the magic, the protocol version, the frame kind, and the
    declared length (the payload read is exact, so a peer that died
    mid-frame surfaces as a truncation) — any violation raises
    :class:`~repro.errors.ProtocolError`, and an over-cap declared
    length is refused before the payload is read. ``deadline`` bounds
    the whole read (see :func:`_recv_exact`); ``auth`` verifies and
    strips the frame's HMAC tag.
    """
    header_bytes = _recv_exact(
        sock, _FRAME_HEADER.size, at_boundary=True, deadline=deadline
    )
    if not header_bytes:
        return None
    kind, length = parse_frame_header(header_bytes, max_frame_bytes)
    payload = (
        _recv_exact(sock, length, at_boundary=False, deadline=deadline)
        if length
        else b""
    )
    if auth is not None:
        payload = auth.verify(kind, payload)
    return kind, payload


def hello_payload(role: str, *, nonce: str | None = None) -> bytes:
    """The JSON handshake payload (version is also in every header).

    ``nonce`` is the sender's per-connection challenge when frame
    authentication is on; both nonces feed the session key
    (:meth:`FrameAuth.derived`).
    """
    meta: dict = {"protocol": PROTOCOL_VERSION, "role": role}
    if nonce is not None:
        meta["nonce"] = nonce
    return json.dumps(meta).encode("utf-8")


def expect_hello(
    sock: socket.socket,
    *,
    peer: str,
    deadline: float | None = None,
    auth: FrameAuth | None = None,
) -> dict:
    """Read the peer's HELLO frame; reject anything else.

    The frame header already carries (and :func:`read_frame` already
    checks) the version byte, so a cross-version peer is rejected here
    — at handshake — before any control payload is decoded. With
    ``auth`` (the *static* key: session keys do not exist before both
    nonces are known), an unsigned or wrong-keyed HELLO is rejected,
    and the peer's HELLO must carry a nonce.
    """
    frame = read_frame(sock, deadline=deadline, auth=auth)
    if frame is None:
        raise ProtocolError(f"{peer} closed the connection before HELLO")
    kind, payload = frame
    if kind != FRAME_HELLO:
        raise ProtocolError(
            f"expected HELLO from {peer}, got frame kind {kind}"
        )
    try:
        meta = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed HELLO payload from {peer}") from exc
    if meta.get("protocol") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"{peer} speaks protocol {meta.get('protocol')!r}, this "
            f"build speaks {PROTOCOL_VERSION}"
        )
    if auth is not None and not meta.get("nonce"):
        raise ProtocolError(
            f"{peer} sent a HELLO without a nonce; frame authentication "
            "requires one from both ends"
        )
    return meta


def block_from_frame(payload: bytes) -> EventBlock:
    """Decode a BLOCK frame payload with an explicit length cross-check.

    The embedded :class:`EventBlock` header declares an event count;
    requiring the frame length to match exactly turns a truncated or
    padded payload into a :class:`~repro.errors.ProtocolError` rather
    than an out-of-bounds read or silently dropped events.
    """
    try:
        block = EventBlock.from_buffer(payload)
    except (ValueError, struct.error) as exc:
        raise ProtocolError(f"undecodable EventBlock frame: {exc}") from exc
    if EventBlock.byte_size(len(block)) != len(payload):
        raise ProtocolError(
            f"EventBlock frame length mismatch: {len(payload)} payload "
            f"bytes for a declared {len(block)}-event block"
        )
    return block


# -- TCP client transport -----------------------------------------------------


class TcpShardTransport(ShardTransport):
    """Reach a shard replica hosted by a remote agent over TCP.

    Constructing the transport performs the whole bring-up: connect,
    exchange HELLO handshakes (version-checked both ways), then lease
    the shard — ship its framed checkpoint state and named weight-spec
    registry entry — and wait for the host's acceptance. From then on
    the message protocol is exactly the process backend's; checkpoint
    states in ``snapshot``/``stop`` replies arrive framed and are
    decoded (integrity-checked) here, so the protocol layer above sees
    plain state dicts on every transport. Every control reply is
    decoded by the RSX2 codec and schema-validated before it reaches
    the protocol layer.

    Args:
        shard_index: position of this replica in the executor.
        state: the replica's checkpoint (ships framed).
        weight_spec: the replica's named weight spec ``(name, params)``
            from :func:`repro.weights.registry.weight_spec_for`, or
            ``None`` (pairing samplers; learned weights ride the
            checkpoint).
        address: the host agent's ``"host:port"``.
        poll_seconds: receive-side liveness poll granularity.
        connect_timeout: seconds allowed for connect + handshake +
            lease acceptance.
        max_frame_bytes: per-connection frame cap override (``None``
            uses :data:`DEFAULT_MAX_FRAME_BYTES`).
        heartbeat_interval: seconds between HEARTBEAT frames sent to
            the host from a background thread (``None`` disables).
            A failed heartbeat send marks the peer lost, so a dead or
            partitioned host surfaces within roughly one interval as
            :class:`~repro.errors.PeerLostError` — the retryable
            signal the supervisor re-leases on — instead of on the
            next application send.
        auth_key: shared secret enabling per-frame HMAC signing (must
            match the host agent's ``--auth-key``); ``None`` runs the
            legacy unauthenticated protocol.
    """

    def __init__(
        self,
        shard_index: int,
        state: dict,
        weight_spec: tuple[str, dict] | None,
        address: str,
        poll_seconds: float = 0.2,
        connect_timeout: float = 10.0,
        heartbeat_interval: float | None = None,
        auth_key: str | None = None,
        max_frame_bytes: int | None = None,
    ) -> None:
        from repro.samplers.checkpoint import state_to_wire

        self.shard_index = shard_index
        self.address = address
        self._poll_seconds = poll_seconds
        self._max_frame_bytes = max_frame_bytes
        self._closed = False
        self._sock: socket.socket | None = None
        self._auth: FrameAuth | None = None
        self._send_lock = threading.Lock()
        self._peer_lost: str | None = None
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_stop = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None
        host, port = parse_address(address)
        try:
            sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            raise PeerLostError(
                f"cannot connect to shard host {address}: {exc}",
                shard_index=shard_index,
            ) from exc
        self._sock = sock
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            handshake_deadline = time.monotonic() + connect_timeout
            sock.settimeout(min(poll_seconds, connect_timeout))
            if auth_key is None:
                write_frame(sock, FRAME_HELLO, hello_payload("coordinator"))
                expect_hello(
                    sock,
                    peer=f"shard host {address}",
                    deadline=handshake_deadline,
                )
            else:
                static = FrameAuth(auth_key)
                nonce = FrameAuth.new_nonce()
                write_frame(
                    sock,
                    FRAME_HELLO,
                    hello_payload("coordinator", nonce=nonce),
                    static,
                )
                meta = expect_hello(
                    sock,
                    peer=f"shard host {address}",
                    deadline=handshake_deadline,
                    auth=static,
                )
                self._auth = static.derived(nonce, meta["nonce"])
            self.send(
                ("lease", shard_index, state_to_wire(state), weight_spec)
            )
            reply = self.recv()
            if reply[0] == "error":
                raise TransportClosed(reply[2])
            if reply[:2] != ("lease", shard_index):
                raise ProtocolError(
                    f"shard host {address} answered the lease with "
                    f"{reply[:2]!r}"
                )
            sock.settimeout(None)
        except TimeoutError as exc:
            self._closed = True
            sock.close()
            raise PeerLostError(
                f"shard host {address} did not complete the handshake "
                f"within {connect_timeout}s: {exc}",
                shard_index=shard_index,
            ) from None
        except BaseException:
            self._closed = True
            sock.close()
            raise
        if heartbeat_interval is not None:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"repro-shard-{shard_index}-heartbeat",
                daemon=True,
            )
            self._heartbeat_thread.start()

    # -- liveness -----------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        """Prove liveness each interval; declare the peer lost on failure.

        The send lock serialises heartbeats against application frames,
        so a heartbeat can never land inside a half-written BLOCK. A
        failed send closes the socket too, which wakes any reader
        blocked in :meth:`recv` within one poll tick.
        """
        while not self._heartbeat_stop.wait(self._heartbeat_interval):
            if self._closed:
                return
            try:
                with self._send_lock:
                    sock = self._sock
                    if sock is None:
                        return
                    sock.settimeout(self._heartbeat_interval)
                    write_frame(sock, FRAME_HEARTBEAT, b"", self._auth)
            except TimeoutError:
                # Kernel send buffer full: application backpressure is
                # in charge, not a dead peer — skip this beat.
                continue
            except (OSError, AttributeError):
                self._peer_lost = (
                    f"shard host {self.address} stopped accepting "
                    "heartbeats"
                )
                self._shutdown()
                return

    def _raise_if_lost(self) -> None:
        if self._peer_lost is not None:
            raise PeerLostError(
                self._peer_lost, shard_index=self.shard_index
            )

    # -- protocol ----------------------------------------------------------

    def send(self, message: tuple) -> None:
        self._raise_if_lost()
        if self._closed:
            raise TransportClosed()
        sock = self._sock
        try:
            with self._send_lock:
                sock.settimeout(None)  # sends block on backpressure
                if message[0] == "block":
                    write_frame(sock, FRAME_BLOCK, message[1], self._auth)
                else:
                    write_frame(
                        sock, FRAME_CONTROL,
                        _encode_payload(message),
                        self._auth,
                    )
        except OSError:
            self._raise_if_lost()
            # The host may have shipped an error report before dying;
            # salvage it so the caller learns the real traceback.
            failure = self._drain_error()
            self._shutdown()
            raise TransportClosed(failure) from None

    def send_block(self, block: EventBlock) -> None:
        self.send(("block", block.to_bytes()))

    def recv(self) -> tuple:
        self._raise_if_lost()
        if self._closed:
            raise TransportClosed()
        sock = self._sock
        sock.settimeout(self._poll_seconds)
        while True:
            try:
                frame = read_frame(
                    sock,
                    auth=self._auth,
                    max_frame_bytes=self._max_frame_bytes,
                )
            except (ProtocolError, OSError) as exc:
                self._raise_if_lost()
                self._shutdown()
                raise TransportClosed(
                    f"connection to shard host {self.address} broke: {exc}"
                ) from None
            if frame is None:
                self._raise_if_lost()
                self._shutdown()
                raise TransportClosed(
                    f"shard host {self.address} closed the connection"
                )
            if frame[0] == FRAME_HEARTBEAT:
                continue  # the host's liveness echo; not a reply
            return self._decode_control(frame)

    def _decode_control(self, frame: tuple[int, bytes]) -> tuple:
        from repro.samplers.checkpoint import state_from_wire

        kind, payload = frame
        if kind != FRAME_CONTROL:
            self._shutdown()
            raise TransportClosed(
                f"unexpected frame kind {kind} from shard host "
                f"{self.address} (expected a control reply)"
            )
        try:
            reply = validate_host_reply(_decode_payload(payload))
        except ProtocolError as exc:
            self._shutdown()
            raise TransportClosed(
                f"undecodable reply from shard host {self.address}: {exc}"
            ) from None
        # Checkpoint-bearing replies carry framed states; decode them
        # here so every transport hands the protocol layer plain dicts.
        if reply[0] in ("snapshot", "stop") and isinstance(reply[2], bytes):
            try:
                reply = reply[:2] + (state_from_wire(reply[2]),)
            except ProtocolError as exc:
                self._shutdown()
                raise TransportClosed(
                    f"shard host {self.address} shipped a corrupt "
                    f"checkpoint frame: {exc}"
                ) from None
        return reply

    def _drain_error(self) -> str | None:
        """Fish a pending ``("error", ...)`` reply out of the socket."""
        sock = self._sock
        if sock is None:
            return None
        try:
            sock.settimeout(1.0)
            while True:
                frame = read_frame(
                    sock,
                    deadline=time.monotonic() + 1.0,
                    auth=self._auth,
                    max_frame_bytes=self._max_frame_bytes,
                )
                if frame is None:
                    return None
                kind, payload = frame
                if kind != FRAME_CONTROL:
                    continue
                reply = validate_host_reply(_decode_payload(payload))
                if reply[0] == "error":
                    return reply[2]
        except Exception:
            return None

    # -- lifecycle ----------------------------------------------------------

    def is_alive(self) -> bool:
        return not self._closed

    def _shutdown(self) -> None:
        self._closed = True
        self._heartbeat_stop.set()
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def kill(self) -> None:
        # Dropping the connection is the kill: the host agent tears the
        # leased replica down when its session socket dies.
        self._shutdown()

    def release(self) -> None:
        self._shutdown()

    def join(self, timeout: float) -> None:
        # The remote replica lives in the host agent's process; after a
        # clean stop reply there is nothing left to wait for here.
        return

    def __repr__(self) -> str:  # pragma: no cover - trivial
        status = "closed" if self._closed else "open"
        return (
            f"TcpShardTransport(shard={self.shard_index}, "
            f"host={self.address!r}, {status})"
        )
