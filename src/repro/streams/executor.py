"""Sharded stream executor: scale one sampler into N replicas.

Production streams outgrow a single consumer in two different ways, and
the executor covers both with the same driver:

* **partition** mode — the fully dynamic edge stream is hash-partitioned
  across N independent sampler replicas: every event routes to the shard
  owning its edge (deterministically, so a deletion always reaches the
  shard holding the insertion and per-shard feasibility is preserved).
  Each replica does 1/N of the work, so this is the *throughput*
  scale-out; the merged estimate rescales the sum of shard-local
  estimates by N^{|H|-1}
  (:func:`~repro.estimators.combine.combine_partition`) because an
  instance survives partitioning only when all its edges co-locate.
* **broadcast** mode — every replica consumes the whole stream with
  independent sampling randomness. Same work per replica as a single
  sampler, but the merged mean of N independent unbiased estimates cuts
  the variance by 1/N (:func:`~repro.estimators.combine.combine_mean`;
  supply per-replica variances to ``merged_estimate`` for the
  inverse-variance weighting). This is the *accuracy* scale-out.

Replicas are ordinary :class:`~repro.samplers.base.SubgraphCountingSampler`
instances driven through their batched ingestion path, so every kernel
fast loop applies shard-locally.
"""

from __future__ import annotations

import zlib
from collections.abc import Callable, Iterable, Sequence
from itertools import islice

from repro.errors import ConfigurationError
from repro.estimators.combine import (
    combine_mean,
    combine_partition,
    combine_variance_weighted,
)
from repro.graph.edges import Edge
from repro.graph.stream import EdgeEvent, EdgeStream
from repro.samplers.base import SubgraphCountingSampler

__all__ = ["ShardedStreamExecutor", "default_shard_key", "partition_events"]

#: Executor execution modes.
_MODES = ("partition", "broadcast")


def default_shard_key(edge: Edge) -> int:
    """Deterministic, process-stable hash of a canonical edge.

    Integer vertices use the tuple hash (Python int/tuple hashing is
    not randomised, unlike str hashing, so routing is reproducible
    across processes — a requirement for deterministic replay and for
    deletions reaching the same shard in a restarted pipeline).
    Int/str mixes fall back to CRC-32 of the edge repr, which is
    process-stable for those types. Anything else is rejected: a
    default ``repr`` embeds the object address, which would route the
    same edge to different shards after a restart — pass a custom
    ``shard_key`` for exotic vertex types.
    """
    u, v = edge
    if type(u) is int and type(v) is int:
        return hash(edge)
    if isinstance(u, (int, str)) and isinstance(v, (int, str)):
        return zlib.crc32(repr(edge).encode("utf-8"))
    raise ConfigurationError(
        "default_shard_key supports int/str vertices (process-stable "
        f"routing), got {type(u).__name__}/{type(v).__name__}; supply a "
        "custom shard_key"
    )


def partition_events(
    events: Iterable[EdgeEvent],
    num_shards: int,
    shard_key: Callable[[Edge], int] = default_shard_key,
) -> list[list[EdgeEvent]]:
    """Split events into ``num_shards`` order-preserving sub-streams.

    Every edge routes to ``shard_key(edge) % num_shards``, so a
    deletion lands in the sub-stream that received the insertion and
    each sub-stream is itself a feasible fully dynamic stream.
    """
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    buckets: list[list[EdgeEvent]] = [[] for _ in range(num_shards)]
    for event in events:
        buckets[shard_key(event.edge) % num_shards].append(event)
    return buckets


class ShardedStreamExecutor:
    """Drive N sampler replicas over one stream and merge their estimates.

    Mirrors the single-sampler interface (``process`` /
    ``process_batch`` / ``process_stream`` / ``estimate``), so the
    experiment runner can use an executor anywhere a sampler fits.

    Args:
        sampler_factory: called as ``sampler_factory(shard_index)`` and
            must return a fresh sampler per shard. Replicas must carry
            *independent* rngs (e.g. from
            :class:`~repro.utils.rng.RngFactory` keyed by shard index)
            — identical seeds would make broadcast replicas redundant
            copies rather than independent estimators.
        num_shards: N ≥ 1.
        mode: ``"partition"`` (hash-route each event to one shard) or
            ``"broadcast"`` (every shard sees every event).
        shard_key: edge → int routing hash (partition mode only).
    """

    def __init__(
        self,
        sampler_factory: Callable[[int], SubgraphCountingSampler],
        num_shards: int,
        mode: str = "partition",
        shard_key: Callable[[Edge], int] = default_shard_key,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        if mode not in _MODES:
            raise ConfigurationError(
                f"mode must be one of {_MODES}, got {mode!r}"
            )
        self.num_shards = num_shards
        self.mode = mode
        self.shard_key = shard_key
        self.shards: list[SubgraphCountingSampler] = [
            sampler_factory(i) for i in range(num_shards)
        ]
        patterns = {shard.pattern.name for shard in self.shards}
        if len(patterns) != 1:
            raise ConfigurationError(
                f"shards must share one pattern, got {sorted(patterns)}"
            )
        self.pattern = self.shards[0].pattern

    # -- ingestion ----------------------------------------------------------

    def process(self, event: EdgeEvent) -> None:
        """Consume one stream event."""
        if self.mode == "partition":
            self.shards[
                self.shard_key(event.edge) % self.num_shards
            ].process(event)
        else:
            for shard in self.shards:
                shard.process(event)

    def process_batch(self, events: Iterable[EdgeEvent]) -> float:
        """Consume a batch of events; return the merged estimate.

        Partition mode groups the batch into per-shard sub-batches
        (order-preserving) and drives each replica through its batched
        fast path once; broadcast mode hands every replica the whole
        batch.
        """
        if not isinstance(events, (list, tuple)):
            events = list(events)
        if self.mode == "partition":
            buckets = partition_events(events, self.num_shards, self.shard_key)
            for shard, bucket in zip(self.shards, buckets):
                if bucket:
                    shard.process_batch(bucket)
        else:
            for shard in self.shards:
                shard.process_batch(events)
        return self.estimate

    def process_stream(
        self, stream: EdgeStream | Iterable[EdgeEvent]
    ) -> float:
        """Consume a whole stream; return the merged final estimate.

        Lazy iterables are consumed in bounded chunks (the same
        single-pass, fixed-memory contract as the samplers').
        """
        if isinstance(stream, (list, tuple, EdgeStream)):
            self.process_batch(list(stream))
            return self.estimate
        iterator = iter(stream)
        while True:
            chunk = list(islice(iterator, 8192))
            if not chunk:
                break
            self.process_batch(chunk)
        return self.estimate

    # -- merged estimation --------------------------------------------------

    def shard_estimates(self) -> list[float]:
        """The raw per-shard partial estimates."""
        return [shard.estimate for shard in self.shards]

    def merged_estimate(
        self, variances: Sequence[float] | None = None
    ) -> float:
        """Fuse the partial estimates according to the execution mode.

        In broadcast mode, passing per-replica ``variances`` selects
        the inverse-variance weighting; partition mode ignores them
        (the partition merge is a scaled sum, not a weighted mean).
        """
        estimates = self.shard_estimates()
        if self.mode == "partition":
            return combine_partition(
                estimates, self.num_shards, self.pattern.num_edges
            )
        if variances is not None:
            return combine_variance_weighted(estimates, variances)
        return combine_mean(estimates)

    @property
    def estimate(self) -> float:
        """The merged estimate of |J(t)|."""
        return self.merged_estimate()

    @property
    def time(self) -> int:
        """Number of events consumed, derived from the shard clocks.

        Partition shards split the stream, so their clocks sum to the
        events consumed; broadcast shards each see every event, so the
        furthest clock is the count. Deriving (rather than keeping a
        separate counter) keeps the value consistent with actual shard
        state even when a shard raises mid-batch.
        """
        if self.mode == "partition":
            return sum(shard.time for shard in self.shards)
        return max(shard.time for shard in self.shards)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ShardedStreamExecutor(mode={self.mode!r}, "
            f"shards={self.num_shards}, pattern={self.pattern.name!r}, "
            f"t={self.time}, estimate={self.estimate:.3f})"
        )
