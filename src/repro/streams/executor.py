"""Sharded stream executor: scale one sampler into N replicas.

Production streams outgrow a single consumer in two different ways, and
the executor covers both with the same driver:

* **partition** mode — the fully dynamic edge stream is hash-partitioned
  across N independent sampler replicas: every event routes to the shard
  owning its edge (deterministically, so a deletion always reaches the
  shard holding the insertion and per-shard feasibility is preserved).
  Each replica does 1/N of the work, so this is the *throughput*
  scale-out; the merged estimate rescales the sum of shard-local
  estimates by N^{|H|-1}
  (:func:`~repro.estimators.combine.combine_partition`) because an
  instance survives partitioning only when all its edges co-locate.
* **broadcast** mode — every replica consumes the whole stream with
  independent sampling randomness. Same work per replica as a single
  sampler, but the merged mean of N independent unbiased estimates cuts
  the variance by 1/N (:func:`~repro.estimators.combine.combine_mean`;
  supply per-replica variances to ``merged_estimate`` for the
  inverse-variance weighting). This is the *accuracy* scale-out.

Replicas are ordinary :class:`~repro.samplers.base.SubgraphCountingSampler`
instances driven through their batched ingestion path, so every kernel
fast loop applies shard-locally.

Both modes run under either of two **backends**:

* ``executor_backend="serial"`` — every replica lives in this process
  and is driven inline (the PR-2 behaviour; zero overhead, no
  parallelism).
* ``executor_backend="process"`` — every replica runs in its own worker
  process (:mod:`repro.streams.workers`), fed event chunks over a
  bounded queue so ingestion pipelines with the parent's stream
  iteration. Replicas are still *constructed* in the parent and shipped
  as checkpoints, so a process run consumes exactly the randomness of
  the serial run: **under fixed seeds the two backends produce
  identical estimates** (the load-bearing contract, tested per sampler
  and per mode).
* ``executor_backend="remote"`` — every replica is **leased onto a
  shard host agent** (:mod:`repro.streams.host`) over TCP, with this
  executor acting as the coordinator: it assigns shards to ``hosts``
  round-robin, routes event blocks through the same deterministic
  partitioner, maps connection loss onto
  :class:`~repro.errors.WorkerCrashError` / :meth:`restart_shard`, and
  supports **elastic membership** — :meth:`add_host` /
  :meth:`drain_host` move shards between hosts by a snapshot barrier +
  checkpoint handoff, never replaying events on surviving shards. The
  replicas still restore from parent-shipped checkpoints and see the
  identical event sequence, so the bit-identity contract extends to
  serial == process == remote.
"""

from __future__ import annotations

import zlib
from collections.abc import Callable, Iterable, Sequence
from dataclasses import asdict, dataclass
from itertools import islice

import numpy as np

from repro.errors import ConfigurationError, WorkerCrashError
from repro.estimators.combine import (
    combine_mean,
    combine_partition,
    combine_variance_weighted,
)
from repro.graph.edges import Edge
from repro.graph.stream import EdgeEvent, EdgeStream, EventBlock
from repro.samplers.base import SubgraphCountingSampler
from repro.samplers.checkpoint import restore_sampler, sampler_state_dict
from repro.streams.workers import ShardWorker, encode_events

__all__ = [
    "ExecutorOptions",
    "ShardedStreamExecutor",
    "default_shard_key",
    "partition_events",
    "partition_block",
    "vectorized_edge_hash",
]

#: Executor execution modes.
_MODES = ("partition", "broadcast")

#: Executor backends.
_BACKENDS = ("serial", "process", "remote")

#: Backends whose replicas live behind ShardWorker handles.
_WORKER_BACKENDS = ("process", "remote")

#: Worker transports for the process backend.
_TRANSPORTS = ("auto", "shm", "queue")


@dataclass(frozen=True)
class ExecutorOptions:
    """How a :class:`ShardedStreamExecutor` runs its replicas.

    One value object for every knob that is about *where and how* the
    replicas execute — as opposed to *what* they compute (the sampler
    factory, shard count, mode, and routing key, which stay positional
    on the executor). Pass it as ``ShardedStreamExecutor(...,
    options=...)`` or ``ExperimentConfig(executor=...)``; the semantics
    of each field are documented on the executor constructor, whose
    flat keyword arguments these mirror.

    ``mp_context`` is process-local (a live :mod:`multiprocessing`
    context does not serialise), so :meth:`to_dict` drops it — options
    that travel over a wire or into a manifest come back with the
    platform default context. ``auth_key`` is a secret, so
    :meth:`to_dict` drops it too: manifests and wire payloads never
    carry the key.

    The robustness knobs: ``recovery_policy`` (a
    :class:`~repro.streams.supervisor.RecoveryPolicy`, or ``None`` for
    the library default) governs supervised restart of crashed shards;
    ``heartbeat_interval`` makes remote transports prove liveness at
    that cadence and ``heartbeat_timeout`` is the matching idle bound
    handed to anything this process *hosts* (both default off).
    """

    backend: str = "serial"
    hosts: tuple[str, ...] = ()
    chunk_size: int = 8192
    queue_depth: int = 8
    transport: str = "auto"
    mp_context: object | None = None
    poll_seconds: float | None = None
    slot_poll_seconds: float | None = None
    stop_timeout: float | None = None
    recovery_policy: "RecoveryPolicy | None" = None
    heartbeat_interval: float | None = None
    heartbeat_timeout: float | None = None
    auth_key: str | None = None
    #: Per-frame payload cap for remote transports, enforced before
    #: allocation; ``None`` uses the transport default (64 MiB).
    max_frame_bytes: int | None = None

    def validate(self) -> None:
        """Reject invalid combinations (same rules as the executor)."""
        if self.backend not in _BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.transport not in _TRANSPORTS:
            raise ConfigurationError(
                f"transport must be one of {_TRANSPORTS}, got "
                f"{self.transport!r}"
            )
        if self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.backend == "remote" and not self.hosts:
            raise ConfigurationError(
                "backend='remote' requires hosts=(...) (shard host "
                "agent addresses)"
            )
        if self.hosts and self.backend != "remote":
            raise ConfigurationError(
                "hosts= is only valid with backend='remote', got "
                f"backend {self.backend!r}"
            )
        for knob in (
            "poll_seconds",
            "slot_poll_seconds",
            "stop_timeout",
            "heartbeat_interval",
            "heartbeat_timeout",
        ):
            value = getattr(self, knob)
            if value is not None and not value > 0:
                raise ConfigurationError(
                    f"{knob} must be > 0, got {value!r}"
                )
        if self.max_frame_bytes is not None and self.max_frame_bytes < 4096:
            # Below a few KiB not even a handshake fits; reject the
            # footgun rather than hand out an unconnectable executor.
            raise ConfigurationError(
                f"max_frame_bytes must be >= 4096, got "
                f"{self.max_frame_bytes!r}"
            )
        if self.recovery_policy is not None:
            self.recovery_policy.validate()

    def to_dict(self) -> dict:
        """JSON form (drops the process-local context and the secret)."""
        payload = asdict(self)
        payload.pop("mp_context")
        payload.pop("auth_key")
        payload["hosts"] = list(self.hosts)
        if self.recovery_policy is not None:
            payload["recovery_policy"] = self.recovery_policy.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ExecutorOptions":
        """Rebuild options written by :meth:`to_dict`."""
        known = {
            name: payload[name]
            for name in (
                "backend",
                "chunk_size",
                "queue_depth",
                "transport",
                "poll_seconds",
                "slot_poll_seconds",
                "stop_timeout",
                "heartbeat_interval",
                "heartbeat_timeout",
                "max_frame_bytes",
            )
            if name in payload
        }
        policy = payload.get("recovery_policy")
        if isinstance(policy, dict):
            from repro.streams.supervisor import RecoveryPolicy

            policy = RecoveryPolicy.from_dict(policy)
        return cls(
            hosts=tuple(payload.get("hosts", ())),
            recovery_policy=policy,
            **known,
        )


def default_shard_key(edge: Edge) -> int:
    """Deterministic, process-stable hash of a canonical edge.

    Integer vertices use the tuple hash (Python int/tuple hashing is
    not randomised, unlike str hashing, so routing is reproducible
    across processes — a requirement for deterministic replay and for
    deletions reaching the same shard in a restarted pipeline).
    Int/str mixes fall back to CRC-32 of the edge repr, which is
    process-stable for those types. Anything else is rejected: a
    default ``repr`` embeds the object address, which would route the
    same edge to different shards after a restart — pass a custom
    ``shard_key`` for exotic vertex types.
    """
    u, v = edge
    if type(u) is int and type(v) is int:
        return hash(edge)
    if isinstance(u, (int, str)) and isinstance(v, (int, str)):
        return zlib.crc32(repr(edge).encode("utf-8"))
    raise ConfigurationError(
        "default_shard_key supports int/str vertices (process-stable "
        f"routing), got {type(u).__name__}/{type(v).__name__}; supply a "
        "custom shard_key"
    )


def partition_events(
    events: Iterable[EdgeEvent],
    num_shards: int,
    shard_key: Callable[[Edge], int] = default_shard_key,
) -> list[list[EdgeEvent]]:
    """Split events into ``num_shards`` order-preserving sub-streams.

    Every edge routes to ``shard_key(edge) % num_shards``, so a
    deletion lands in the sub-stream that received the insertion and
    each sub-stream is itself a feasible fully dynamic stream.
    """
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    buckets: list[list[EdgeEvent]] = [[] for _ in range(num_shards)]
    for event in events:
        buckets[shard_key(event.edge) % num_shards].append(event)
    return buckets


# CPython's tuple hash (xxHash-flavoured, pyhash.c) reimplemented over
# uint64 columns so a whole EventBlock routes in a few numpy passes.
# The constants and steps mirror the C implementation exactly; parity
# with ``hash((u, v))`` is locked down by tests.
_XXPRIME_1 = np.uint64(11400714785074694791)
_XXPRIME_2 = np.uint64(14029467366897019727)
_XXPRIME_5 = np.uint64(2870177450012600261)
#: hash(n) = n mod (2^61 - 1) for non-negative Python ints.
_PYHASH_MODULUS = np.uint64((1 << 61) - 1)
_ROT = np.uint64(31)
_INV_ROT = np.uint64(33)


def vectorized_edge_hash(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """``hash((u, v))`` for int64 column pairs, as CPython computes it.

    Only non-negative labels are supported (the library convention;
    checked by the caller) — negative ints hash through a sign-folding
    rule that is not worth vectorising.
    """
    with np.errstate(over="ignore"):
        acc = np.full(u.shape, _XXPRIME_5, dtype=np.uint64)
        for lane in (
            u.astype(np.uint64) % _PYHASH_MODULUS,
            v.astype(np.uint64) % _PYHASH_MODULUS,
        ):
            acc += lane * _XXPRIME_2
            acc = (acc << _ROT) | (acc >> _INV_ROT)
            acc *= _XXPRIME_1
        acc += np.uint64(2) ^ (_XXPRIME_5 ^ np.uint64(3527539))
    result = acc.view(np.int64).copy()
    result[result == -1] = 1546275796
    return result


def partition_block(
    block: EventBlock,
    num_shards: int,
    shard_key: Callable[[Edge], int] = default_shard_key,
) -> list[EventBlock]:
    """Columnar :func:`partition_events`: split a block into sub-blocks.

    With the default shard key and non-negative labels the routing hash
    for the whole block is computed in a handful of numpy passes
    (identical values to ``default_shard_key`` edge by edge, so mixed
    block/event pipelines route consistently); custom keys fall back to
    a per-edge loop. Each sub-block preserves event order, so it is a
    feasible sub-stream exactly like the event-list variant's buckets.
    """
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    u, v = block.u, block.v
    if (
        shard_key is default_shard_key
        and (len(u) == 0 or (int(u.min()) >= 0 and int(v.min()) >= 0))
    ):
        routes = np.mod(vectorized_edge_hash(u, v), num_shards)
    else:
        routes = np.fromiter(
            (
                shard_key((eu, ev)) % num_shards
                for eu, ev in zip(u.tolist(), v.tolist())
            ),
            dtype=np.int64,
            count=len(u),
        )
    is_insert = block.is_insert
    return [
        EventBlock(
            is_insert[mask], u[mask], v[mask], canonical=True
        )
        for mask in (routes == shard for shard in range(num_shards))
    ]


class ShardedStreamExecutor:
    """Drive N sampler replicas over one stream and merge their estimates.

    Mirrors the single-sampler interface (``process`` /
    ``process_batch`` / ``process_stream`` / ``estimate``), so the
    experiment runner can use an executor anywhere a sampler fits.

    Args:
        sampler_factory: called as ``sampler_factory(shard_index)`` and
            must return a fresh sampler per shard. Replicas must carry
            *independent* rngs (e.g. from
            :class:`~repro.utils.rng.RngFactory` keyed by shard index)
            — identical seeds would make broadcast replicas redundant
            copies rather than independent estimators.
        num_shards: N ≥ 1.
        mode: ``"partition"`` (hash-route each event to one shard) or
            ``"broadcast"`` (every shard sees every event).
        shard_key: edge → int routing hash (partition mode only).
        executor_backend: ``"serial"`` (inline replicas) or
            ``"process"`` (one worker process per replica, launched
            lazily on first ingestion). The process backend requires the
            replicas to be checkpointable
            (:func:`~repro.samplers.checkpoint.sampler_state_dict`) and
            their weight functions picklable.
        mp_context: multiprocessing context or start-method name for the
            process backend; ``None`` uses the platform default. State
            ships as checkpoints either way, so results do not depend
            on the start method.
        chunk_size: events per dispatched batch chunk (process backend).
            Chunk boundaries never change results — batched ingestion is
            bit-identical regardless of batching — so this is purely a
            latency/throughput knob. The default (8192, one
            shared-memory slot per chunk) favours throughput; lower it
            when estimate reads must observe ingestion promptly.
        queue_depth: per-worker bound on undelivered chunks before
            ingestion blocks (the pipelining backpressure).
        transport: how event chunks reach the workers (process backend).
            ``"shm"`` ships encoded
            :class:`~repro.graph.stream.EventBlock` payloads through a
            per-worker shared-memory slot ring (no per-chunk pickling);
            ``"queue"`` is the legacy pickled-tuple path; ``"auto"``
            (default) uses shared memory and falls back to the queue
            per chunk for streams whose vertex labels cannot ride an
            int64 block. Results are bit-identical across transports.
        hosts: shard host agent addresses (``"host:port"``) for the
            remote backend; shards are leased across them round-robin
            at launch (shard *routing* stays ``hash % num_shards`` —
            membership changes move replicas between hosts, never
            re-route events). Required for, and only valid with,
            ``executor_backend="remote"``.
        poll_seconds: liveness-poll granularity for blocked worker
            waits (full inbox / awaited reply); ``None`` keeps the
            library default (0.2s).
        slot_poll_seconds: liveness-poll granularity for shared-memory
            slot waits (the shm transport's backpressure); ``None``
            keeps the library default (0.5ms).
        stop_timeout: seconds a clean worker stop may take before
            teardown stops waiting on the process; ``None`` keeps the
            library default (10s).
        recovery_policy: a
            :class:`~repro.streams.supervisor.RecoveryPolicy` enabling
            supervised retry of worker bring-up (and consumed by the
            session layer for full restart-and-replay recovery);
            ``None`` disables bring-up retries here.
        heartbeat_interval: seconds between liveness heartbeats on
            remote shard transports; ``None`` (default) disables them.
        heartbeat_timeout: idle bound advertised to hosted peers
            (recorded on :attr:`options` for service layers); ``None``
            disables it.
        auth_key: shared secret for HMAC frame signing on remote
            transports; must match the host agents' ``--auth-key``.
        options: an :class:`ExecutorOptions` bundling every execution
            knob above (backend, transport, hosts, chunk/queue sizing,
            poll/stop timing). The preferred spelling — the flat
            keyword arguments (``executor_backend``, ``mp_context``,
            ``chunk_size``, ``queue_depth``, ``transport``, ``hosts``,
            ``poll_seconds``, ``slot_poll_seconds``, ``stop_timeout``)
            are kept for backwards compatibility and may be deprecated
            in a future release; mixing them with ``options=`` is
            rejected.
    """

    def __init__(
        self,
        sampler_factory: Callable[[int], SubgraphCountingSampler],
        num_shards: int,
        mode: str = "partition",
        shard_key: Callable[[Edge], int] = default_shard_key,
        executor_backend: str = "serial",
        mp_context=None,
        chunk_size: int = 8192,
        queue_depth: int = 8,
        transport: str = "auto",
        hosts: Sequence[str] | None = None,
        poll_seconds: float | None = None,
        slot_poll_seconds: float | None = None,
        stop_timeout: float | None = None,
        options: ExecutorOptions | None = None,
        recovery_policy=None,
        heartbeat_interval: float | None = None,
        heartbeat_timeout: float | None = None,
        auth_key: str | None = None,
        max_frame_bytes: int | None = None,
    ) -> None:
        if options is not None:
            overridden = [
                name
                for name, value, default in (
                    ("executor_backend", executor_backend, "serial"),
                    ("mp_context", mp_context, None),
                    ("chunk_size", chunk_size, 8192),
                    ("queue_depth", queue_depth, 8),
                    ("transport", transport, "auto"),
                    ("hosts", hosts, None),
                    ("poll_seconds", poll_seconds, None),
                    ("slot_poll_seconds", slot_poll_seconds, None),
                    ("stop_timeout", stop_timeout, None),
                    ("recovery_policy", recovery_policy, None),
                    ("heartbeat_interval", heartbeat_interval, None),
                    ("heartbeat_timeout", heartbeat_timeout, None),
                    ("auth_key", auth_key, None),
                    ("max_frame_bytes", max_frame_bytes, None),
                )
                if value != default
            ]
            if overridden:
                raise ConfigurationError(
                    "pass execution knobs either through options= or as "
                    "flat keyword arguments, not both; flat arguments "
                    f"also given: {overridden}"
                )
            options.validate()
            executor_backend = options.backend
            mp_context = options.mp_context
            chunk_size = options.chunk_size
            queue_depth = options.queue_depth
            transport = options.transport
            hosts = options.hosts or None
            poll_seconds = options.poll_seconds
            slot_poll_seconds = options.slot_poll_seconds
            stop_timeout = options.stop_timeout
            recovery_policy = options.recovery_policy
            heartbeat_interval = options.heartbeat_interval
            heartbeat_timeout = options.heartbeat_timeout
            auth_key = options.auth_key
            max_frame_bytes = options.max_frame_bytes
        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        if mode not in _MODES:
            raise ConfigurationError(
                f"mode must be one of {_MODES}, got {mode!r}"
            )
        if executor_backend not in _BACKENDS:
            raise ConfigurationError(
                f"executor_backend must be one of {_BACKENDS}, got "
                f"{executor_backend!r}"
            )
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if transport not in _TRANSPORTS:
            raise ConfigurationError(
                f"transport must be one of {_TRANSPORTS}, got "
                f"{transport!r}"
            )
        if executor_backend == "remote":
            if not hosts:
                raise ConfigurationError(
                    "executor_backend='remote' requires hosts=[...] "
                    "(shard host agent addresses)"
                )
            if len(set(hosts)) != len(hosts):
                raise ConfigurationError(
                    f"duplicate addresses in hosts={list(hosts)!r}"
                )
        elif hosts:
            raise ConfigurationError(
                "hosts= is only valid with executor_backend='remote', "
                f"got backend {executor_backend!r}"
            )
        for knob, value in (
            ("poll_seconds", poll_seconds),
            ("slot_poll_seconds", slot_poll_seconds),
            ("stop_timeout", stop_timeout),
            ("heartbeat_interval", heartbeat_interval),
            ("heartbeat_timeout", heartbeat_timeout),
        ):
            if value is not None and not value > 0:
                raise ConfigurationError(
                    f"{knob} must be > 0, got {value!r}"
                )
        if max_frame_bytes is not None and max_frame_bytes < 4096:
            raise ConfigurationError(
                f"max_frame_bytes must be >= 4096, got {max_frame_bytes!r}"
            )
        self.num_shards = num_shards
        self.mode = mode
        self.shard_key = shard_key
        self.executor_backend = executor_backend
        self.transport = transport
        #: The execution knobs as one value object (a construction-time
        #: snapshot — remote host membership may drift via add/drain).
        self.options = ExecutorOptions(
            backend=executor_backend,
            hosts=tuple(hosts or ()),
            chunk_size=chunk_size,
            queue_depth=queue_depth,
            transport=transport,
            mp_context=mp_context,
            poll_seconds=poll_seconds,
            slot_poll_seconds=slot_poll_seconds,
            stop_timeout=stop_timeout,
            recovery_policy=recovery_policy,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            auth_key=auth_key,
            max_frame_bytes=max_frame_bytes,
        )
        if recovery_policy is not None:
            recovery_policy.validate()
        self.recovery_policy = recovery_policy
        #: Lazily-built supervisor for worker bring-up retries.
        self._spawn_supervisor = None
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_timeout = heartbeat_timeout
        self._auth_key = auth_key
        self._max_frame_bytes = max_frame_bytes
        self._mp_context = mp_context
        self._chunk_size = chunk_size
        self._queue_depth = queue_depth
        self._poll_seconds = poll_seconds
        self._slot_poll_seconds = slot_poll_seconds
        self._stop_timeout = stop_timeout
        #: Host membership (remote backend); mutated by add/drain.
        self._hosts: list[str] = list(hosts or ())
        #: Current shard → host placement (remote backend, after launch).
        self._assignment: list[str] | None = None
        self.shards: list[SubgraphCountingSampler] = [
            sampler_factory(i) for i in range(num_shards)
        ]
        patterns = {shard.pattern.name for shard in self.shards}
        if len(patterns) != 1:
            raise ConfigurationError(
                f"shards must share one pattern, got {sorted(patterns)}"
            )
        self.pattern = self.shards[0].pattern
        #: Live worker handles (process backend, after lazy start).
        self._workers: list[ShardWorker] | None = None
        #: Events buffered in the parent, not yet dispatched to workers.
        self._pending: list[EdgeEvent] = []
        #: Last shard checkpoints harvested by :meth:`snapshot`.
        self._snapshots: list[dict] | None = None
        self._worker_times: list[int] = []
        self._worker_estimates: list[float] = []
        self._synced = False

    # -- worker-backend lifecycle --------------------------------------------

    @property
    def _uses_workers(self) -> bool:
        return self.executor_backend in _WORKER_BACKENDS

    @property
    def _process_active(self) -> bool:
        return self._workers is not None

    def _ensure_workers(self) -> None:
        """Lazily launch the worker fleet (process/remote backends).

        Every replica is snapshotted through the checkpoint layer and
        restored inside its worker, so worker-side state is bit-identical
        to the parent replica at launch. From this point on the workers
        hold the authoritative state; ``self.shards`` is refreshed from
        their final checkpoints on :meth:`close`. On the remote backend
        the fleet launch is also the lease placement: shard *i* goes to
        ``hosts[i % len(hosts)]``.
        """
        if not self._uses_workers or self._workers is not None:
            return
        if self.executor_backend == "remote":
            self._assignment = [
                self._hosts[i % len(self._hosts)]
                for i in range(self.num_shards)
            ]
        workers: list[ShardWorker] = []
        try:
            for index, shard in enumerate(self.shards):
                workers.append(
                    self._spawn_worker(
                        index,
                        sampler_state_dict(shard),
                        host=(
                            None if self._assignment is None
                            else self._assignment[index]
                        ),
                    )
                )
        except BaseException:
            for worker in workers:
                worker.kill()
            raise
        self._workers = workers
        self._synced = False

    def _spawn_worker(
        self, index: int, state: dict, host: str | None = None
    ) -> ShardWorker:
        return ShardWorker(
            index,
            state,
            weight_fn=getattr(self.shards[index], "weight_fn", None),
            mp_context=self._mp_context,
            queue_depth=self._queue_depth,
            transport=self.transport,
            chunk_hint=self._chunk_size,
            host=host,
            poll_seconds=self._poll_seconds,
            slot_poll_seconds=self._slot_poll_seconds,
            stop_timeout=(
                10.0 if self._stop_timeout is None else self._stop_timeout
            ),
            heartbeat_interval=self._heartbeat_interval,
            auth_key=self._auth_key,
            max_frame_bytes=self._max_frame_bytes,
        )

    # -- ingestion ----------------------------------------------------------

    def process(self, event: EdgeEvent) -> None:
        """Consume one stream event.

        On the process/remote backends the event is buffered and
        dispatched in chunks; it is guaranteed to be applied by the
        next estimate / snapshot / time query (which flush the buffer
        first).
        """
        if self._uses_workers:
            self._ensure_workers()
            self._pending.append(event)
            if len(self._pending) >= self._chunk_size:
                self._flush_pending()
            return
        if self.mode == "partition":
            self.shards[
                self.shard_key(event.edge) % self.num_shards
            ].process(event)
        else:
            for shard in self.shards:
                shard.process(event)

    def _ingest(self, events: list[EdgeEvent] | EventBlock) -> None:
        """Route a batch to the replicas without computing the estimate."""
        if self._uses_workers:
            self._ensure_workers()
            if self._pending:
                self._flush_pending()
            chunk_size = self._chunk_size
            for start in range(0, len(events), chunk_size):
                self._dispatch(events[start:start + chunk_size])
            return
        if self.mode == "partition":
            if isinstance(events, EventBlock):
                block_buckets = partition_block(
                    events, self.num_shards, self.shard_key
                )
                for shard, bucket in zip(self.shards, block_buckets):
                    if len(bucket):
                        shard.process_batch(bucket)
                return
            buckets = partition_events(events, self.num_shards, self.shard_key)
            for shard, bucket in zip(self.shards, buckets):
                if bucket:
                    shard.process_batch(bucket)
        else:
            for shard in self.shards:
                shard.process_batch(events)

    def _dispatch(self, events: list[EdgeEvent] | EventBlock) -> None:
        """Ship one chunk to the worker fleet (process backend).

        Chunks travel as encoded :class:`EventBlock` payloads over the
        shared-memory transport whenever the labels allow it (always,
        for int-vertex streams); otherwise they fall back to the
        pickled-tuple queue path. Either way both ends process the
        identical event sequence, so results do not depend on the
        transport.
        """
        workers = self._workers
        force_queue = self.transport == "queue"
        block: EventBlock | None
        if isinstance(events, EventBlock):
            block = events
        elif force_queue:
            block = None
        else:
            try:
                block = EventBlock.from_events(events)
            except TypeError:
                block = None
        if self.mode == "partition":
            if block is not None:
                block_buckets = partition_block(
                    block, self.num_shards, self.shard_key
                )
                for worker, bucket in zip(workers, block_buckets):
                    if len(bucket):
                        if force_queue:
                            # A block-shaped bucket still honours the
                            # forced legacy wire format: tuple payloads
                            # over the queue.
                            worker.send_batch(
                                list(zip(*bucket.columns()))
                            )
                        else:
                            worker.send_block(bucket)
            else:
                buckets = partition_events(
                    events, self.num_shards, self.shard_key
                )
                for worker, bucket in zip(workers, buckets):
                    if bucket:
                        worker.send_batch(encode_events(bucket))
        else:
            if block is not None:
                payload = (
                    list(zip(*block.columns())) if force_queue else None
                )
                for worker in workers:
                    if force_queue:
                        worker.send_batch(payload)
                    else:
                        worker.send_block(block)
            else:
                payload = encode_events(events)
                for worker in workers:
                    worker.send_batch(payload)
        self._synced = False

    def _flush_pending(self) -> None:
        pending, self._pending = self._pending, []
        self._dispatch(pending)

    def ingest(
        self, events: EventBlock | Iterable[EdgeEvent]
    ) -> None:
        """Route a batch to the replicas without a synchronisation barrier.

        The serving tier's write path: like :meth:`process_batch` but
        without the estimate read, so worker-backend ingestion keeps
        pipelining — the next ``estimate`` / ``time`` / ``shard_times``
        read is the barrier where it lands. Results are bit-identical
        however the stream is cut into ``ingest`` calls.
        """
        if not isinstance(events, (list, EventBlock)):
            events = list(events)
        self._ingest(events)

    def ingest_shard(
        self, index: int, events: EventBlock | list[EdgeEvent]
    ) -> None:
        """Deliver events to one replica directly, bypassing routing.

        The crash-recovery replay primitive: after
        :meth:`restart_shard` restores a replica to its last
        checkpoint, the session layer re-feeds exactly the sub-stream
        that replica lost — already routed, so re-partitioning (or
        broadcasting) it would be wrong. Only the named replica is
        touched; its siblings never see these events.
        """
        if not 0 <= index < self.num_shards:
            raise ConfigurationError(
                f"shard index {index} out of range [0, {self.num_shards})"
            )
        if not len(events):
            return
        if not self._uses_workers:
            self.shards[index].process_batch(events)
            return
        self._ensure_workers()
        if self._pending:
            self._flush_pending()
        worker = self._workers[index]
        block: EventBlock | None
        if isinstance(events, EventBlock):
            block = events
        elif self.transport == "queue":
            block = None
        else:
            try:
                block = EventBlock.from_events(events)
            except TypeError:
                block = None
        if block is not None and self.transport != "queue":
            worker.send_block(block)
        elif block is not None:
            worker.send_batch(list(zip(*block.columns())))
        else:
            worker.send_batch(encode_events(events))
        self._synced = False

    def process_batch(
        self, events: EventBlock | Iterable[EdgeEvent]
    ) -> float:
        """Consume a batch of events; return the merged estimate.

        Accepts a columnar :class:`~repro.graph.stream.EventBlock` or
        any :class:`EdgeEvent` iterable (results are bit-identical
        across representations). Partition mode groups the batch into
        per-shard sub-batches (order-preserving) and drives each
        replica through its batched fast path once; broadcast mode
        hands every replica the whole batch. On the process backend,
        returning the estimate is a synchronisation point — prefer
        :meth:`process_stream` (one final barrier) when ingesting large
        streams.
        """
        if not isinstance(events, (list, EventBlock)):
            events = list(events)
        self._ingest(events)
        return self.estimate

    def process_stream(
        self, stream: EdgeStream | EventBlock | Iterable[EdgeEvent]
    ) -> float:
        """Consume a whole stream; return the merged final estimate.

        Lazy iterables are consumed in bounded chunks (the same
        single-pass, fixed-memory contract as the samplers'). On the
        process backend the chunks are dispatched without intermediate
        barriers, so the parent's iteration pipelines with the workers'
        ingestion; the single synchronisation happens at the end.
        """
        if isinstance(stream, (list, tuple, EdgeStream, EventBlock)):
            if not isinstance(stream, (list, EventBlock)):
                stream = list(stream)
            self._ingest(stream)
            return self.estimate
        iterator = iter(stream)
        while True:
            chunk = list(islice(iterator, 8192))
            if not chunk:
                break
            self._ingest(chunk)
        return self.estimate

    # -- worker synchronisation ---------------------------------------------

    def _sync(self) -> None:
        """Flush buffered events and barrier every worker.

        After this returns, ``_worker_times`` / ``_worker_estimates``
        reflect every event handed to the executor so far.
        """
        if self._pending:
            self._flush_pending()
        if self._synced:
            return
        times: list[int] = []
        estimates: list[float] = []
        for worker in self._workers:
            _, _, shard_time, shard_estimate = worker.request("sync")
            times.append(shard_time)
            estimates.append(shard_estimate)
        self._worker_times = times
        self._worker_estimates = estimates
        self._synced = True

    # -- checkpointing / crash recovery --------------------------------------

    def snapshot(self) -> list[dict]:
        """Checkpoint every shard; return the per-shard state dicts.

        The states come from the generic checkpoint layer
        (:func:`~repro.samplers.checkpoint.sampler_state_dict`) and are
        JSON-serialisable. On the process backend the buffer is flushed
        and every worker barriered first, so the snapshot covers every
        event handed to the executor; the result is also retained as the
        restart point for :meth:`restart_shard`.
        """
        if self._process_active:
            self._sync()
            states = [
                worker.request("snapshot")[2] for worker in self._workers
            ]
        else:
            states = [sampler_state_dict(shard) for shard in self.shards]
        self._snapshots = states
        return states

    def restart_shard(
        self,
        index: int,
        state: dict | None = None,
        host: str | None = None,
    ) -> None:
        """Respawn one crashed (or killed) worker from a checkpoint.

        ``state`` defaults to the shard's entry in the latest
        :meth:`snapshot`. Only the named shard is rebuilt — the other
        workers keep their live state, so recovery never replays their
        events. Events dispatched to the shard *after* the checkpoint
        was taken are lost; callers coordinate snapshots with ingestion
        (e.g. snapshot at batch boundaries) to bound that window.

        On the remote backend, ``host`` re-places the shard (e.g. onto
        a surviving host after its old host died); it must be a current
        member, and defaults to the shard's existing placement.
        """
        if not self._process_active:
            raise ConfigurationError(
                "restart_shard requires a started process or remote "
                "backend"
            )
        if not 0 <= index < self.num_shards:
            raise ConfigurationError(
                f"shard index {index} out of range [0, {self.num_shards})"
            )
        if host is not None:
            if self.executor_backend != "remote":
                raise ConfigurationError(
                    "restart_shard(host=...) is only valid with "
                    "executor_backend='remote'"
                )
            if host not in self._hosts:
                raise ConfigurationError(
                    f"host {host!r} is not a member; current hosts: "
                    f"{self._hosts}"
                )
        if state is None:
            if self._snapshots is None:
                raise ConfigurationError(
                    f"no checkpoint to restart shard {index} from; call "
                    "snapshot() (or pass state=) first"
                )
            state = self._snapshots[index]
        if self._assignment is not None:
            if host is not None:
                self._assignment[index] = host
            host = self._assignment[index]
        self._workers[index].kill()
        self._workers[index] = self._supervised_spawn(index, state, host)
        self._synced = False

    def _supervised_spawn(
        self, index: int, state: dict, host: str | None
    ) -> ShardWorker:
        """Spawn a replacement worker, retrying bring-up under policy.

        With a :attr:`recovery_policy`, transient spawn failures (a
        host agent still rebooting, a leased port mid-handoff) back off
        and retry instead of failing the whole recovery incident on a
        race the next attempt would win.
        """
        if self.recovery_policy is None:
            return self._spawn_worker(index, state, host=host)
        if self._spawn_supervisor is None:
            self._spawn_supervisor = self.recovery_policy.build_supervisor(
                self.num_shards, name="executor-spawn"
            )
        return self._spawn_supervisor.run(
            lambda: self._spawn_worker(index, state, host=host),
            what=f"respawning shard {index}",
        )

    # -- elastic membership (remote backend) ----------------------------------

    @property
    def hosts(self) -> tuple[str, ...]:
        """Current host membership (remote backend; empty otherwise)."""
        return tuple(self._hosts)

    def shard_hosts(self) -> list[str] | None:
        """Current shard → host placement (``None`` before launch)."""
        return None if self._assignment is None else list(self._assignment)

    def _host_load(self, address: str) -> int:
        return sum(1 for placed in self._assignment if placed == address)

    def _move_shard(self, index: int, target: str) -> None:
        """Hand one shard to ``target`` by checkpoint handoff.

        ``stop()`` is the per-shard snapshot barrier: the old replica
        drains its inbox in order, ships its final checkpoint, and ends
        its lease; the new replica restores from exactly that state on
        the target host. No other shard is touched — survivors never
        replay — and the shard's event routing is unchanged (routing is
        ``hash % num_shards``; only placement moved), so the stream
        continues bit-identically.
        """
        state = self._workers[index].stop()
        self._workers[index] = self._spawn_worker(index, state, host=target)
        self._assignment[index] = target
        self._synced = False

    def add_host(self, address: str) -> list[int]:
        """Join ``address`` to the fleet and rebalance shards onto it.

        Moves shards (highest index first, from the most-loaded hosts)
        until the new host holds ``num_shards // len(hosts)`` replicas
        — each move a snapshot-barrier checkpoint handoff that never
        replays surviving shards. Returns the moved shard indices (may
        be empty: before launch the new host simply participates in the
        initial placement; with more hosts than shards there is nothing
        to move).
        """
        if self.executor_backend != "remote":
            raise ConfigurationError(
                "add_host requires executor_backend='remote'"
            )
        if address in self._hosts:
            raise ConfigurationError(
                f"host {address!r} is already a member"
            )
        self._hosts.append(address)
        if self._workers is None:
            return []
        if self._pending:
            self._flush_pending()
        target_load = self.num_shards // len(self._hosts)
        moved: list[int] = []
        while self._host_load(address) < target_load:
            donor = max(
                (h for h in self._hosts if h != address),
                key=lambda h: (
                    self._host_load(h),
                    -self._hosts.index(h),
                ),
            )
            index = max(
                i for i, placed in enumerate(self._assignment)
                if placed == donor
            )
            self._move_shard(index, address)
            moved.append(index)
        return moved

    def drain_host(self, address: str) -> list[int]:
        """Move every shard off ``address`` and drop it from the fleet.

        Each shard hands off to the least-loaded remaining host by
        snapshot-barrier checkpoint handoff (survivors never replay).
        Returns the moved shard indices. The drained host's agent is
        *not* contacted beyond the clean lease stops — shutting the
        agent process down is the caller's business.
        """
        if self.executor_backend != "remote":
            raise ConfigurationError(
                "drain_host requires executor_backend='remote'"
            )
        if address not in self._hosts:
            raise ConfigurationError(
                f"host {address!r} is not a member; current hosts: "
                f"{self._hosts}"
            )
        if len(self._hosts) == 1:
            raise ConfigurationError(
                f"cannot drain {address!r}: it is the only host"
            )
        moved: list[int] = []
        if self._workers is not None:
            if self._pending:
                self._flush_pending()
            remaining = [h for h in self._hosts if h != address]
            for index, placed in enumerate(self._assignment):
                if placed != address:
                    continue
                target = min(
                    remaining,
                    key=lambda h: (
                        self._host_load(h),
                        remaining.index(h),
                    ),
                )
                self._move_shard(index, target)
                moved.append(index)
        self._hosts.remove(address)
        return moved

    def shard_times(self) -> list[int]:
        """Per-shard event clocks (events each replica has consumed).

        A worker-backend read is a synchronisation barrier, exactly
        like :attr:`time`. Exposed so recovery and elasticity tests can
        assert that surviving shards were never replayed.
        """
        if self._process_active:
            self._sync()
            return list(self._worker_times)
        return [shard.time for shard in self.shards]

    def close(self) -> None:
        """Stop the worker fleet, harvesting final state into the parent.

        Each worker's final checkpoint is restored over the parent-side
        replica, so after ``close()`` the executor keeps answering
        ``estimate`` / ``shard_estimates`` / ``time`` queries serially
        with exactly the workers' final state. A worker found dead is
        replaced by its entry in the latest :meth:`snapshot` when one
        exists (its parent replica otherwise keeps the pre-crash state
        it had), and the first such crash is re-raised once every worker
        has been stopped. Idempotent; a no-op on the serial backend.
        """
        if not self._process_active:
            return
        first_crash: WorkerCrashError | None = None
        try:
            if self._pending:
                self._flush_pending()
        except WorkerCrashError as exc:
            first_crash = exc
        workers, self._workers = self._workers, None
        for index, worker in enumerate(workers):
            try:
                final_state = worker.stop()
            except WorkerCrashError as exc:
                worker.kill()
                if first_crash is None:
                    first_crash = exc
                if self._snapshots is not None:
                    final_state = self._snapshots[index]
                else:
                    continue
            self.shards[index] = restore_sampler(
                final_state,
                getattr(self.shards[index], "weight_fn", None),
            )
        self._pending.clear()
        self._synced = False
        if first_crash is not None:
            raise first_crash

    def __enter__(self) -> "ShardedStreamExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.close()
        except WorkerCrashError:
            # Don't mask an in-flight exception with the teardown's.
            if exc_type is None:
                raise

    # -- merged estimation --------------------------------------------------

    def shard_estimates(self) -> list[float]:
        """The raw per-shard partial estimates."""
        if self._process_active:
            self._sync()
            return list(self._worker_estimates)
        return [shard.estimate for shard in self.shards]

    def merged_estimate(
        self, variances: Sequence[float] | None = None
    ) -> float:
        """Fuse the partial estimates according to the execution mode.

        In broadcast mode, passing per-replica ``variances`` selects
        the inverse-variance weighting; partition mode ignores them
        (the partition merge is a scaled sum, not a weighted mean).
        """
        estimates = self.shard_estimates()
        if self.mode == "partition":
            return combine_partition(
                estimates, self.num_shards, self.pattern.num_edges
            )
        if variances is not None:
            return combine_variance_weighted(estimates, variances)
        return combine_mean(estimates)

    @property
    def estimate(self) -> float:
        """The merged estimate of |J(t)|."""
        return self.merged_estimate()

    @property
    def time(self) -> int:
        """Number of events consumed, derived from the shard clocks.

        Partition shards split the stream, so their clocks sum to the
        events consumed; broadcast shards each see every event, so the
        furthest clock is the count. Deriving (rather than keeping a
        separate counter) keeps the value consistent with actual shard
        state even when a shard raises mid-batch.
        """
        if self._process_active:
            self._sync()
            clocks = self._worker_times
        else:
            clocks = [shard.time for shard in self.shards]
        if self.mode == "partition":
            return sum(clocks)
        return max(clocks)

    def __repr__(self) -> str:
        # Never synchronise (or raise) from a repr: with live workers
        # the clock/estimate reads are barriers, so show the cached
        # values and flag their staleness instead.
        if self._process_active and (self._pending or not self._synced):
            state = "unsynced"
        else:
            state = f"t={self.time}, estimate={self.estimate:.3f}"
        return (
            f"ShardedStreamExecutor(mode={self.mode!r}, "
            f"shards={self.num_shards}, "
            f"backend={self.executor_backend!r}, "
            f"pattern={self.pattern.name!r}, {state})"
        )
