"""Deterministic fault injection through the shard-transport seam.

The library's recovery story rests on one oracle: after any sequence
of component failures, supervised recovery must leave the final
estimates **bit-equal to a serial run** of the same seeded stream.
This module makes that testable *systematically* rather than through
hand-written kill tests: a :class:`FaultPlan` is a seedable, fully
deterministic schedule of failures, and installing it (``with plan:``)
makes every :class:`~repro.streams.workers.ShardWorker` wrap its
transport in a :class:`FaultyTransport` that fires the scheduled
faults at exact send indices.

Two fault tiers:

* **transport faults** (``kill`` / ``drop`` / ``corrupt`` /
  ``truncate`` / ``delay``) fire on the Nth send crossing a shard's
  transport — counted cumulatively per shard across restarts, so the
  schedule stays meaningful while the supervisor respawns workers.
  ``corrupt`` and ``truncate`` mangle the columnar block payload
  (flipped magic / cut in half), exercising the loud-decode-failure
  path end to end; they defer to the next block-shaped send if the
  scheduled one is a control frame.
* **driver faults** (``kill_worker`` / ``partition_host``) fire at
  event-count thresholds and need process-level access (killing a
  worker process or a whole host agent), so they are applied by
  :meth:`FaultPlan.drive`, the chaos harness's ingest loop.

Everything here is test/bench plumbing: the production hot path pays
one ``None`` check per worker construction
(:func:`active_plan`) and nothing else.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.graph.stream import EventBlock
from repro.streams.transport import ShardTransport, TransportClosed

__all__ = [
    "Fault",
    "FaultPlan",
    "FaultyTransport",
    "active_plan",
    "install",
    "uninstall",
]

#: Faults applied through a wrapped transport, at send granularity.
TRANSPORT_FAULTS = ("kill", "drop", "corrupt", "truncate", "delay")

#: Faults applied by the drive loop, at event-count granularity.
DRIVER_FAULTS = ("kill_worker", "partition_host")


@dataclass(frozen=True)
class Fault:
    """One scheduled failure.

    Transport faults name a ``shard`` (``None`` = any shard) and an
    ``at_send`` index: the fault fires on the first *eligible* send to
    that shard whose cumulative index is >= ``at_send`` (eligible =
    any send, or a block-shaped send for the payload-mangling kinds).
    Driver faults name an ``at_event`` ingestion threshold, plus the
    target ``shard`` (``kill_worker``) or ``host`` index
    (``partition_host``).
    """

    kind: str
    shard: int | None = None
    at_send: int | None = None
    at_event: int | None = None
    host: int | None = None
    seconds: float = 0.05

    def validate(self) -> None:
        if self.kind in TRANSPORT_FAULTS:
            if self.at_send is None or self.at_send < 0:
                raise ConfigurationError(
                    f"{self.kind!r} fault needs at_send >= 0, got "
                    f"{self.at_send!r}"
                )
        elif self.kind in DRIVER_FAULTS:
            if self.at_event is None or self.at_event < 0:
                raise ConfigurationError(
                    f"{self.kind!r} fault needs at_event >= 0, got "
                    f"{self.at_event!r}"
                )
            if self.kind == "kill_worker" and self.shard is None:
                raise ConfigurationError("kill_worker needs shard=")
            if self.kind == "partition_host" and self.host is None:
                raise ConfigurationError("partition_host needs host=")
        else:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; transport kinds: "
                f"{TRANSPORT_FAULTS}, driver kinds: {DRIVER_FAULTS}"
            )
        if self.seconds < 0:
            raise ConfigurationError("seconds must be >= 0")


class FaultPlan:
    """A deterministic, seedable schedule of failures.

    A plan is stateful once armed: each fault fires at most once, the
    per-shard send counters persist across worker restarts, and
    :attr:`fired` records what actually happened (the chaos bench
    publishes it). Use as a context manager to install the plan for
    every worker constructed in the block::

        with FaultPlan([Fault("kill", shard=1, at_send=3)]):
            session = repro.open_stream(...)
            ...

    ``FaultPlan.random(seed, ...)`` draws a small schedule from a
    seeded RNG, so a whole chaos matrix is reproducible from its seed
    list.
    """

    def __init__(self, faults, *, seed: int = 0, name: str = "") -> None:
        self.faults = tuple(faults)
        for fault in self.faults:
            fault.validate()
        self.seed = seed
        self.name = name
        #: Ledger of fired faults (dicts: kind/shard/at index).
        self.fired: list[dict] = []
        self._armed = set(range(len(self.faults)))
        self._send_counts: dict[int, int] = {}
        self._lock = threading.Lock()

    # -- construction helpers ------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        num_shards: int,
        max_send: int = 20,
        count: int = 2,
        kinds: tuple[str, ...] = ("kill", "drop", "truncate", "corrupt"),
    ) -> "FaultPlan":
        """A small random transport-fault schedule, seeded."""
        rng = random.Random(seed)
        faults = [
            Fault(
                kind=rng.choice(list(kinds)),
                shard=rng.randrange(num_shards),
                at_send=rng.randrange(max_send),
            )
            for _ in range(count)
        ]
        return cls(faults, seed=seed, name=f"random-{seed}")

    # -- install hook --------------------------------------------------------

    def __enter__(self) -> "FaultPlan":
        install(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        uninstall(self)

    def wrap(self, transport: ShardTransport) -> "FaultyTransport":
        """The transport seam: wrap one replica's pipe in this plan."""
        return FaultyTransport(transport, self)

    # -- transport-side scheduling ------------------------------------------

    def next_send(self, shard: int) -> int:
        """Count one send to ``shard``; return its cumulative index."""
        with self._lock:
            index = self._send_counts.get(shard, 0)
            self._send_counts[shard] = index + 1
            return index

    def take_transport_fault(
        self, shard: int, send_index: int, *, is_block: bool
    ) -> Fault | None:
        """The armed fault due on this send, if any (consumes it)."""
        with self._lock:
            for i in sorted(self._armed):
                fault = self.faults[i]
                if fault.kind not in TRANSPORT_FAULTS:
                    continue
                if fault.shard is not None and fault.shard != shard:
                    continue
                if send_index < fault.at_send:
                    continue
                if fault.kind in ("corrupt", "truncate") and not is_block:
                    continue  # defer to the next block-shaped send
                self._armed.discard(i)
                self.fired.append(
                    {
                        "kind": fault.kind,
                        "shard": shard,
                        "at_send": send_index,
                    }
                )
                return fault
        return None

    # -- driver-side scheduling ----------------------------------------------

    def _due_driver_faults(self, events_ingested: int) -> list[Fault]:
        with self._lock:
            due: list[Fault] = []
            for i in sorted(self._armed):
                fault = self.faults[i]
                if (
                    fault.kind in DRIVER_FAULTS
                    and fault.at_event <= events_ingested
                ):
                    self._armed.discard(i)
                    self.fired.append(
                        {
                            "kind": fault.kind,
                            "shard": fault.shard,
                            "host": fault.host,
                            "at_event": events_ingested,
                        }
                    )
                    due.append(fault)
            return due

    def drive(
        self,
        session,
        events,
        *,
        step: int = 512,
        hosts: tuple = (),
    ) -> None:
        """Ingest ``events`` through ``session``, applying driver faults.

        The chaos harness's ingest loop: events go in ``step``-sized
        slices (slice boundaries never change results), and before each
        slice any driver fault whose threshold has been reached is
        applied — a worker process killed mid-stream, a host agent
        partitioned away. Transport faults fire on their own through
        the installed wrap; this loop only supplies the event clock.
        """
        total = len(events)
        position = 0
        while position < total:
            for fault in self._due_driver_faults(position):
                self._apply_driver_fault(fault, session, hosts)
            chunk = events[position:position + step]
            session.ingest(chunk)
            position += len(chunk)
        for fault in self._due_driver_faults(total):
            self._apply_driver_fault(fault, session, hosts)

    @staticmethod
    def _apply_driver_fault(fault: Fault, session, hosts: tuple) -> None:
        if fault.kind == "kill_worker":
            workers = session.executor._workers
            if workers is not None:
                workers[fault.shard].transport.kill()
            return
        if fault.kind == "partition_host":
            if fault.host >= len(hosts):
                raise ConfigurationError(
                    f"partition_host host={fault.host} but only "
                    f"{len(hosts)} hosts supplied to drive()"
                )
            handle = hosts[fault.host]
            handle.process.kill()
            handle.process.join(timeout=5.0)

    # -- reporting -----------------------------------------------------------

    def outstanding(self) -> list[Fault]:
        """Faults that never fired (schedule ran past the stream)."""
        with self._lock:
            return [self.faults[i] for i in sorted(self._armed)]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"FaultPlan(name={self.name!r}, faults={len(self.faults)}, "
            f"fired={len(self.fired)})"
        )


# -- the module-level install hook --------------------------------------------

_ACTIVE: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The installed plan, consulted at worker construction."""
    return _ACTIVE


def install(plan: FaultPlan) -> None:
    global _ACTIVE
    if _ACTIVE is not None:
        raise ConfigurationError(
            "a fault plan is already installed; plans do not nest"
        )
    _ACTIVE = plan


def uninstall(plan: FaultPlan) -> None:
    global _ACTIVE
    if _ACTIVE is plan:
        _ACTIVE = None


# -- the wrapped transport -----------------------------------------------------


def _mangle_block(payload: bytes, kind: str) -> bytes:
    """A deterministically broken block payload (decodes loudly wrong)."""
    if kind == "truncate":
        return payload[: max(1, len(payload) // 2)]
    # corrupt: flip the wire magic so the decoder rejects the payload
    # instead of silently accepting altered events.
    return bytes([payload[0] ^ 0xFF]) + payload[1:]


class FaultyTransport(ShardTransport):
    """A :class:`ShardTransport` that fires scheduled faults.

    Wraps the real transport, delegating everything; each send first
    asks the plan whether a fault is due. ``kill``/``drop`` tear the
    replica down through the inner transport's own kill path and
    surface as :class:`TransportClosed` — exactly the signal a real
    death produces, at a deterministic send index. ``corrupt`` and
    ``truncate`` forward a mangled block so the *replica side* fails
    loudly and reports back. ``delay`` stalls the send (for exercising
    idle deadlines).
    """

    def __init__(self, inner: ShardTransport, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.shard_index = inner.shard_index

    def _due_fault(self, *, is_block: bool) -> Fault | None:
        index = self.plan.next_send(self.shard_index)
        return self.plan.take_transport_fault(
            self.shard_index, index, is_block=is_block
        )

    def _fail(self, fault: Fault) -> None:
        self.inner.kill()
        raise TransportClosed(
            f"fault injection: {fault.kind} on shard {self.shard_index}"
        )

    def send(self, message: tuple) -> None:
        is_block = message[0] == "block"
        fault = self._due_fault(is_block=is_block)
        if fault is not None:
            if fault.kind in ("kill", "drop"):
                self._fail(fault)
            elif fault.kind == "delay":
                time.sleep(fault.seconds)
            elif is_block:
                message = (
                    "block",
                    _mangle_block(bytes(message[1]), fault.kind),
                )
        self.inner.send(message)

    def send_block(self, block: EventBlock) -> None:
        fault = self._due_fault(is_block=True)
        if fault is not None:
            if fault.kind in ("kill", "drop"):
                self._fail(fault)
            elif fault.kind == "delay":
                time.sleep(fault.seconds)
            else:
                self.inner.send(
                    ("block", _mangle_block(block.to_bytes(), fault.kind))
                )
                return
        self.inner.send_block(block)

    def recv(self) -> tuple:
        return self.inner.recv()

    def is_alive(self) -> bool:
        return self.inner.is_alive()

    def kill(self) -> None:
        self.inner.kill()

    def release(self) -> None:
        self.inner.release()

    def join(self, timeout: float) -> None:
        self.inner.join(timeout)

    def __getattr__(self, name: str):
        # Back-compat surface (``.process``, the shm internals) and
        # anything else the protocol layer reaches for.
        return getattr(self.inner, name)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FaultyTransport({self.inner!r}, plan={self.plan.name!r})"
