"""Shard host agent: hosts leased shard replicas behind a TCP socket.

One agent per machine (``python -m repro.streams.host --listen
HOST:PORT``) turns that machine into capacity for a
:class:`~repro.streams.executor.ShardedStreamExecutor` running with
``executor_backend="remote"``. The coordinator connects once per shard
it places here, and each connection is one **lease**: a handshake, the
shard's framed checkpoint state plus a *named* weight-spec registry
entry, then the ordinary worker protocol (event blocks,
``sync``/``snapshot``/``stop``) until the session ends. Replicas are
restored with :func:`~repro.samplers.checkpoint.restore_sampler` and
driven through the same
:func:`~repro.streams.workers.handle_shard_message` dispatch as local
worker processes — the replica cannot tell which tier it runs in,
which is what keeps remote results bit-identical to serial ones.

Each lease runs in its own thread, so one agent hosts any number of
shards (subject to Python's GIL — on a many-core host, run several
agents). A replica's lifetime is its connection's lifetime: a clean
``stop`` ships the final checkpoint back and ends the session; a
dropped connection discards the replica (the coordinator restarts it
elsewhere from the retained snapshot). Failures inside the replica are
reported as ``("error", ...)`` frames with the formatted traceback,
exactly like a worker process reports through its outbox.

Security: **nothing on the wire is pickled.** Control payloads ride
the RSX2 codec (:mod:`repro.streams.codec`) and are schema-validated
before dispatch, the lease's weight function is a named registry entry
resolved against code already installed here
(:func:`repro.weights.registry.build_weight_fn`), and oversized frame
claims are refused before allocation — a hostile peer gets typed
errors, not code execution. ``--auth-key`` narrows *who* can speak at
all: with a shared key, every frame (starting with the HELLO) carries
an HMAC-SHA256 tag under a per-connection session key, so an unkeyed
peer cannot lease a replica or inject a single frame. Payloads still
travel unencrypted, so this remains cluster-internal plumbing.

Liveness: ``--heartbeat-timeout`` bounds how long a lease may sit idle
with no frame (not even a HEARTBEAT) from its coordinator before the
agent declares the peer lost and discards the replica. Pair it with
the coordinator's ``heartbeat_interval`` (the agent echoes every
HEARTBEAT, so the coordinator's idle detection works symmetrically);
both default to off.
"""

from __future__ import annotations

import argparse
import socket
import threading
import time
import traceback

from repro.errors import PeerLostError, ProtocolError
from repro.samplers.checkpoint import (
    restore_sampler,
    state_from_wire,
    state_to_wire,
)
from repro.streams.codec import (
    decode as _decode_payload,
)
from repro.streams.codec import (
    encode as _encode_payload,
)
from repro.streams.codec import (
    validate_host_request,
)
from repro.streams.transport import (
    FRAME_BLOCK,
    FRAME_CONTROL,
    FRAME_HEARTBEAT,
    FRAME_HELLO,
    FrameAuth,
    block_from_frame,
    expect_hello,
    hello_payload,
    parse_address,
    read_frame,
    write_frame,
)
from repro.streams.workers import handle_shard_message
from repro.utils.text import clip_text
from repro.weights.registry import build_weight_fn

__all__ = ["HostAgent", "spawn_local_host", "main"]

#: Accept-loop poll granularity; bounds how long shutdown() can lag.
_ACCEPT_POLL_SECONDS = 0.2


def _send_control(
    sock: socket.socket, reply: tuple, auth: FrameAuth | None = None
) -> None:
    write_frame(sock, FRAME_CONTROL, _encode_payload(reply), auth)


class HostAgent:
    """Accepts shard leases and serves one replica per connection.

    Args:
        host: interface to bind (default loopback — binding a routable
            interface is an explicit opt-in, see the module's security
            note).
        port: TCP port; ``0`` picks a free one (the resolved address is
            available as :attr:`address`).
        heartbeat_timeout: drop a lease whose coordinator sends no
            frame (not even a HEARTBEAT) for this many seconds;
            ``None`` (default) waits forever.
        auth_key: shared secret enabling HMAC frame signing; peers
            without the same key are rejected at HELLO. ``None``
            (default) accepts unsigned frames.
        max_frame_bytes: per-frame payload cap, enforced before
            allocation; ``None`` uses the transport default (64 MiB).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        heartbeat_timeout: float | None = None,
        auth_key: str | None = None,
        max_frame_bytes: int | None = None,
    ) -> None:
        self._heartbeat_timeout = heartbeat_timeout
        self._max_frame_bytes = max_frame_bytes
        self._static_auth = None if auth_key is None else FrameAuth(auth_key)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listener.bind((host, port))
        self._listener.listen()
        self._listener.settimeout(_ACCEPT_POLL_SECONDS)
        bound_host, bound_port = self._listener.getsockname()[:2]
        #: The resolved ``"host:port"`` this agent listens on.
        self.address = f"{bound_host}:{bound_port}"
        self._shutdown = threading.Event()
        self._sessions: set[socket.socket] = set()
        self._lock = threading.Lock()

    # -- serving -----------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept leases until :meth:`shutdown` (blocks the caller)."""
        try:
            while not self._shutdown.is_set():
                try:
                    conn, _ = self._listener.accept()
                except TimeoutError:
                    continue
                except OSError:
                    break  # listener closed under us by shutdown()
                with self._lock:
                    self._sessions.add(conn)
                threading.Thread(
                    target=self._serve_lease,
                    args=(conn,),
                    name="repro-shard-lease",
                    daemon=True,
                ).start()
        finally:
            self._listener.close()

    def shutdown(self) -> None:
        """Stop accepting and drop every active lease."""
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - defensive
            pass
        with self._lock:
            sessions, self._sessions = self._sessions, set()
        for conn in sessions:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass

    # -- one lease ---------------------------------------------------------

    def _serve_lease(self, conn: socket.socket) -> None:
        auth: FrameAuth | None = None
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if self._heartbeat_timeout is not None:
                # Finite socket timeout gives deadline-aware reads
                # their poll ticks; the per-frame deadline does the
                # actual idle accounting.
                conn.settimeout(min(1.0, self._heartbeat_timeout))
            if self._static_auth is None:
                expect_hello(conn, peer="coordinator")
                write_frame(conn, FRAME_HELLO, hello_payload("host"))
            else:
                # The coordinator initiated the connection, so its
                # nonce comes first in the session-key derivation on
                # both ends.
                peer_meta = expect_hello(
                    conn,
                    peer="coordinator",
                    deadline=self._read_deadline(),
                    auth=self._static_auth,
                )
                nonce = FrameAuth.new_nonce()
                write_frame(
                    conn,
                    FRAME_HELLO,
                    hello_payload("host", nonce=nonce),
                    self._static_auth,
                )
                auth = self._static_auth.derived(peer_meta["nonce"], nonce)
            sampler = self._accept_lease(conn, auth)
            if sampler is not None:
                self._serve_replica(conn, sampler, auth)
        except Exception as exc:  # noqa: BLE001 - reported on the wire
            # Report the failure on the wire if the socket still works;
            # either way the lease (and its replica) ends here.
            self._report_error(conn, exc, auth)
        finally:
            with self._lock:
                self._sessions.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def _read_deadline(self) -> float | None:
        if self._heartbeat_timeout is None:
            return None
        return time.monotonic() + self._heartbeat_timeout

    def _accept_lease(self, conn: socket.socket, auth: FrameAuth | None):
        """Restore the leased replica; reply with acceptance.

        The lease payload is hostile until proven otherwise: the RSX2
        decode bounds its size and depth, the schema check pins its
        shape, the checkpoint wire frame verifies the state's CRC, and
        the weight spec is resolved against the local registry — an
        unknown spec name is a typed :class:`ProtocolError` reported
        back to the coordinator, never imported or executed code.
        """
        frame = read_frame(
            conn,
            deadline=self._read_deadline(),
            auth=auth,
            max_frame_bytes=self._max_frame_bytes,
        )
        if frame is None:
            return None  # coordinator went away before leasing
        kind, payload = frame
        if kind != FRAME_CONTROL:
            raise ProtocolError(
                f"expected a lease control frame, got kind {kind}"
            )
        message = validate_host_request(_decode_payload(payload))
        if message[0] != "lease":
            raise ProtocolError(
                f"expected a lease, got {message[0]!r}"
            )
        _, shard_index, state_wire, weight_spec = message
        state = state_from_wire(state_wire)
        weight_fn = (
            None
            if weight_spec is None
            else build_weight_fn(weight_spec[0], weight_spec[1])
        )
        sampler = restore_sampler(state, weight_fn)
        _send_control(conn, ("lease", shard_index, "ok"), auth)
        return sampler

    def _serve_replica(
        self, conn: socket.socket, sampler, auth: FrameAuth | None
    ) -> None:
        """Drive the replica's message loop until stop or disconnect.

        With a heartbeat timeout configured, every read is bounded: a
        coordinator that sends nothing — not even a HEARTBEAT — for
        the whole window is declared lost and the replica is discarded
        (the coordinator restarts it elsewhere from its retained
        snapshot). HEARTBEAT frames are echoed back, so the
        coordinator's own idle detection sees a live peer.
        """
        while True:
            try:
                frame = read_frame(
                    conn,
                    deadline=self._read_deadline(),
                    auth=auth,
                    max_frame_bytes=self._max_frame_bytes,
                )
            except TimeoutError:
                raise PeerLostError(
                    "coordinator sent no frame (not even a heartbeat) "
                    f"for {self._heartbeat_timeout}s; dropping lease"
                ) from None
            if frame is None:
                return  # coordinator dropped the lease; discard replica
            kind, payload = frame
            if kind == FRAME_HEARTBEAT:
                write_frame(conn, FRAME_HEARTBEAT, b"", auth)
                continue
            if kind == FRAME_BLOCK:
                sampler.process_batch(block_from_frame(payload))
                continue
            if kind != FRAME_CONTROL:
                raise ProtocolError(
                    f"unexpected frame kind {kind} inside a lease"
                )
            reply, done = handle_shard_message(
                sampler, validate_host_request(_decode_payload(payload))
            )
            if reply is not None:
                # Checkpoint states travel framed (magic + version +
                # CRC) so corruption fails loudly coordinator-side.
                if reply[0] in ("snapshot", "stop"):
                    reply = reply[:2] + (state_to_wire(reply[2]),)
                _send_control(conn, reply, auth)
            if done:
                return

    def _report_error(
        self,
        conn: socket.socket,
        exc: BaseException,
        auth: FrameAuth | None = None,
    ) -> None:
        try:
            _send_control(
                conn,
                (
                    "error",
                    None,
                    clip_text(
                        f"{type(exc).__name__}: {exc}\n"
                        f"{traceback.format_exc()}"
                    ),
                ),
                auth,
            )
        except OSError:  # the connection itself is gone
            pass


# -- process helper for tests and benchmarks ----------------------------------


def _host_agent_main(
    host: str,
    port: int,
    address_pipe,
    heartbeat_timeout: float | None = None,
    auth_key: str | None = None,
    max_frame_bytes: int | None = None,
) -> None:
    """Entry point for :func:`spawn_local_host` (top-level: spawn-safe)."""
    agent = HostAgent(
        host,
        port,
        heartbeat_timeout=heartbeat_timeout,
        auth_key=auth_key,
        max_frame_bytes=max_frame_bytes,
    )
    address_pipe.send(agent.address)
    address_pipe.close()
    agent.serve_forever()


class LocalHostHandle:
    """A host agent running in a child process on this machine.

    Exposes the pieces tests and benchmarks need: the resolved
    :attr:`address` to lease against, the raw :attr:`process` (so fault
    tests can ``kill()`` it mid-stream), and :meth:`stop` for cleanup.
    """

    def __init__(self, process, address: str) -> None:
        self.process = process
        self.address = address

    def stop(self) -> None:
        """Tear the agent down (hard — leases just drop)."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(timeout=5.0)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        status = "alive" if self.process.is_alive() else "dead"
        return f"LocalHostHandle(address={self.address!r}, {status})"


def spawn_local_host(
    mp_context=None,
    *,
    heartbeat_timeout: float | None = None,
    auth_key: str | None = None,
    max_frame_bytes: int | None = None,
) -> LocalHostHandle:
    """Start a host agent in a child process; return its handle.

    The localhost stand-in for a real remote machine: tests and the
    benchmark harness spawn N of these to get an N-host topology on one
    box. The agent binds a free loopback port; the resolved address is
    read back through a pipe before this returns.
    """
    import multiprocessing

    if mp_context is None or isinstance(mp_context, str):
        mp_context = multiprocessing.get_context(mp_context)
    recv_end, send_end = mp_context.Pipe(duplex=False)
    process = mp_context.Process(
        target=_host_agent_main,
        args=(
            "127.0.0.1", 0, send_end, heartbeat_timeout, auth_key,
            max_frame_bytes,
        ),
        name="repro-shard-host",
        daemon=True,
    )
    process.start()
    send_end.close()
    if not recv_end.poll(timeout=30.0):
        process.terminate()
        raise RuntimeError("host agent did not report its address")
    address = recv_end.recv()
    recv_end.close()
    return LocalHostHandle(process, address)


# -- CLI -----------------------------------------------------------------------


def main(argv=None) -> int:
    """``python -m repro.streams.host --listen HOST:PORT``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.streams.host",
        description=(
            "Run a shard host agent: accepts shard leases from a "
            "ShardedStreamExecutor coordinator (executor_backend="
            "'remote') and hosts the replicas. Trusted networks only."
        ),
    )
    parser.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help=(
            "interface and port to listen on (port 0 picks a free "
            "port; default %(default)s)"
        ),
    )
    parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "drop a lease whose coordinator sends no frame for this "
            "long (default: wait forever); pair with the executor's "
            "heartbeat_interval"
        ),
    )
    parser.add_argument(
        "--auth-key",
        default=None,
        metavar="KEY",
        help=(
            "shared secret enabling HMAC-SHA256 frame signing; "
            "coordinators must pass the same key (default: unsigned)"
        ),
    )
    parser.add_argument(
        "--max-frame-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help=(
            "refuse frames declaring payloads above this many bytes, "
            "before allocating (default: the transport's 64 MiB cap)"
        ),
    )
    args = parser.parse_args(argv)
    host, port = parse_address(args.listen)
    agent = HostAgent(
        host,
        port,
        heartbeat_timeout=args.heartbeat_timeout,
        auth_key=args.auth_key,
        max_frame_bytes=args.max_frame_bytes,
    )
    print(f"shard host agent listening on {agent.address}", flush=True)
    try:
        agent.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        agent.shutdown()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
