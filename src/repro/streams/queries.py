"""Read-side of the counting service: snapshot-consistent queries.

A :class:`~repro.streams.service.StreamSession` keeps ingesting while
clients read, so the read path has two jobs: *barrier* (a worker-backend
estimate read synchronises the fleet, so the answer reflects every event
handed to the session before the query) and *consistency* (reads that
belong together — estimate, clock, per-shard times — are taken under one
session lock acquisition, at an ingest boundary, so they describe one
moment of the stream rather than interleaving with a half-applied
batch). :class:`StreamQueries` packages both; the ingestion front's
``query`` control op dispatches into :func:`run_query`.

Queries never mutate sampler state, with one deliberate exception: a
read that discovers a crashed worker triggers the session's recovery
(restore the shard from its last checkpoint, replay its lost sub-stream
from the write-ahead log) and then answers — so a query observes either
the pre-crash stream or the fully recovered one, never a hole.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.errors import ConfigurationError, ServiceError

__all__ = ["StreamQueries", "StreamSnapshot", "QUERY_KINDS", "run_query"]


@dataclass(frozen=True)
class StreamSnapshot:
    """One consistent read of a stream's counters.

    All fields are read under a single session lock acquisition after
    one synchronisation barrier, so ``clock`` is exactly the number of
    events ``estimate`` and ``shard_times`` reflect.
    """

    name: str
    clock: int
    estimate: float
    shard_times: tuple[int, ...]
    shard_estimates: tuple[float, ...]

    def to_dict(self) -> dict:
        return asdict(self)


class StreamQueries:
    """The query surface of one stream session.

    Thin by design: every method takes the session lock (via the
    session's guarded-read helper, which also runs crash recovery) and
    reads the executor — the executor's own worker-read barriers do the
    synchronisation work.
    """

    def __init__(self, session) -> None:
        self._session = session

    # -- global counters -----------------------------------------------------

    def estimate(self) -> float:
        """The merged estimate of |J(t)| over every ingested event."""
        return self._session._read(lambda ex: ex.estimate)

    def time(self) -> int:
        """Events consumed, derived from the shard clocks."""
        return self._session._read(lambda ex: ex.time)

    def shard_times(self) -> list[int]:
        """Per-shard event clocks (a barrier on worker backends)."""
        return self._session._read(lambda ex: ex.shard_times())

    def shard_estimates(self) -> list[float]:
        """The raw per-shard partial estimates."""
        return self._session._read(lambda ex: ex.shard_estimates())

    def stats(self) -> StreamSnapshot:
        """Estimate + clocks as one consistent :class:`StreamSnapshot`."""

        def read(executor) -> StreamSnapshot:
            return StreamSnapshot(
                name=self._session.name,
                clock=executor.time,
                estimate=executor.estimate,
                shard_times=tuple(executor.shard_times()),
                shard_estimates=tuple(executor.shard_estimates()),
            )

        return self._session._read(read)

    # -- local (per-vertex) counters -----------------------------------------

    def _local(self):
        local = self._session.local
        if local is None:
            raise ConfigurationError(
                f"stream {self._session.name!r} does not track local "
                "counts; create it with track_local=True"
            )
        return local

    def top_vertices(self, k: int = 10) -> list[tuple[object, float]]:
        """The ``k`` vertices with the largest estimated local counts."""
        local = self._local()
        return self._session._read(lambda ex: local.top_vertices(k))

    def local_counts(self, vertices) -> dict:
        """Estimated per-vertex instance counts for ``vertices``."""
        local = self._local()
        return self._session._read(
            lambda ex: {v: local.vertex_estimate(v) for v in vertices}
        )

    # -- operational counters ------------------------------------------------

    def wal_stats(self) -> dict:
        """Write-ahead-log accounting (totals, memory share, segments)."""
        return self._session.wal_stats()


#: Wire-facing query kinds served by :func:`run_query`.
QUERY_KINDS = (
    "estimate",
    "time",
    "shard_times",
    "shard_estimates",
    "stats",
    "top_vertices",
    "local_counts",
    "wal_stats",
)


def run_query(session, kind: str, args: dict | None = None):
    """Dispatch one named query against a session (the wire entry point).

    ``args`` carries the query's keyword arguments (``top_vertices``
    takes ``k``; ``local_counts`` takes ``vertices``). Results are
    plain Python values, ready for the control-frame reply.
    """
    args = args or {}
    queries = session.queries
    if kind == "estimate":
        return queries.estimate()
    if kind == "time":
        return queries.time()
    if kind == "shard_times":
        return queries.shard_times()
    if kind == "shard_estimates":
        return queries.shard_estimates()
    if kind == "stats":
        return queries.stats().to_dict()
    if kind == "top_vertices":
        return queries.top_vertices(int(args.get("k", 10)))
    if kind == "local_counts":
        return queries.local_counts(list(args.get("vertices", ())))
    if kind == "wal_stats":
        return queries.wal_stats()
    raise ServiceError(
        f"unknown query kind {kind!r}; known: {QUERY_KINDS}"
    )
