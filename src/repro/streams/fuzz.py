"""Seeded, structure-aware fuzzing of the wire-protocol fronts.

The hardening contract of the RSX2 control plane is behavioural, not
aspirational: *any* byte sequence arriving at a listening front — the
counting service's asyncio server or a shard host agent — must end in
a typed error reply, a clean close, or normal service. Never a hang,
never an unhandled exception in a server thread, never an allocation
sized by an attacker's length field. This module makes that contract
executable the same way :mod:`repro.streams.faults` makes crash
recovery executable: a :class:`FuzzPlan` is derived entirely from an
integer seed, so any failure is reproducible from one number.

A plan starts from a **valid** frame script (HELLO, then real control
traffic for its target front) and applies one mutation class:

* ``bit_flip`` — flip random bits anywhere in the stream;
* ``truncate`` — cut the stream mid-frame and close;
* ``length_lie`` — rewrite a frame header's length field (including
  over-cap lies that must be refused before allocation);
* ``depth_bomb`` — a control payload nesting containers past the
  codec's depth bound;
* ``size_bomb`` — a control payload declaring astronomically many
  elements (or bytes) with almost no payload behind the claim;
* ``wrong_kind`` — an unknown frame kind;
* ``bad_magic`` / ``bad_version`` — wrong magic, cross-version frames
  (the mixed-fleet rejection path);
* ``handshake_cut`` — the connection dies partway through HELLO.

Every 8th seed is a **clean control cell**: the unmutated script must
be fully accepted, and the result it produces must be bit-identical
to an in-process reference run of the same seeded stream — proving
the hardening layer costs nothing on well-formed traffic.

After every case the harness probes the front with a fresh minimal
connection, so a wedged or crashed server surfaces as that case's
failure (with its reproducing seed), not as noise in a later one.
"""

from __future__ import annotations

import json
import random
import socket
import struct
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.graph.stream import INSERT, EdgeEvent, EventBlock
from repro.samplers.checkpoint import (
    restore_sampler,
    sampler_state_dict,
    state_from_wire,
    state_to_wire,
)
from repro.streams.codec import decode, encode
from repro.streams.host import HostAgent
from repro.streams.service import CountingService, ServiceConfig, StreamConfig
from repro.streams.transport import (
    _FRAME_HEADER,
    _FRAME_MAGIC,
    FRAME_BLOCK,
    FRAME_CONTROL,
    FRAME_HELLO,
    frame_bytes,
    hello_payload,
    parse_address,
    read_frame,
)
from repro.streams.workers import handle_shard_message
from repro.utils.rng import derive_seed, spawn_generators
from repro.weights.registry import build_weight_fn

__all__ = [
    "MUTATIONS",
    "FuzzPlan",
    "FuzzCase",
    "FuzzHarness",
    "run_fuzz",
]

#: Mutation classes a plan can apply ("clean" is the control cell).
MUTATIONS = (
    "bit_flip",
    "truncate",
    "length_lie",
    "depth_bomb",
    "size_bomb",
    "wrong_kind",
    "bad_magic",
    "bad_version",
    "handshake_cut",
)

#: Every 8th seed runs its script unmutated and checks bit-identity.
CLEAN_EVERY = 8

#: Per-case deadline for reply drains and liveness probes. A front
#: that makes a client wait longer than this on a half-closed socket
#: is hanging, which is exactly the bug class fuzzing exists to find.
CASE_TIMEOUT = 10.0

_U32 = struct.Struct("<I")

# RSX2 tag bytes used to hand-build bombs the encoder itself would
# refuse to produce (kept in sync with repro.streams.codec).
_T_NONE = b"\x00"
_T_LIST = b"\x07"
_T_BYTES = b"\x06"


def _deep_list_payload(depth: int) -> bytes:
    """``[[[...]]]`` nested ``depth`` times — hand-framed bytes."""
    return (_T_LIST + _U32.pack(1)) * depth + _T_NONE


def _huge_count_payload(count: int) -> bytes:
    """A list declaring ``count`` elements with no bytes behind it."""
    return _T_LIST + _U32.pack(count)


def _huge_bytes_payload(length: int) -> bytes:
    """A bytes value declaring ``length`` bytes with none present."""
    return _T_BYTES + _U32.pack(length)


def _events_for(seed: int, count: int = 48) -> list[EdgeEvent]:
    """A deterministic insert-only event batch derived from ``seed``."""
    rng = random.Random(derive_seed(seed, "fuzz-events"))
    events: list[EdgeEvent] = []
    seen: set[tuple[int, int]] = set()
    while len(events) < count:
        u, v = rng.randrange(100), rng.randrange(100)
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in seen:
            continue
        seen.add(edge)
        events.append(EdgeEvent(INSERT, edge))
    return events


@dataclass(frozen=True)
class FuzzPlan:
    """One deterministic fuzz case: what to send, mutated how.

    Everything — target front, mutation class, mutation sites, the
    event batch of the underlying valid script — derives from ``seed``
    alone, so ``FuzzPlan.from_seed(s, targets)`` rebuilt anywhere
    reproduces the exact bytes this case put on the wire.
    """

    seed: int
    target: str  # "service" | "host"
    mutation: str  # one of MUTATIONS, or "clean"

    @classmethod
    def from_seed(
        cls, seed: int, targets: tuple[str, ...] = ("service", "host")
    ) -> "FuzzPlan":
        for target in targets:
            if target not in ("service", "host"):
                raise ConfigurationError(
                    f"unknown fuzz target {target!r} "
                    "(known: 'service', 'host')"
                )
        rng = random.Random(derive_seed(seed, "fuzz-plan"))
        target = targets[rng.randrange(len(targets))]
        if seed % CLEAN_EVERY == 0:
            return cls(seed=seed, target=target, mutation="clean")
        mutation = MUTATIONS[rng.randrange(len(MUTATIONS))]
        return cls(seed=seed, target=target, mutation=mutation)

    # -- the valid script ----------------------------------------------------

    def script(self) -> list[bytes]:
        """The valid frame sequence this plan mutates (one bytes per
        frame, HELLO first)."""
        if self.target == "service":
            return self._service_script()
        return self._host_script()

    def _service_script(self) -> list[bytes]:
        events = _events_for(self.seed)
        config = StreamConfig(
            algorithm="WSD-U", budget=64, seed=self.seed % 997
        )
        # Both write paths ride along: the acknowledged control-op
        # ingest and the fire-and-forget columnar block.
        block = EventBlock.from_events(events[24:])
        return [
            frame_bytes(FRAME_HELLO, hello_payload("client")),
            frame_bytes(
                FRAME_CONTROL,
                encode(
                    (
                        "create",
                        1,
                        f"fuzz-{self.seed}",
                        config.to_dict(),
                        None,
                    )
                ),
            ),
            frame_bytes(FRAME_CONTROL, encode(("ingest", 2, events[:24]))),
            frame_bytes(FRAME_BLOCK, block.to_bytes()),
            frame_bytes(FRAME_CONTROL, encode(("query", 3, "estimate", {}))),
        ]

    def _host_script(self) -> list[bytes]:
        state = _fresh_state(self.seed)
        events = _events_for(self.seed)
        batch = [(event.op == INSERT,) + event.edge for event in events]
        return [
            frame_bytes(FRAME_HELLO, hello_payload("coordinator")),
            frame_bytes(
                FRAME_CONTROL,
                encode(("lease", 0, state_to_wire(state), ("uniform", {}))),
            ),
            frame_bytes(FRAME_CONTROL, encode(("batch", batch))),
            frame_bytes(FRAME_CONTROL, encode(("sync", 7))),
            frame_bytes(FRAME_CONTROL, encode(("stop", 9))),
        ]

    # -- mutation ------------------------------------------------------------

    def wire_bytes(self) -> bytes:
        """The (possibly mutated) byte stream this case sends."""
        frames = self.script()
        rng = random.Random(derive_seed(self.seed, "fuzz-mutate"))
        mutation = self.mutation
        if mutation == "clean":
            return b"".join(frames)
        if mutation == "handshake_cut":
            hello = frames[0]
            return hello[: rng.randrange(1, len(hello))]
        if mutation == "truncate":
            blob = b"".join(frames)
            return blob[: rng.randrange(1, len(blob))]
        if mutation == "bit_flip":
            blob = bytearray(b"".join(frames))
            for _ in range(rng.randrange(1, 9)):
                index = rng.randrange(len(blob))
                blob[index] ^= 1 << rng.randrange(8)
            return bytes(blob)
        # The remaining classes rewrite one non-HELLO frame (HELLO
        # mutations are covered by bit_flip/handshake_cut) and keep
        # the rest of the stream intact, so the front's recovery —
        # reject the frame, keep or drop the connection — is visible.
        index = rng.randrange(1, len(frames))
        magic, version, kind, length = _FRAME_HEADER.unpack(
            frames[index][: _FRAME_HEADER.size]
        )
        payload = frames[index][_FRAME_HEADER.size:]
        if mutation == "length_lie":
            lie = rng.choice(
                [0, 1, len(payload) // 2, 1 << 28, 1 << 40, (1 << 64) - 1]
            )
            length = lie % (1 << 64)
        elif mutation == "depth_bomb":
            payload = _deep_list_payload(64 + rng.randrange(64))
            length = len(payload)
        elif mutation == "size_bomb":
            payload = (
                _huge_count_payload((1 << 31) - rng.randrange(1, 1000))
                if rng.random() < 0.5
                else _huge_bytes_payload((1 << 32) - rng.randrange(1, 1000))
            )
            length = len(payload)
        elif mutation == "wrong_kind":
            kind = rng.randrange(4, 256)
        elif mutation == "bad_magic":
            magic = bytes(rng.randrange(256) for _ in range(4))
            if magic == _FRAME_MAGIC:  # pragma: no cover - 2^-32
                magic = b"EVIL"
        elif mutation == "bad_version":
            version = rng.choice(
                [v for v in (0, 1, 3, 99, 255)]
            )
        header = _FRAME_HEADER.pack(magic, version, kind, length)
        frames[index] = header + payload
        return b"".join(frames[: index + 1])


def _fresh_state(seed: int) -> dict:
    """A real sampler state dict for lease scripts (deterministic)."""
    from repro.experiments.algorithms import make_sampler

    rngs = spawn_generators(derive_seed(seed, "fuzz-host"), 1)
    sampler = make_sampler("WSD-U", "triangle", 64, rng=rngs[0])
    return sampler_state_dict(sampler)


@dataclass
class FuzzCase:
    """The observed outcome of one executed plan."""

    seed: int
    target: str
    mutation: str
    #: "accepted" | "typed_error" | "clean_close" |
    #: "rejected_handshake" | "hang" | "bit_mismatch" | "dead_front"
    outcome: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        """Whether this outcome honours the hardening contract."""
        if self.mutation == "clean":
            return self.outcome == "accepted"
        return self.outcome in (
            "typed_error",
            "clean_close",
            "rejected_handshake",
            # A mutation that leaves the stream well-formed (e.g. a
            # bit flip inside a string) may legitimately be served.
            "accepted",
        )


class _ThreadExceptionTrap:
    """Record uncaught exceptions in server threads during a fuzz run."""

    def __init__(self) -> None:
        self.records: list[str] = []
        self._previous = None

    def __enter__(self) -> "_ThreadExceptionTrap":
        self._previous = threading.excepthook
        trap = self

        def hook(args) -> None:
            trap.records.append(
                f"{args.thread.name if args.thread else '?'}: "
                f"{args.exc_type.__name__}: {args.exc_value}"
            )

        threading.excepthook = hook
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        threading.excepthook = self._previous


class FuzzHarness:
    """Live fronts to fuzz: one counting service + one host agent.

    Both are real servers on loopback sockets — the fuzzer exercises
    the exact accept loops, frame readers, and dispatchers production
    traffic hits, not mocks of them.
    """

    def __init__(self) -> None:
        self.service = CountingService(
            ServiceConfig(checkpoint_interval=None)
        )
        self.service_address = self.service.start()
        self.host_agent = HostAgent()
        self.host_address = self.host_agent.address
        self._host_thread = threading.Thread(
            target=self.host_agent.serve_forever,
            name="repro-fuzz-host",
            daemon=True,
        )
        self._host_thread.start()

    def close(self) -> None:
        self.host_agent.shutdown()
        self._host_thread.join(timeout=5)
        self.service.stop()

    def __enter__(self) -> "FuzzHarness":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def address_for(self, target: str) -> str:
        return (
            self.service_address if target == "service" else self.host_address
        )

    # -- execution -----------------------------------------------------------

    def run_case(self, plan: FuzzPlan) -> FuzzCase:
        """Send one plan's bytes; classify what came back."""
        blob = plan.wire_bytes()
        outcome, detail = self._exchange(plan.target, blob)
        if outcome == "accepted" and plan.mutation == "clean":
            mismatch = self._check_clean_identity(plan)
            if mismatch:
                outcome, detail = "bit_mismatch", mismatch
        if not self._probe(plan.target):
            return FuzzCase(
                seed=plan.seed,
                target=plan.target,
                mutation=plan.mutation,
                outcome="dead_front",
                detail="front stopped serving clean connections "
                f"after this case ({detail})",
            )
        return FuzzCase(
            seed=plan.seed,
            target=plan.target,
            mutation=plan.mutation,
            outcome=outcome,
            detail=detail,
        )

    def _exchange(self, target: str, blob: bytes) -> tuple[str, str]:
        """Write ``blob``, half-close, drain replies, classify."""
        deadline = time.monotonic() + CASE_TIMEOUT
        replies: list[tuple[int, bytes]] = []
        sent_all = True
        try:
            with self._connect(target) as sock:
                try:
                    sock.sendall(blob)
                except OSError:
                    # The front already rejected and dropped us while
                    # bytes were still in flight — drain what it said.
                    sent_all = False
                try:
                    sock.shutdown(socket.SHUT_WR)
                except OSError:
                    pass
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return "hang", (
                            f"no EOF within {CASE_TIMEOUT}s of half-close"
                        )
                    sock.settimeout(min(remaining, 1.0))
                    try:
                        frame = read_frame(sock, deadline=deadline)
                    except TimeoutError:
                        continue
                    except Exception as exc:
                        return "clean_close", f"reply stream ended: {exc}"
                    if frame is None:
                        break
                    replies.append(frame)
        except OSError as exc:
            return "clean_close", f"connect/teardown: {exc}"
        return self._classify(replies, sent_all)

    def _connect(self, target: str) -> socket.socket:
        host, port = parse_address(self.address_for(target))
        sock = socket.create_connection((host, port), timeout=CASE_TIMEOUT)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    @staticmethod
    def _classify(
        replies: list[tuple[int, bytes]], sent_all: bool
    ) -> tuple[str, str]:
        got_hello = any(kind == FRAME_HELLO for kind, _payload in replies)
        errors: list[str] = []
        decoded = 0
        for kind, payload in replies:
            if kind != FRAME_CONTROL:
                continue
            try:
                reply = decode(payload)
            except Exception:  # a reply we mangled nothing of; unlikely
                continue
            decoded += 1
            if isinstance(reply, tuple) and reply and reply[0] == "error":
                errors.append(str(reply[2])[:200])
        if errors:
            return "typed_error", errors[0]
        if not got_hello:
            return "rejected_handshake", (
                f"closed before HELLO reply ({len(replies)} frames)"
            )
        if decoded and sent_all:
            return "accepted", f"{decoded} control replies"
        return "clean_close", (
            f"hello + {decoded} control replies, then EOF"
        )

    def _probe(self, target: str) -> bool:
        """A minimal clean connection proving the front still serves."""
        deadline = time.monotonic() + CASE_TIMEOUT
        try:
            with self._connect(target) as sock:
                role = "client" if target == "service" else "coordinator"
                sock.sendall(frame_bytes(FRAME_HELLO, hello_payload(role)))
                frame = read_frame(sock, deadline=deadline)
                if frame is None or frame[0] != FRAME_HELLO:
                    return False
                meta = json.loads(frame[1].decode("utf-8"))
                return "protocol" in meta
        except Exception:
            return False

    # -- clean-cell bit-identity ---------------------------------------------

    def _check_clean_identity(self, plan: FuzzPlan) -> str:
        """Compare the front's clean-traffic result to a reference.

        Service cells re-run the same named, seeded stream in-process
        (name + config fully determine the randomness); host cells
        replay the leased state + batch through the same replica
        message handler. Any difference is a hardening regression —
        validation must be invisible on well-formed traffic.
        """
        if plan.target == "service":
            return self._check_service_identity(plan)
        return self._check_host_identity(plan)

    def _check_service_identity(self, plan: FuzzPlan) -> str:
        from repro.streams.service import StreamSession

        session = self.service.get_stream(f"fuzz-{plan.seed}")
        served = session.queries.estimate()
        events = _events_for(plan.seed)
        config = StreamConfig(
            algorithm="WSD-U", budget=64, seed=plan.seed % 997
        )
        with StreamSession(f"fuzz-{plan.seed}", config) as reference:
            reference.ingest(events)
            expected = reference.queries.estimate()
        if served != expected:
            return (
                f"service estimate {served!r} != serial reference "
                f"{expected!r}"
            )
        return ""

    def _check_host_identity(self, plan: FuzzPlan) -> str:
        # The sync reply the host sent is not retained per-frame here;
        # instead replay the exact lease through the same handler the
        # host runs and compare against a second exchange.
        state = _fresh_state(plan.seed)
        sampler = restore_sampler(
            state_from_wire(state_to_wire(state)),
            build_weight_fn("uniform", {}),
        )
        events = _events_for(plan.seed)
        batch = [(event.op == INSERT,) + event.edge for event in events]
        handle_shard_message(sampler, ("batch", batch))
        reply, _done = handle_shard_message(sampler, ("sync", 7))
        assert reply[:2] == ("sync", 7)
        expected = reply[3]
        observed = self._host_sync_estimate(plan)
        if observed is None:
            return "host front returned no sync reply on clean traffic"
        if observed != expected:
            return (
                f"host sync estimate {observed!r} != replica reference "
                f"{expected!r}"
            )
        return ""

    def _host_sync_estimate(self, plan: FuzzPlan):
        """Drive the clean host script again, returning the sync
        estimate the agent reports."""
        deadline = time.monotonic() + CASE_TIMEOUT
        with self._connect("host") as sock:
            for frame in plan.script():
                sock.sendall(frame)
            sock.shutdown(socket.SHUT_WR)
            while True:
                frame = read_frame(sock, deadline=deadline)
                if frame is None:
                    return None
                kind, payload = frame
                if kind != FRAME_CONTROL:
                    continue
                reply = decode(payload)
                if (
                    isinstance(reply, tuple)
                    and len(reply) == 4
                    and reply[0] == "sync"
                ):
                    return reply[3]


@dataclass
class FuzzReport:
    """The aggregate of one fuzz run (JSON-ready via :meth:`to_dict`)."""

    cases: list[FuzzCase] = field(default_factory=list)
    thread_exceptions: list[str] = field(default_factory=list)

    @property
    def failures(self) -> list[FuzzCase]:
        return [case for case in self.cases if not case.ok]

    @property
    def ok(self) -> bool:
        return not self.failures and not self.thread_exceptions

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for case in self.cases:
            counts[case.outcome] = counts.get(case.outcome, 0) + 1
        return counts

    def mutation_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for case in self.cases:
            counts[case.mutation] = counts.get(case.mutation, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "cases": len(self.cases),
            "ok": self.ok,
            "outcomes": self.outcome_counts(),
            "mutations": self.mutation_counts(),
            "failures": [
                {
                    "seed": case.seed,
                    "target": case.target,
                    "mutation": case.mutation,
                    "outcome": case.outcome,
                    "detail": case.detail,
                }
                for case in self.failures
            ],
            "thread_exceptions": list(self.thread_exceptions),
        }


def run_fuzz(
    seeds,
    *,
    targets: tuple[str, ...] = ("service", "host"),
    harness: FuzzHarness | None = None,
) -> FuzzReport:
    """Execute one plan per seed against live fronts; return the report.

    Failures carry their reproducing seed —
    ``FuzzPlan.from_seed(seed, targets).wire_bytes()`` rebuilds the
    exact hostile byte stream anywhere.
    """
    report = FuzzReport()
    owned = harness is None
    if harness is None:
        harness = FuzzHarness()
    try:
        with _ThreadExceptionTrap() as trap:
            for seed in seeds:
                plan = FuzzPlan.from_seed(int(seed), targets)
                report.cases.append(harness.run_case(plan))
        report.thread_exceptions = trap.records
    finally:
        if owned:
            harness.close()
    return report
