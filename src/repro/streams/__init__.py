"""Fully dynamic stream construction, validation, and sharded execution."""

from repro.streams.executor import (
    ShardedStreamExecutor,
    default_shard_key,
    partition_block,
    partition_events,
    vectorized_edge_hash,
)
from repro.streams.transport import ShardTransport, TcpShardTransport
from repro.streams.workers import (
    ProcessShardTransport,
    ShardWorker,
    decode_events,
    encode_events,
)
from repro.streams.faults import Fault, FaultPlan
from repro.streams.scenarios import (
    build_stream,
    insertion_only_stream,
    light_deletion_stream,
    massive_deletion_stream,
    partition_stream,
)
from repro.streams.supervisor import (
    DEFAULT_RECOVERY_POLICY,
    RecoveryPolicy,
    ShardSupervisor,
)
from repro.streams.validate import is_feasible, validate_stream

_HOST_EXPORTS = ("HostAgent", "spawn_local_host")
_SERVICE_EXPORTS = {
    "StreamConfig": "service",
    "StreamSession": "service",
    "ServiceConfig": "service",
    "CountingService": "service",
    "SERVICE_ALGORITHMS": "service",
    "StreamIngestServer": "ingest",
    "ServiceClient": "ingest",
    "StreamQueries": "queries",
    "StreamSnapshot": "queries",
    "run_query": "queries",
}


def __getattr__(name: str):
    # The host-agent and service modules double as ``python -m`` CLIs;
    # importing them eagerly here would make runpy warn about the
    # module already being in sys.modules, so their exports resolve
    # lazily instead.
    if name in _HOST_EXPORTS:
        from repro.streams import host

        return getattr(host, name)
    if name in _SERVICE_EXPORTS:
        import importlib

        module = importlib.import_module(
            f"repro.streams.{_SERVICE_EXPORTS[name]}"
        )
        return getattr(module, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__all__ = [
    "build_stream",
    "insertion_only_stream",
    "light_deletion_stream",
    "massive_deletion_stream",
    "partition_stream",
    "is_feasible",
    "validate_stream",
    "ShardedStreamExecutor",
    "ShardWorker",
    "ShardTransport",
    "ProcessShardTransport",
    "TcpShardTransport",
    "HostAgent",
    "spawn_local_host",
    "default_shard_key",
    "partition_block",
    "partition_events",
    "vectorized_edge_hash",
    "encode_events",
    "decode_events",
    "RecoveryPolicy",
    "ShardSupervisor",
    "DEFAULT_RECOVERY_POLICY",
    "Fault",
    "FaultPlan",
    "StreamConfig",
    "StreamSession",
    "ServiceConfig",
    "CountingService",
    "SERVICE_ALGORITHMS",
    "StreamIngestServer",
    "ServiceClient",
    "StreamQueries",
    "StreamSnapshot",
    "run_query",
]
