"""Fully dynamic stream construction, validation, and sharded execution."""

from repro.streams.executor import (
    ShardedStreamExecutor,
    default_shard_key,
    partition_block,
    partition_events,
    vectorized_edge_hash,
)
from repro.streams.workers import ShardWorker, decode_events, encode_events
from repro.streams.scenarios import (
    build_stream,
    insertion_only_stream,
    light_deletion_stream,
    massive_deletion_stream,
    partition_stream,
)
from repro.streams.validate import is_feasible, validate_stream

__all__ = [
    "build_stream",
    "insertion_only_stream",
    "light_deletion_stream",
    "massive_deletion_stream",
    "partition_stream",
    "is_feasible",
    "validate_stream",
    "ShardedStreamExecutor",
    "ShardWorker",
    "default_shard_key",
    "partition_block",
    "partition_events",
    "vectorized_edge_hash",
    "encode_events",
    "decode_events",
]
