"""Fully dynamic stream construction and validation."""

from repro.streams.scenarios import (
    build_stream,
    insertion_only_stream,
    light_deletion_stream,
    massive_deletion_stream,
)
from repro.streams.validate import is_feasible, validate_stream

__all__ = [
    "build_stream",
    "insertion_only_stream",
    "light_deletion_stream",
    "massive_deletion_stream",
    "is_feasible",
    "validate_stream",
]
