"""RSX2: the self-describing binary codec for control payloads.

Protocol version 2 retires :mod:`pickle` from every byte that crosses a
socket or touches a disk. CONTROL frames, host-agent leases and
replies, and write-ahead-log spill segments all carry payloads encoded
here instead: a small tagged format (stdlib ``struct`` only) that can
express exactly the value shapes the control protocols need — ``None``,
booleans, 64-bit and big integers, floats, UTF-8 strings, bytes,
lists, tuples, string/int-keyed dicts, plus two domain values,
:class:`~repro.graph.stream.EdgeEvent` and
:class:`~repro.graph.stream.EventBlock` — and nothing else. Decoding
hostile bytes can therefore produce a value or a typed
:class:`~repro.errors.ProtocolError`; it can never execute code, and
hard limits make it unable to amplify: a declared container count is
checked against the bytes actually remaining (every element costs at
least one tag byte, so a length-field lie fails before any
allocation), string/bytes lengths are bounds-checked before slicing,
and nesting beyond :data:`MAX_DEPTH` is rejected outright.

Tuples and lists are distinct tags on purpose: the control protocols
compare reply prefixes against tuples (``reply[:2] == ("lease", i)``),
so round-tripping a tuple into a list would silently break dispatch.
Dict keys are restricted to ints and strings — the only key types the
protocols use (per-vertex counters, JSON-shaped config dicts).

The second half of this module is the **schema layer**: decoded
messages are still arbitrary well-formed values, so every front
validates shape before dispatch — op whitelist, field types, bounds —
via :func:`validate_host_request` / :func:`validate_host_reply` /
:func:`validate_service_request` / :func:`validate_service_reply`.
A message that decodes but does not validate is the same class of
failure as one that does not decode: :class:`~repro.errors.ProtocolError`.

WAL spill segments add a CRC-32 frame on top
(:func:`wal_to_wire` / :func:`wal_from_wire`): magic, format version,
checksum, and payload length, so a truncated or bit-flipped segment is
detected *as corruption* and can be quarantined rather than replayed.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.errors import ProtocolError
from repro.graph.stream import DELETE, INSERT, EdgeEvent, EventBlock

__all__ = [
    "MAX_DEPTH",
    "encode",
    "decode",
    "wal_to_wire",
    "wal_from_wire",
    "WAL_MAGIC",
    "WAL_VERSION",
    "HOST_REQUEST_OPS",
    "HOST_REPLY_OPS",
    "SERVICE_REQUEST_OPS",
    "SERVICE_REPLY_OPS",
    "validate_host_request",
    "validate_host_reply",
    "validate_service_request",
    "validate_service_reply",
    "validate_weight_spec",
]

#: Hard bound on value nesting. The deepest real control message is a
#: dict inside a tuple inside a tuple; 32 leaves room without letting
#: a crafted payload recurse the decoder into the ground.
MAX_DEPTH = 32

# One tag byte per value. Gaps left for future scalars.
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT64 = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09
_T_BIGINT = 0x0A
_T_EVENT = 0x0B
_T_BLOCK = 0x0C

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: Cap on a big-integer payload (bytes). 512 bytes is a 4096-bit
#: integer — far beyond any vertex label or counter, small enough that
#: a bignum can never be an allocation bomb.
_MAX_BIGINT_BYTES = 512


# -- encoding -----------------------------------------------------------------


def _encode_int(out: bytearray, value: int) -> None:
    if _INT64_MIN <= value <= _INT64_MAX:
        out.append(_T_INT64)
        out += _I64.pack(value)
        return
    raw = value.to_bytes(
        (value.bit_length() + 8) // 8, "little", signed=True
    )
    if len(raw) > _MAX_BIGINT_BYTES:
        raise ProtocolError(
            f"integer too large for the control codec "
            f"({len(raw)} bytes, cap {_MAX_BIGINT_BYTES})"
        )
    out.append(_T_BIGINT)
    out.append(len(raw))
    out += raw


def _encode_into(out: bytearray, obj, depth: int) -> None:
    if depth > MAX_DEPTH:
        raise ProtocolError(
            f"value nests deeper than the codec limit ({MAX_DEPTH})"
        )
    if obj is None:
        out.append(_T_NONE)
    elif obj is True:
        out.append(_T_TRUE)
    elif obj is False:
        out.append(_T_FALSE)
    elif isinstance(obj, bool) or isinstance(obj, np.bool_):
        out.append(_T_TRUE if obj else _T_FALSE)
    elif isinstance(obj, int):
        _encode_int(out, obj)
    elif isinstance(obj, float):
        out.append(_T_FLOAT)
        out += _F64.pack(obj)
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(_T_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        raw = bytes(obj)
        out.append(_T_BYTES)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(obj, EdgeEvent):
        out.append(_T_EVENT)
        out.append(1 if obj.op == INSERT else 0)
        u, v = obj.edge
        _encode_into(out, u, depth + 1)
        _encode_into(out, v, depth + 1)
    elif isinstance(obj, EventBlock):
        raw = obj.to_bytes()
        out.append(_T_BLOCK)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(obj, tuple):
        out.append(_T_TUPLE)
        out += _U32.pack(len(obj))
        for item in obj:
            _encode_into(out, item, depth + 1)
    elif isinstance(obj, list):
        out.append(_T_LIST)
        out += _U32.pack(len(obj))
        for item in obj:
            _encode_into(out, item, depth + 1)
    elif isinstance(obj, dict):
        out.append(_T_DICT)
        out += _U32.pack(len(obj))
        for key, value in obj.items():
            if isinstance(key, bool) or not isinstance(key, (int, str)):
                if isinstance(key, np.integer):
                    key = int(key)
                else:
                    raise ProtocolError(
                        "control codec dict keys must be int or str, "
                        f"got {type(key).__name__}"
                    )
            _encode_into(out, key, depth + 1)
            _encode_into(out, value, depth + 1)
    elif isinstance(obj, np.integer):
        _encode_int(out, int(obj))
    elif isinstance(obj, np.floating):
        out.append(_T_FLOAT)
        out += _F64.pack(float(obj))
    else:
        raise ProtocolError(
            f"type {type(obj).__name__} has no control-codec encoding"
        )


def encode(obj) -> bytes:
    """Encode one control value as RSX2 bytes.

    Raises :class:`~repro.errors.ProtocolError` for values outside the
    codec's vocabulary — by design there is no escape hatch to an
    arbitrary-object serialiser.
    """
    out = bytearray()
    _encode_into(out, obj, 0)
    return bytes(out)


# -- decoding -----------------------------------------------------------------


class _Decoder:
    __slots__ = ("data", "pos", "end")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0
        self.end = len(data)

    def _take(self, n: int) -> bytes:
        if n > self.end - self.pos:
            raise ProtocolError(
                f"truncated control payload: needs {n} more bytes, "
                f"{self.end - self.pos} remain"
            )
        start = self.pos
        self.pos = start + n
        return self.data[start:self.pos]

    def _count(self, per_item: int, what: str) -> int:
        """Read a u32 count, bounded by the bytes actually remaining.

        Every encoded element costs at least ``per_item`` bytes, so a
        declared count above ``remaining / per_item`` is a lie — reject
        it before allocating anything proportional to it.
        """
        (count,) = _U32.unpack(self._take(4))
        if count * per_item > self.end - self.pos:
            raise ProtocolError(
                f"{what} declares {count} elements but only "
                f"{self.end - self.pos} payload bytes remain"
            )
        return count

    def value(self, depth: int):
        if depth > MAX_DEPTH:
            raise ProtocolError(
                f"payload nests deeper than the codec limit ({MAX_DEPTH})"
            )
        tag = self._take(1)[0]
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT64:
            return _I64.unpack(self._take(8))[0]
        if tag == _T_FLOAT:
            return _F64.unpack(self._take(8))[0]
        if tag == _T_STR:
            (n,) = _U32.unpack(self._take(4))
            try:
                return self._take(n).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ProtocolError(
                    "control payload string is not valid UTF-8"
                ) from exc
        if tag == _T_BYTES:
            (n,) = _U32.unpack(self._take(4))
            return self._take(n)
        if tag == _T_BIGINT:
            n = self._take(1)[0]
            if n == 0 or n > _MAX_BIGINT_BYTES:
                raise ProtocolError(f"bad big-integer length {n}")
            return int.from_bytes(self._take(n), "little", signed=True)
        if tag == _T_LIST:
            count = self._count(1, "list")
            return [self.value(depth + 1) for _ in range(count)]
        if tag == _T_TUPLE:
            count = self._count(1, "tuple")
            return tuple(self.value(depth + 1) for _ in range(count))
        if tag == _T_DICT:
            count = self._count(2, "dict")
            result = {}
            for _ in range(count):
                key = self.value(depth + 1)
                if isinstance(key, bool) or not isinstance(key, (int, str)):
                    raise ProtocolError(
                        "control payload dict key must be int or str, "
                        f"got {type(key).__name__}"
                    )
                result[key] = self.value(depth + 1)
            return result
        if tag == _T_EVENT:
            op_byte = self._take(1)[0]
            if op_byte not in (0, 1):
                raise ProtocolError(f"bad event op byte {op_byte}")
            u = self.value(depth + 1)
            v = self.value(depth + 1)
            for label in (u, v):
                if isinstance(label, bool) or not isinstance(
                    label, (int, str)
                ):
                    raise ProtocolError(
                        "event vertex labels must be int or str, got "
                        f"{type(label).__name__}"
                    )
            try:
                return EdgeEvent(INSERT if op_byte else DELETE, (u, v))
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"undecodable event: {exc}") from exc
        if tag == _T_BLOCK:
            (n,) = _U32.unpack(self._take(4))
            raw = self._take(n)
            try:
                block = EventBlock.from_buffer(raw)
            except (ValueError, struct.error) as exc:
                raise ProtocolError(
                    f"undecodable embedded EventBlock: {exc}"
                ) from exc
            if EventBlock.byte_size(len(block)) != n:
                raise ProtocolError(
                    f"embedded EventBlock length mismatch: {n} bytes "
                    f"for a declared {len(block)}-event block"
                )
            return block
        raise ProtocolError(f"unknown control codec tag 0x{tag:02x}")


def decode(payload) -> object:
    """Decode one RSX2 value; reject trailing bytes.

    Any malformation — unknown tag, truncation, length-field lie,
    over-deep nesting, invalid UTF-8 — raises
    :class:`~repro.errors.ProtocolError`; hostile input cannot reach
    an allocation larger than the payload itself.
    """
    decoder = _Decoder(bytes(payload))
    value = decoder.value(0)
    if decoder.pos != decoder.end:
        raise ProtocolError(
            f"control payload carries {decoder.end - decoder.pos} "
            "trailing bytes after the encoded value"
        )
    return value


# -- WAL segment framing ------------------------------------------------------

WAL_MAGIC = b"RWL1"
WAL_VERSION = 1
#: magic, version, CRC-32 of the payload, payload length.
_WAL_HEADER = struct.Struct("<4sBxxxII")


def wal_to_wire(entries: list) -> bytes:
    """Frame one WAL spill segment: header + CRC + RSX2 entry list.

    Each entry is what the session's in-memory WAL holds — an
    :class:`EventBlock` or a list of :class:`EdgeEvent` — encoded with
    the control codec, so segments read back through the same typed,
    bounded decode path as network frames.
    """
    payload = encode(list(entries))
    header = _WAL_HEADER.pack(
        WAL_MAGIC, WAL_VERSION, zlib.crc32(payload), len(payload)
    )
    return header + payload


def wal_from_wire(blob: bytes) -> list:
    """Decode one WAL segment, verifying magic, version, length, CRC.

    Every corruption mode a disk can produce — zero-length file,
    truncation, bit flip, wrong format — raises
    :class:`~repro.errors.ProtocolError` so the caller can quarantine
    the segment instead of crashing on garbage.
    """
    blob = bytes(blob)
    if len(blob) < _WAL_HEADER.size:
        raise ProtocolError(
            f"WAL segment too short for a header ({len(blob)} bytes)"
        )
    magic, version, crc, length = _WAL_HEADER.unpack(
        blob[:_WAL_HEADER.size]
    )
    if magic != WAL_MAGIC:
        raise ProtocolError(f"bad WAL segment magic {magic!r}")
    if version != WAL_VERSION:
        raise ProtocolError(
            f"WAL segment format {version} unsupported "
            f"(this build writes {WAL_VERSION})"
        )
    payload = blob[_WAL_HEADER.size:]
    if len(payload) != length:
        raise ProtocolError(
            f"WAL segment truncated: header declares {length} payload "
            f"bytes, {len(payload)} present"
        )
    if zlib.crc32(payload) != crc:
        raise ProtocolError("WAL segment CRC mismatch (corrupt bytes)")
    entries = decode(payload)
    if not isinstance(entries, list):
        raise ProtocolError(
            "WAL segment payload is not an entry list"
        )
    for entry in entries:
        if isinstance(entry, EventBlock):
            continue
        if isinstance(entry, list) and all(
            isinstance(event, EdgeEvent) for event in entry
        ):
            continue
        raise ProtocolError(
            "WAL segment entry is neither an EventBlock nor an "
            "EdgeEvent list"
        )
    return entries


# -- schema validation --------------------------------------------------------
#
# Decoding bounds *how much* a payload can be; these bound *what*. Each
# front validates the full message shape before dispatch, so protocol
# handlers only ever see the tuples they were written for.

#: Upper bound on a shard index in a lease. Executors shard far below
#: this; its job is to reject nonsense before it names a thread.
_MAX_SHARD_INDEX = 1 << 20

#: Upper bound on a stream/spec/query name. Service names are further
#: validated by the session registry; this stops megabyte "names".
_MAX_NAME_CHARS = 256

_NO_TOKEN = object()


def _fail(front: str, detail: str) -> ProtocolError:
    return ProtocolError(f"invalid {front} message: {detail}")


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _check_tuple(message, front: str) -> tuple:
    if not isinstance(message, tuple) or not message:
        raise _fail(front, "not a non-empty tuple")
    if not isinstance(message[0], str):
        raise _fail(front, "op is not a string")
    return message


def _check_token(token, front: str, *, allow_none: bool = False):
    if token is None and allow_none:
        return token
    if not _is_int(token) or token < 0:
        raise _fail(front, f"bad token {token!r}")
    return token


def _check_name(name, front: str, what: str) -> str:
    if not isinstance(name, str) or not name:
        raise _fail(front, f"{what} is not a non-empty string")
    if len(name) > _MAX_NAME_CHARS:
        raise _fail(
            front, f"{what} longer than {_MAX_NAME_CHARS} characters"
        )
    return name


def validate_weight_spec(spec, front: str = "lease"):
    """Validate a named weight-spec entry: ``None`` or ``(name, params)``.

    ``params`` values are restricted to scalars — a spec names a
    registered builder and feeds it keyword numbers/strings, nothing
    richer (that is the point of retiring pickled callables).
    """
    if spec is None:
        return spec
    if not (isinstance(spec, tuple) and len(spec) == 2):
        raise _fail(front, "weight spec is not (name, params)")
    name, params = spec
    _check_name(name, front, "weight spec name")
    if not isinstance(params, dict) or len(params) > 32:
        raise _fail(front, "weight spec params is not a small dict")
    for key, value in params.items():
        if not isinstance(key, str):
            raise _fail(front, "weight spec param name is not a string")
        if value is not None and not isinstance(
            value, (bool, int, float, str)
        ):
            raise _fail(
                front,
                f"weight spec param {key!r} is not a scalar",
            )
    return spec


HOST_REQUEST_OPS = ("lease", "batch", "sync", "snapshot", "stop")
HOST_REPLY_OPS = ("lease", "sync", "snapshot", "stop", "error")
SERVICE_REQUEST_OPS = (
    "create", "attach", "ingest", "query", "checkpoint", "streams"
)
SERVICE_REPLY_OPS = SERVICE_REQUEST_OPS + ("error", "overloaded")


def validate_host_request(message) -> tuple:
    """Schema-check one coordinator→host control message."""
    front = "host request"
    message = _check_tuple(message, front)
    op = message[0]
    if op == "lease":
        if len(message) != 4:
            raise _fail(front, f"lease has {len(message)} fields, not 4")
        _, shard_index, state_wire, spec = message
        if not _is_int(shard_index) or not (
            0 <= shard_index < _MAX_SHARD_INDEX
        ):
            raise _fail(front, f"bad shard index {shard_index!r}")
        if not isinstance(state_wire, bytes) or not state_wire:
            raise _fail(front, "lease state is not non-empty bytes")
        validate_weight_spec(spec, front)
        return message
    if op == "batch":
        if len(message) != 2:
            raise _fail(front, f"batch has {len(message)} fields, not 2")
        payload = message[1]
        if not isinstance(payload, (list, tuple)):
            raise _fail(front, "batch payload is not a sequence")
        for item in payload:
            if not (isinstance(item, tuple) and len(item) == 3):
                raise _fail(front, "batch item is not a 3-tuple")
            is_insertion, u, v = item
            if not isinstance(is_insertion, bool):
                raise _fail(front, "batch item op flag is not a bool")
            for label in (u, v):
                if isinstance(label, bool) or not isinstance(
                    label, (int, str)
                ):
                    raise _fail(
                        front, "batch vertex label is not int or str"
                    )
        return message
    if op in ("sync", "snapshot", "stop"):
        if len(message) != 2:
            raise _fail(front, f"{op} has {len(message)} fields, not 2")
        _check_token(message[1], front)
        return message
    raise _fail(front, f"unknown op {op!r} (known: {HOST_REQUEST_OPS})")


def validate_host_reply(reply) -> tuple:
    """Schema-check one host→coordinator control reply."""
    front = "host reply"
    reply = _check_tuple(reply, front)
    op = reply[0]
    if op == "lease":
        if len(reply) != 3 or not _is_int(reply[1]) or reply[2] != "ok":
            raise _fail(front, "malformed lease acceptance")
        return reply
    if op == "sync":
        if len(reply) != 4:
            raise _fail(front, f"sync reply has {len(reply)} fields, not 4")
        _check_token(reply[1], front)
        if not _is_int(reply[2]) or reply[2] < 0:
            raise _fail(front, "sync time is not a non-negative int")
        if not isinstance(reply[3], (int, float)) or isinstance(
            reply[3], bool
        ):
            raise _fail(front, "sync estimate is not a number")
        return reply
    if op in ("snapshot", "stop"):
        if len(reply) != 3:
            raise _fail(front, f"{op} reply has {len(reply)} fields, not 3")
        _check_token(reply[1], front)
        if not isinstance(reply[2], bytes):
            raise _fail(front, f"{op} state is not bytes")
        return reply
    if op == "error":
        if len(reply) != 3 or not isinstance(reply[2], str):
            raise _fail(front, "malformed error report")
        return reply
    raise _fail(front, f"unknown op {op!r} (known: {HOST_REPLY_OPS})")


def validate_service_request(message) -> tuple:
    """Schema-check one client→service control message."""
    front = "service request"
    message = _check_tuple(message, front)
    op = message[0]
    if op not in SERVICE_REQUEST_OPS:
        raise _fail(
            front, f"unknown op {op!r} (known: {SERVICE_REQUEST_OPS})"
        )
    if len(message) < 2:
        raise _fail(front, f"{op} carries no token")
    _check_token(message[1], front)
    if op == "create":
        if len(message) != 5:
            raise _fail(front, f"create has {len(message)} fields, not 5")
        _check_name(message[2], front, "stream name")
        if not isinstance(message[3], dict):
            raise _fail(front, "stream config is not a dict")
        if message[4] is not None and not isinstance(message[4], dict):
            raise _fail(front, "executor options is not a dict or None")
    elif op == "attach":
        if len(message) != 3:
            raise _fail(front, f"attach has {len(message)} fields, not 3")
        _check_name(message[2], front, "stream name")
    elif op == "ingest":
        if len(message) != 3:
            raise _fail(front, f"ingest has {len(message)} fields, not 3")
        events = message[2]
        if not isinstance(events, (list, tuple)):
            raise _fail(front, "ingest payload is not a sequence")
        for event in events:
            if not isinstance(event, EdgeEvent):
                raise _fail(front, "ingest entry is not an EdgeEvent")
    elif op == "query":
        if len(message) != 4:
            raise _fail(front, f"query has {len(message)} fields, not 4")
        _check_name(message[2], front, "query kind")
        if message[3] is not None and not isinstance(message[3], dict):
            raise _fail(front, "query args is not a dict or None")
    else:  # checkpoint / streams: bare (op, token)
        if len(message) != 2:
            raise _fail(front, f"{op} has {len(message)} fields, not 2")
    return message


def validate_service_reply(reply) -> tuple:
    """Schema-check one service→client control reply."""
    front = "service reply"
    reply = _check_tuple(reply, front)
    op = reply[0]
    if op not in SERVICE_REPLY_OPS:
        raise _fail(
            front, f"unknown op {op!r} (known: {SERVICE_REPLY_OPS})"
        )
    if len(reply) != 3:
        raise _fail(front, f"{op} reply has {len(reply)} fields, not 3")
    _check_token(reply[1], front, allow_none=op in ("error", "overloaded"))
    if op == "error" and not isinstance(reply[2], str):
        raise _fail(front, "error report is not a string")
    if op == "overloaded" and not isinstance(reply[2], dict):
        raise _fail(front, "overload info is not a dict")
    return reply
