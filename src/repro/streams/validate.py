"""Stream feasibility validation (Section II).

A stream is *feasible* when every insertion targets an edge that is not
alive and every deletion targets an edge that is alive. The scenario
builders guarantee this by construction; this module provides the
independent check used in tests and when ingesting external streams.
"""

from __future__ import annotations

from repro.errors import InfeasibleEventError
from repro.graph.edges import Edge
from repro.graph.stream import EdgeStream

__all__ = ["validate_stream", "is_feasible"]


def validate_stream(stream: EdgeStream) -> None:
    """Raise :class:`InfeasibleEventError` at the first infeasible event."""
    alive: set[Edge] = set()
    for t, event in enumerate(stream, start=1):
        if event.is_insertion:
            if event.edge in alive:
                raise InfeasibleEventError(
                    f"event {t}: insertion of alive edge {event.edge!r}"
                )
            alive.add(event.edge)
        else:
            if event.edge not in alive:
                raise InfeasibleEventError(
                    f"event {t}: deletion of absent edge {event.edge!r}"
                )
            alive.discard(event.edge)


def is_feasible(stream: EdgeStream) -> bool:
    """Return whether the stream is feasible (no exception variant)."""
    try:
        validate_stream(stream)
    except InfeasibleEventError:
        return False
    return True
