"""Checkpoint-backed shard workers for the process-parallel executor.

The :class:`~repro.streams.executor.ShardedStreamExecutor` scales a
sampler to N replicas; this module hosts one replica per **worker
process** so the replicas actually run in parallel and ingestion is
pipeline-asynchronous with the parent's stream iteration. Three design
rules keep the parallel run *result-identical* to the serial one:

* **State travels as checkpoints.** A worker never constructs its
  sampler from scratch: the parent builds every replica (so all
  randomness derives in one place), snapshots it through the generic
  checkpoint layer (:func:`~repro.samplers.checkpoint.sampler_state_dict`)
  and ships the state dict; the worker rebuilds a bit-identical
  continuation via :func:`~repro.samplers.checkpoint.restore_sampler`.
  The same transport serves mid-run snapshots, final-state harvest, and
  crash-restart of a single shard. Because nothing depends on inherited
  parent memory, workers are safe under every multiprocessing start
  method, ``spawn`` included.
* **Events travel as cheap tuples.** Stream events cross the process
  boundary as ``(is_insertion, u, v)`` tuples of interned vertex labels
  (plain ints for every built-in dataset) batched into chunks — far
  cheaper to pickle than :class:`~repro.graph.stream.EdgeEvent`
  dataclass instances, at no fidelity loss since both ends re-derive
  the canonical event.
* **The weight function is pickled up front.** Threshold samplers need
  their weight function re-supplied on restore; it is pickled in the
  parent *regardless of start method* so a configuration that would
  fail under ``spawn`` fails identically (and immediately) under
  ``fork``.

The wire protocol is a strict request/reply sequence per worker:
``("batch", payload)`` messages carry event chunks and generate no
reply (a bounded inbox provides backpressure); ``("sync", token)``,
``("snapshot", token)`` and ``("stop", token)`` each produce exactly
one tagged reply. A worker that raises reports ``("error", ...)`` with
the formatted traceback and exits; the parent surfaces it as
:class:`~repro.errors.WorkerCrashError` naming the shard.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue
import time
import traceback
from collections.abc import Iterable, Sequence

from repro.errors import ConfigurationError, WorkerCrashError
from repro.graph.stream import DELETE, INSERT, EdgeEvent
from repro.samplers.checkpoint import restore_sampler, sampler_state_dict

__all__ = ["ShardWorker", "encode_events", "decode_events"]

#: Seconds between liveness checks while blocked on a full inbox or an
#: empty outbox. Small enough that a crashed worker surfaces promptly,
#: large enough that healthy waits stay cheap.
_POLL_SECONDS = 0.2


# -- event wire format --------------------------------------------------------


def encode_events(events: Iterable[EdgeEvent]) -> list[tuple]:
    """Encode events as pickle-cheap ``(is_insertion, u, v)`` tuples."""
    op_insert = INSERT
    return [
        (event.op == op_insert,) + event.edge for event in events
    ]


def decode_events(payload: Iterable[tuple]) -> list[EdgeEvent]:
    """Rebuild :class:`EdgeEvent` values from :func:`encode_events` output."""
    insert, delete = INSERT, DELETE
    return [
        EdgeEvent(insert if is_insertion else delete, (u, v))
        for is_insertion, u, v in payload
    ]


# -- worker process entry point -----------------------------------------------


def _worker_main(shard_index, state, weight_blob, inbox, outbox):
    """Run one shard replica: restore, serve the message loop, report.

    Top-level (not a closure) so it is importable — and therefore
    picklable — under the ``spawn`` start method.
    """
    try:
        weight_fn = (
            None if weight_blob is None else pickle.loads(weight_blob)
        )
        sampler = restore_sampler(state, weight_fn)
        while True:
            message = inbox.get()
            tag = message[0]
            if tag == "batch":
                sampler.process_batch(decode_events(message[1]))
            elif tag == "sync":
                outbox.put(
                    ("sync", message[1], sampler.time, sampler.estimate)
                )
            elif tag == "snapshot":
                outbox.put(
                    ("snapshot", message[1], sampler_state_dict(sampler))
                )
            elif tag == "stop":
                outbox.put(
                    ("stop", message[1], sampler_state_dict(sampler))
                )
                return
            else:
                raise RuntimeError(f"unknown worker message tag {tag!r}")
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        outbox.put(
            (
                "error",
                None,
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            )
        )


# -- parent-side handle -------------------------------------------------------


class ShardWorker:
    """Parent-side handle for one shard replica in a worker process.

    Args:
        shard_index: position of this replica in the executor.
        state: the replica's checkpoint
            (:func:`~repro.samplers.checkpoint.sampler_state_dict`).
        weight_fn: the replica's weight function, or ``None`` for the
            pairing samplers. Pickled here, in the parent, so the
            spawn-safety contract is enforced uniformly.
        mp_context: a :mod:`multiprocessing` context or start-method
            name (``"fork"`` / ``"spawn"`` / ``"forkserver"``); ``None``
            uses the platform default.
        queue_depth: bound on the inbox queue — how many undelivered
            batch chunks the parent may run ahead of this worker before
            ingestion blocks (the pipelining backpressure).
    """

    def __init__(
        self,
        shard_index: int,
        state: dict,
        weight_fn=None,
        mp_context=None,
        queue_depth: int = 8,
    ) -> None:
        if queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        if mp_context is None or isinstance(mp_context, str):
            mp_context = multiprocessing.get_context(mp_context)
        try:
            weight_blob = (
                None if weight_fn is None else pickle.dumps(weight_fn)
            )
        except Exception as exc:
            raise ConfigurationError(
                f"shard {shard_index}: weight function "
                f"{type(weight_fn).__name__} is not picklable; the "
                "process backend ships it to the worker — use a "
                "picklable weight function or the serial backend"
            ) from exc
        self.shard_index = shard_index
        self._inbox = mp_context.Queue(maxsize=queue_depth)
        self._outbox = mp_context.Queue()
        self._token = 0
        self._failure: str | None = None
        self.process = mp_context.Process(
            target=_worker_main,
            args=(shard_index, state, weight_blob, self._inbox, self._outbox),
            name=f"repro-shard-{shard_index}",
            daemon=True,
        )
        self.process.start()

    # -- liveness ----------------------------------------------------------

    def is_alive(self) -> bool:
        """Whether the worker process is still running."""
        return self.process.is_alive()

    def _crash(self) -> WorkerCrashError:
        message = self._failure or "worker process died unexpectedly"
        return WorkerCrashError(self.shard_index, message)

    def _raise_if_failed(self, reply=None) -> None:
        """Record and raise a worker-reported failure, if ``reply`` is one."""
        if reply is not None and reply[0] == "error":
            self._failure = reply[2]
            raise self._crash()

    # -- protocol ----------------------------------------------------------

    def send_batch(self, payload: Sequence[tuple]) -> None:
        """Enqueue one encoded event chunk (blocks on backpressure)."""
        self._put(("batch", payload))

    def request(self, tag: str):
        """Send a ``tag`` request and block for its matching reply."""
        token = self._token = self._token + 1
        self._put((tag, token))
        reply = self._get()
        if reply[0] != tag or reply[1] != token:
            self._failure = (
                f"protocol violation: expected ({tag!r}, {token}) reply, "
                f"got {reply[:2]!r}"
            )
            raise self._crash()
        return reply

    def stop(self, timeout: float = 10.0) -> dict:
        """Stop the worker cleanly; return its final checkpoint state."""
        reply = self.request("stop")
        self.process.join(timeout)
        return reply[2]

    def kill(self) -> None:
        """Terminate the worker immediately, discarding its state."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)
        # The queues hold a feeder thread each; cancel the join so a
        # killed worker can never wedge interpreter shutdown on
        # undelivered items.
        for q in (self._inbox, self._outbox):
            q.cancel_join_thread()
            q.close()

    # -- queue plumbing ----------------------------------------------------

    def _drain_after_death(self):
        """Final drain once the process is seen dead.

        The worker's ``("error", ...)`` report (or a last reply) can
        still be in flight through the queue's feeder thread for a
        moment after the process exits, so poll briefly before giving
        up — otherwise the real traceback is lost and the caller only
        learns "died unexpectedly". Returns a reply or ``None``.
        """
        deadline = time.monotonic() + 1.0
        while time.monotonic() < deadline:
            try:
                return self._outbox.get_nowait()
            except queue.Empty:
                time.sleep(0.02)
        return None

    def _put(self, message) -> None:
        if self._failure is not None:
            raise self._crash()
        while True:
            try:
                self._inbox.put(message, timeout=_POLL_SECONDS)
                return
            except queue.Full:
                # The only out-of-band traffic a blocked inbox can
                # coincide with is a failure report (batches produce no
                # replies, and requests are awaited synchronously).
                try:
                    self._raise_if_failed(self._outbox.get_nowait())
                except queue.Empty:
                    pass
                if not self.process.is_alive():
                    self._raise_if_failed(self._drain_after_death())
                    raise self._crash() from None

    def _get(self):
        while True:
            try:
                reply = self._outbox.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                if self._failure is not None:
                    raise self._crash() from None
                if not self.process.is_alive():
                    reply = self._drain_after_death()
                    if reply is None:
                        raise self._crash() from None
                else:
                    continue
            self._raise_if_failed(reply)
            return reply

    def __repr__(self) -> str:  # pragma: no cover - trivial
        status = "alive" if self.is_alive() else "dead"
        return f"ShardWorker(shard={self.shard_index}, {status})"
