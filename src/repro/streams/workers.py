"""Checkpoint-backed shard workers for the parallel executor.

The :class:`~repro.streams.executor.ShardedStreamExecutor` scales a
sampler to N replicas; this module hosts one replica per **worker
process** so the replicas actually run in parallel and ingestion is
pipeline-asynchronous with the parent's stream iteration. Three design
rules keep the parallel run *result-identical* to the serial one:

* **State travels as checkpoints.** A worker never constructs its
  sampler from scratch: the parent builds every replica (so all
  randomness derives in one place), snapshots it through the generic
  checkpoint layer (:func:`~repro.samplers.checkpoint.sampler_state_dict`)
  and ships the state dict; the worker rebuilds a bit-identical
  continuation via :func:`~repro.samplers.checkpoint.restore_sampler`.
  The same transport serves mid-run snapshots, final-state harvest, and
  crash-restart of a single shard. Because nothing depends on inherited
  parent memory, workers are safe under every multiprocessing start
  method, ``spawn`` included.
* **Events travel columnar through shared memory.** Stream chunks
  cross the process boundary as encoded
  :class:`~repro.graph.stream.EventBlock` payloads written into a
  per-worker ring of shared-memory slots — a memcpy per column, no
  pickling, and the worker feeds the decoded block straight into the
  sampler's columnar fast loop without ever materialising
  :class:`~repro.graph.stream.EdgeEvent` objects. The bounded inbox
  queue still carries the (tiny) ``("batch_shm", slot, nbytes)``
  control messages, so backpressure and ordering are unchanged.
  Streams whose vertex labels cannot ride an int64 block fall back,
  chunk by chunk, to the legacy pickled-``(is_insertion, u, v)``-tuple
  path (``transport="queue"`` forces it) — the event sequence the
  replica sees is identical either way, so results do not depend on
  the transport.
* **The weight function ships up front.** Threshold samplers need
  their weight function re-supplied on restore. For the local process
  tier it is pickled in the parent *regardless of start method* so a
  configuration that would fail under ``spawn`` fails identically (and
  immediately) under ``fork`` — the queue between parent and child is
  in-process trust, the one place pickle remains. Remote leases ship a
  *named weight-spec registry entry* instead
  (:func:`repro.weights.registry.weight_spec_for`), resolved against
  the host agent's own registry — no callable ever crosses a socket.

The wire protocol is a strict request/reply sequence per worker:
``("batch", payload)`` / ``("block", bytes)`` / ``("batch_shm", slot,
nbytes)`` messages carry event chunks and generate no reply (a bounded
inbox provides backpressure); ``("sync", token)``, ``("snapshot",
token)`` and ``("stop", token)`` each produce exactly one tagged reply.
A worker that raises reports ``("error", ...)`` with the formatted
traceback and exits; the parent surfaces it as
:class:`~repro.errors.WorkerCrashError` naming the shard.

Since the distributed tier landed, that protocol is layered over an
explicit :class:`~repro.streams.transport.ShardTransport` interface:
:class:`ShardWorker` owns the request/reply discipline, token matching
and crash surfacing, while the transport owns *where the replica runs
and how bytes reach it*. :class:`ProcessShardTransport` (here) is the
local tier — bounded queues plus the shared-memory slot ring —
spawning the worker process itself;
:class:`~repro.streams.transport.TcpShardTransport` leases the replica
onto a remote host agent over a socket. The protocol layer cannot tell
them apart, which is what makes serial == process == remote
bit-identity a transport property rather than a per-backend proof.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue
import time
import traceback
from collections import deque
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, WorkerCrashError
from repro.graph.stream import DELETE, INSERT, EdgeEvent, EventBlock
from repro.samplers.checkpoint import restore_sampler, sampler_state_dict
from repro.streams.transport import (
    ShardTransport,
    TcpShardTransport,
    TransportClosed,
)
from repro.utils.text import clip_text
from repro.weights.registry import weight_spec_for

try:  # pragma: no cover - import guard for exotic builds
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "ShardWorker",
    "ProcessShardTransport",
    "encode_events",
    "decode_events",
    "handle_shard_message",
]

#: Default seconds between liveness checks while blocked on a full inbox
#: or an empty outbox. Small enough that a crashed worker surfaces
#: promptly, large enough that healthy waits stay cheap. Configurable
#: per executor via the ``poll_seconds`` kwarg.
_POLL_SECONDS = 0.2

#: Default seconds between liveness checks while waiting for a
#: shared-memory slot to free up. Slots recycle at chunk-processing
#: speed, so this wait is the shm transport's backpressure — poll fast.
#: Configurable per executor via the ``slot_poll_seconds`` kwarg.
_SLOT_POLL_SECONDS = 0.0005


def _attach_shm(name: str):
    """Attach to an existing segment without resource-tracker tracking.

    On POSIX every process that *opens* a segment registers it with a
    resource tracker (until 3.13's ``track=False``): under ``spawn``
    the worker's own tracker would unlink the parent's segment when the
    worker exits, and under ``fork`` the shared tracker's books would
    be unbalanced. The segment has exactly one owner — the parent, who
    created it and deterministically unlinks it — so the worker must
    attach untracked: via ``track=False`` where available, else by
    suppressing the register call for the duration of the attach (the
    worker is single-threaded at this point).
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


# -- event wire format --------------------------------------------------------


def encode_events(events: Iterable[EdgeEvent]) -> list[tuple]:
    """Encode events as pickle-cheap ``(is_insertion, u, v)`` tuples."""
    op_insert = INSERT
    return [
        (event.op == op_insert,) + event.edge for event in events
    ]


def decode_events(payload: Iterable[tuple]) -> list[EdgeEvent]:
    """Rebuild :class:`EdgeEvent` values from :func:`encode_events` output."""
    insert, delete = INSERT, DELETE
    return [
        EdgeEvent(insert if is_insertion else delete, (u, v))
        for is_insertion, u, v in payload
    ]


# -- replica-side message dispatch --------------------------------------------


def handle_shard_message(sampler, message: tuple):
    """Apply one protocol message to a hosted replica.

    The single source of truth for replica-side semantics, shared by the
    local worker process (:func:`_worker_main`) and the network host
    agent (:mod:`repro.streams.host`) so both tiers process the exact
    same event sequence the exact same way. Returns ``(reply, done)``:
    ``reply`` is the tagged reply tuple to ship back (``None`` for
    batch messages, which generate no reply) and ``done`` is whether
    this message ends the replica's session. Transport-specific
    messages (``"batch_shm"``) are handled by the caller before
    delegating here.
    """
    tag = message[0]
    if tag == "batch":
        sampler.process_batch(decode_events(message[1]))
    elif tag == "block":
        sampler.process_batch(EventBlock.from_buffer(message[1]))
    elif tag == "sync":
        return ("sync", message[1], sampler.time, sampler.estimate), False
    elif tag == "snapshot":
        return ("snapshot", message[1], sampler_state_dict(sampler)), False
    elif tag == "stop":
        return ("stop", message[1], sampler_state_dict(sampler)), True
    else:
        raise RuntimeError(f"unknown worker message tag {tag!r}")
    return None, False


# -- worker process entry point -----------------------------------------------


def _worker_main(
    shard_index, state, weight_blob, inbox, outbox, shm_spec=None
):
    """Run one shard replica: restore, serve the message loop, report.

    ``shm_spec`` is ``(segment name, num_slots, slot_bytes)`` when the
    parent set up the shared-memory transport (the segment starts with
    one slot-state byte per slot, then the slot payload area). Top-level
    (not a closure) so it is importable — and therefore picklable —
    under the ``spawn`` start method.
    """
    shm = None
    try:
        weight_fn = (
            None if weight_blob is None else pickle.loads(weight_blob)
        )
        sampler = restore_sampler(state, weight_fn)
        flags = None
        num_slots = slot_bytes = 0
        if shm_spec is not None:
            name, num_slots, slot_bytes = shm_spec
            shm = _attach_shm(name)
            flags = np.frombuffer(shm.buf, dtype=np.uint8, count=num_slots)
        while True:
            message = inbox.get()
            if message[0] == "batch_shm":
                slot = message[1]
                # Copy the block out of the slot, then free the slot
                # *before* processing so the parent can refill it while
                # the sampler works — that overlap is the pipeline.
                block = EventBlock.from_buffer(
                    shm.buf, num_slots + slot * slot_bytes
                )
                flags[slot] = 0
                sampler.process_batch(block)
                continue
            reply, done = handle_shard_message(sampler, message)
            if reply is not None:
                outbox.put(reply)
            if done:
                return
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        outbox.put(
            (
                "error",
                None,
                clip_text(
                    f"{type(exc).__name__}: {exc}\n"
                    f"{traceback.format_exc()}"
                ),
            )
        )
    finally:
        if shm is not None:
            flags = None
            try:
                shm.close()
            except BufferError:  # pragma: no cover - defensive
                pass


# -- local process transport --------------------------------------------------


class ProcessShardTransport(ShardTransport):
    """Local tier: a worker process fed by queues + a shm slot ring.

    Constructing the transport spawns the worker process (restoring the
    replica from its shipped checkpoint) and, unless disabled, a ring
    of shared-memory slots for columnar event chunks. The bounded inbox
    queue is the backpressure: :meth:`send` blocks when the worker is
    ``queue_depth`` undelivered chunks behind, while polling for death
    so a crashed worker surfaces as :class:`TransportClosed` (carrying
    the worker's error report when one was salvaged) instead of a hang.

    Args:
        shard_index: position of this replica in the executor.
        state: the replica's checkpoint state dict.
        weight_blob: the replica's pickled weight function, or ``None``.
        mp_context: a :mod:`multiprocessing` context (already resolved
            by the caller).
        queue_depth: bound on the inbox queue — how many undelivered
            batch chunks the parent may run ahead of this worker before
            ingestion blocks.
        transport: ``"shm"``, ``"queue"``, or ``"auto"`` — whether
            event chunks ride the slot ring or the queue.
        chunk_hint: the executor's chunk size — sizes the slots so one
            dispatched chunk always fits one slot.
        poll_seconds: liveness-poll granularity for queue waits.
        slot_poll_seconds: liveness-poll granularity for slot waits.
    """

    def __init__(
        self,
        shard_index: int,
        state: dict,
        weight_blob: bytes | None,
        mp_context,
        queue_depth: int = 8,
        transport: str = "auto",
        chunk_hint: int = 2048,
        poll_seconds: float = _POLL_SECONDS,
        slot_poll_seconds: float = _SLOT_POLL_SECONDS,
    ) -> None:
        self.shard_index = shard_index
        self._poll_seconds = poll_seconds
        self._slot_poll_seconds = slot_poll_seconds
        self._inbox = mp_context.Queue(maxsize=queue_depth)
        self._outbox = mp_context.Queue()
        # Replies popped while hunting for an error report during a
        # blocked send. The protocol invariant says there should never
        # be one (batches generate no replies; requests are awaited
        # synchronously), but stashing beats silently dropping.
        self._pending: deque[tuple] = deque()
        # -- shared-memory slot ring ------------------------------------
        # Layout: one state byte per slot (0 = free, 1 = in flight;
        # written by exactly one side each, so no torn updates), then
        # ``num_slots`` fixed-size payload slots. Slot count exceeds the
        # queue depth so the parent never waits on a slot while the
        # inbox still has room.
        self._shm = None
        self._slot_flags = None
        self._num_slots = 0
        self._slot_bytes = 0
        self._next_slot = 0
        shm_spec = None
        if transport in ("auto", "shm") and _shared_memory is not None:
            num_slots = queue_depth + 2
            slot_bytes = EventBlock.byte_size(max(1, chunk_hint))
            try:
                self._shm = _shared_memory.SharedMemory(
                    create=True, size=num_slots * (1 + slot_bytes)
                )
            except Exception:
                if transport == "shm":
                    raise
                self._shm = None  # auto: fall back to the queue path
            if self._shm is not None:
                self._shm.buf[:num_slots] = bytes(num_slots)
                self._slot_flags = np.frombuffer(
                    self._shm.buf, dtype=np.uint8, count=num_slots
                )
                self._num_slots = num_slots
                self._slot_bytes = slot_bytes
                shm_spec = (self._shm.name, num_slots, slot_bytes)
        elif transport == "shm" and _shared_memory is None:
            raise ConfigurationError(
                "transport='shm' requires multiprocessing.shared_memory"
            )
        try:
            self.process = mp_context.Process(
                target=_worker_main,
                args=(
                    shard_index, state, weight_blob,
                    self._inbox, self._outbox, shm_spec,
                ),
                name=f"repro-shard-{shard_index}",
                daemon=True,
            )
            self.process.start()
        except BaseException:
            self.release()
            raise

    # -- liveness ----------------------------------------------------------

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def _check_reply(self, reply) -> None:
        """Classify a reply popped while blocked in :meth:`send`."""
        if reply is None:
            return
        if reply[0] == "error":
            raise TransportClosed(reply[2])
        self._pending.append(reply)

    def _drain_after_death(self):
        """Final drain once the process is seen dead.

        The worker's ``("error", ...)`` report (or a last reply) can
        still be in flight through the queue's feeder thread for a
        moment after the process exits, so poll briefly before giving
        up — otherwise the real traceback is lost and the caller only
        learns "died unexpectedly". Returns a reply or ``None``.
        """
        deadline = time.monotonic() + 1.0
        while time.monotonic() < deadline:
            try:
                return self._outbox.get_nowait()
            except queue.Empty:
                time.sleep(0.02)
            except ValueError:  # queues already closed by kill()
                return None
        return None

    # -- protocol ----------------------------------------------------------

    def send(self, message: tuple) -> None:
        while True:
            try:
                self._inbox.put(message, timeout=self._poll_seconds)
                return
            except ValueError:
                # kill() closed the queues: the same death signal a
                # dead process produces, at whatever send comes next.
                raise TransportClosed() from None
            except queue.Full:
                # The only out-of-band traffic a blocked inbox can
                # coincide with is a failure report (batches produce no
                # replies, and requests are awaited synchronously).
                try:
                    self._check_reply(self._outbox.get_nowait())
                except queue.Empty:
                    pass
                if not self.process.is_alive():
                    self._check_reply(self._drain_after_death())
                    raise TransportClosed() from None

    def send_block(self, block: EventBlock) -> None:
        """Ship one columnar event chunk (blocks on backpressure).

        Rides the shared-memory slot ring when available; otherwise the
        encoded block travels through the queue (still no per-event
        pickling and no worker-side ``EdgeEvent`` construction). Blocks
        larger than a slot are split — chunk boundaries never change
        results.
        """
        if self._shm is None:
            self.send(("block", block.to_bytes()))
            return
        nbytes = block.nbytes
        if nbytes > self._slot_bytes:
            header = EventBlock.byte_size(0)
            per_slot = max(1, (self._slot_bytes - header) // 17)
            for start in range(0, len(block), per_slot):
                self.send_block(block[start:start + per_slot])
            return
        slot = self._next_slot
        self._wait_slot_free(slot)
        offset = self._num_slots + slot * self._slot_bytes
        block.write_into(
            memoryview(self._shm.buf)[offset:offset + nbytes]
        )
        self._slot_flags[slot] = 1
        self.send(("batch_shm", slot, nbytes))
        self._next_slot = (slot + 1) % self._num_slots

    def _wait_slot_free(self, slot: int) -> None:
        """Block until the worker has drained ``slot`` (liveness-checked)."""
        flags = self._slot_flags
        while flags[slot]:
            try:
                self._check_reply(self._outbox.get_nowait())
            except queue.Empty:
                pass
            if not self.process.is_alive():
                self._check_reply(self._drain_after_death())
                raise TransportClosed() from None
            time.sleep(self._slot_poll_seconds)

    def recv(self) -> tuple:
        if self._pending:
            return self._pending.popleft()
        while True:
            try:
                return self._outbox.get(timeout=self._poll_seconds)
            except ValueError:
                raise TransportClosed() from None
            except queue.Empty:
                if not self.process.is_alive():
                    reply = self._drain_after_death()
                    if reply is None:
                        raise TransportClosed() from None
                    return reply

    # -- lifecycle ----------------------------------------------------------

    def join(self, timeout: float) -> None:
        self.process.join(timeout)

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)
        # The queues hold a feeder thread each; cancel the join so a
        # killed worker can never wedge interpreter shutdown on
        # undelivered items.
        for q in (self._inbox, self._outbox):
            q.cancel_join_thread()
            q.close()
        self.release()

    def release(self) -> None:
        """Close and unlink the slot ring (idempotent; parent owns it)."""
        shm, self._shm = self._shm, None
        self._slot_flags = None
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # pragma: no cover - defensive
            return
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __del__(self):  # pragma: no cover - GC-order dependent
        # Drop the flags view before the segment so SharedMemory's own
        # finaliser never sees exported buffers (a worker abandoned
        # without stop()/kill() — e.g. after a crash test — still
        # releases its slot ring).
        try:
            self.release()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - trivial
        status = "alive" if self.is_alive() else "dead"
        return f"ProcessShardTransport(shard={self.shard_index}, {status})"


# -- parent-side handle -------------------------------------------------------


class ShardWorker:
    """Parent-side handle for one shard replica, wherever it runs.

    The protocol layer: strict request/reply with token matching,
    crash bookkeeping, and the clean-stop handshake — all on top of a
    :class:`~repro.streams.transport.ShardTransport`. By default the
    replica runs in a local worker process
    (:class:`ProcessShardTransport`); pass ``host="host:port"`` to
    lease it onto a remote host agent instead
    (:class:`~repro.streams.transport.TcpShardTransport`). Either way
    the replica sees the identical message sequence, so results are
    transport-independent.

    Args:
        shard_index: position of this replica in the executor.
        state: the replica's checkpoint
            (:func:`~repro.samplers.checkpoint.sampler_state_dict`).
        weight_fn: the replica's weight function, or ``None`` for the
            pairing samplers. For local workers it is pickled here, in
            the parent, so the spawn-safety contract is enforced
            uniformly; for remote leases it is translated to its named
            weight-spec registry entry (an unregistered function fails
            here, before any bytes move).
        mp_context: a :mod:`multiprocessing` context or start-method
            name (``"fork"`` / ``"spawn"`` / ``"forkserver"``); ``None``
            uses the platform default. Ignored for remote workers.
        queue_depth: bound on the inbox queue — how many undelivered
            batch chunks the parent may run ahead of this worker before
            ingestion blocks (the pipelining backpressure). Remote
            workers get the equivalent bound from the kernel socket
            buffer.
        transport: ``"shm"`` (shared-memory slot ring for
            :class:`~repro.graph.stream.EventBlock` chunks),
            ``"queue"`` (legacy pickled payloads), or ``"auto"``
            (shared memory when available, per-chunk queue fallback for
            non-int labels). Bit-identical results either way. Ignored
            for remote workers (blocks ride TCP frames).
        chunk_hint: the executor's chunk size — sizes the shared-memory
            slots so one dispatched chunk always fits one slot.
        host: ``"host:port"`` of a running shard host agent
            (:mod:`repro.streams.host`); when given, the replica is
            leased there instead of spawning a local process.
        poll_seconds: liveness-poll granularity for blocked waits;
            ``None`` uses the module default.
        slot_poll_seconds: liveness-poll granularity for shm slot
            waits; ``None`` uses the module default.
        stop_timeout: default timeout for :meth:`stop`.
        heartbeat_interval: seconds between liveness heartbeats on a
            remote transport; ``None`` (default) disables them.
            Ignored for local process workers (the process handle *is*
            the liveness signal).
        auth_key: shared secret for HMAC frame signing on a remote
            transport; ``None`` (default) leaves frames unsigned.
    """

    def __init__(
        self,
        shard_index: int,
        state: dict,
        weight_fn=None,
        mp_context=None,
        queue_depth: int = 8,
        transport: str = "auto",
        chunk_hint: int = 2048,
        host: str | None = None,
        poll_seconds: float | None = None,
        slot_poll_seconds: float | None = None,
        stop_timeout: float = 10.0,
        heartbeat_interval: float | None = None,
        auth_key: str | None = None,
        max_frame_bytes: int | None = None,
    ) -> None:
        if queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        if transport not in ("auto", "shm", "queue"):
            raise ConfigurationError(
                f"transport must be 'auto', 'shm' or 'queue', got "
                f"{transport!r}"
            )
        self.shard_index = shard_index
        self.host = host
        self._token = 0
        self._failure: str | None = None
        self._stop_timeout = stop_timeout
        if poll_seconds is None:
            poll_seconds = _POLL_SECONDS
        if slot_poll_seconds is None:
            slot_poll_seconds = _SLOT_POLL_SECONDS
        try:
            if host is not None:
                # Remote tier: a named registry spec, never a pickled
                # callable. Unregistered weight functions fail here,
                # in the parent, with configuration guidance.
                try:
                    weight_spec = weight_spec_for(weight_fn)
                except ConfigurationError as exc:
                    raise ConfigurationError(
                        f"shard {shard_index}: {exc}"
                    ) from None
                self.transport: ShardTransport = TcpShardTransport(
                    shard_index, state, weight_spec, host,
                    poll_seconds=poll_seconds,
                    heartbeat_interval=heartbeat_interval,
                    auth_key=auth_key,
                    max_frame_bytes=max_frame_bytes,
                )
            else:
                # Local tier: the queue between parent and child is
                # in-process trust — pickling the weight function here
                # (regardless of start method) keeps the spawn-safety
                # contract uniform.
                try:
                    weight_blob = (
                        None if weight_fn is None else pickle.dumps(weight_fn)
                    )
                except Exception as exc:
                    raise ConfigurationError(
                        f"shard {shard_index}: weight function "
                        f"{type(weight_fn).__name__} is not picklable; the "
                        "parallel backends ship it to the worker — use a "
                        "picklable weight function or the serial backend"
                    ) from exc
                if mp_context is None or isinstance(mp_context, str):
                    mp_context = multiprocessing.get_context(mp_context)
                self.transport = ProcessShardTransport(
                    shard_index, state, weight_blob, mp_context,
                    queue_depth=queue_depth,
                    transport=transport,
                    chunk_hint=chunk_hint,
                    poll_seconds=poll_seconds,
                    slot_poll_seconds=slot_poll_seconds,
                )
        except TransportClosed as exc:
            self._failure = exc.failure or "worker failed to start"
            raise self._crash() from None
        # The fault-injection seam: an installed FaultPlan wraps every
        # new replica's transport so scheduled faults fire at exact
        # send indices (chaos tests only; None check is the whole cost).
        from repro.streams import faults as _faults

        plan = _faults.active_plan()
        if plan is not None:
            self.transport = plan.wrap(self.transport)

    # -- back-compat surface ------------------------------------------------
    # Pre-refactor callers (and tests) reached the process handle and
    # the shm ring directly on the worker; keep those names working by
    # delegating to the transport.

    @property
    def process(self):
        return self.transport.process

    @property
    def _shm(self):
        return getattr(self.transport, "_shm", None)

    @property
    def _num_slots(self) -> int:
        return getattr(self.transport, "_num_slots", 0)

    @property
    def _slot_bytes(self) -> int:
        return getattr(self.transport, "_slot_bytes", 0)

    # -- liveness ----------------------------------------------------------

    def is_alive(self) -> bool:
        """Whether the worker's replica is believed reachable."""
        return self._failure is None and self.transport.is_alive()

    def _crash(self) -> WorkerCrashError:
        message = self._failure or "worker process died unexpectedly"
        return WorkerCrashError(self.shard_index, message)

    def _closed(self, exc: TransportClosed) -> WorkerCrashError:
        """Record a transport death and convert it to the public error."""
        if self._failure is None:
            self._failure = exc.failure or "worker process died unexpectedly"
        return self._crash()

    def _raise_if_failed(self, reply=None) -> None:
        """Record and raise a worker-reported failure, if ``reply`` is one."""
        if reply is not None and reply[0] == "error":
            self._failure = reply[2]
            raise self._crash()

    # -- protocol ----------------------------------------------------------

    def send_batch(self, payload: Sequence[tuple]) -> None:
        """Enqueue one encoded event chunk (blocks on backpressure)."""
        if self._failure is not None:
            raise self._crash()
        try:
            self.transport.send(("batch", payload))
        except TransportClosed as exc:
            raise self._closed(exc) from None

    def send_block(self, block: EventBlock) -> None:
        """Ship one columnar event chunk (blocks on backpressure)."""
        if self._failure is not None:
            raise self._crash()
        try:
            self.transport.send_block(block)
        except TransportClosed as exc:
            raise self._closed(exc) from None

    def _get(self):
        try:
            reply = self.transport.recv()
        except TransportClosed as exc:
            raise self._closed(exc) from None
        self._raise_if_failed(reply)
        return reply

    def request(self, tag: str):
        """Send a ``tag`` request and block for its matching reply."""
        if self._failure is not None:
            raise self._crash()
        token = self._token = self._token + 1
        try:
            self.transport.send((tag, token))
        except TransportClosed as exc:
            raise self._closed(exc) from None
        reply = self._get()
        if reply[0] != tag or reply[1] != token:
            self._failure = (
                f"protocol violation: expected ({tag!r}, {token}) reply, "
                f"got {reply[:2]!r}"
            )
            raise self._crash()
        return reply

    def stop(self, timeout: float | None = None) -> dict:
        """Stop the worker cleanly; return its final checkpoint state."""
        if timeout is None:
            timeout = self._stop_timeout
        try:
            reply = self.request("stop")
        except WorkerCrashError:
            self.transport.release()
            raise
        self.transport.join(timeout)
        self.transport.release()
        return reply[2]

    def kill(self) -> None:
        """Terminate the worker immediately, discarding its state."""
        self.transport.kill()

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.transport.release()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - trivial
        status = "alive" if self.is_alive() else "dead"
        where = f", host={self.host!r}" if self.host else ""
        return f"ShardWorker(shard={self.shard_index}{where}, {status})"
