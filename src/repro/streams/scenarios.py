"""Fully dynamic stream construction: the paper's deletion scenarios.

Section V-A defines two ways of turning an ordered edge list into a
fully dynamic stream:

* **Massive deletion** [Triest]: edges are inserted in order; after each
  insertion, with probability ``alpha`` a *massive deletion event*
  occurs in which every currently-alive edge is deleted independently
  with probability ``beta_m``.
* **Light deletion** [WRS]: edges are inserted in order; each edge is,
  with probability ``beta_l``, also deleted at a uniformly random later
  position in the stream.

Both constructions guarantee feasibility (Section II): an edge is only
deleted while alive, and only re-inserted after deletion.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.edges import Edge
from repro.graph.stream import DELETE, INSERT, EdgeEvent, EdgeStream, EventBlock
from repro.streams.executor import default_shard_key, partition_events
from repro.utils.rng import ensure_rng

__all__ = [
    "insertion_only_stream",
    "massive_deletion_stream",
    "light_deletion_stream",
    "build_stream",
    "partition_stream",
]


def _materialise(
    events: list[tuple[str, Edge]], columnar: bool
) -> EdgeStream | EventBlock:
    """Build the requested stream representation from (op, edge) pairs.

    The scenario builders produce raw pairs; the columnar path packs
    them straight into an :class:`EventBlock` (canonicalised
    vectorised, int labels required) while the default path constructs
    the classic :class:`EdgeStream` — identical events either way.
    """
    if not columnar:
        return EdgeStream(EdgeEvent(op, edge) for op, edge in events)
    insert = INSERT
    return EventBlock(
        [op == insert for op, _ in events],
        [edge[0] for _, edge in events],
        [edge[1] for _, edge in events],
    )


def insertion_only_stream(
    edges: list[Edge], columnar: bool = False
) -> EdgeStream | EventBlock:
    """Build an insertion-only stream from an ordered edge list.

    ``columnar=True`` returns the numpy-columnar
    :class:`~repro.graph.stream.EventBlock` form instead of an
    :class:`EdgeStream` (same events; int vertex labels required).
    """
    if columnar:
        return _materialise([(INSERT, edge) for edge in edges], True)
    return EdgeStream.from_edges(edges)


def massive_deletion_stream(
    edges: list[Edge],
    alpha: float,
    beta_m: float = 0.8,
    rng: np.random.Generator | int | None = None,
    deletion_window: float = 0.8,
    columnar: bool = False,
) -> EdgeStream | EventBlock:
    """Build a massive-deletion stream (Section V-A, [Triest]).

    ``alpha`` is the per-insertion probability that a massive deletion
    event follows; ``beta_m`` is the independent per-edge deletion
    probability inside such an event. The paper's default is
    ``alpha = 1/3,000,000`` and ``beta_m = 0.8`` on multi-million-edge
    graphs — roughly five massive deletions per stream — so scaled-down
    runs should scale ``alpha`` up proportionally (the experiment
    configs do).

    ``deletion_window`` restricts massive deletions to the first such
    fraction of insertions. This is a laptop-scale fidelity adaptation:
    at the paper's scale a deletion event near the end of the stream
    still leaves millions of pattern instances, but at ours it can push
    the ground truth to nearly zero and make relative error degenerate.
    Set ``deletion_window=1.0`` for the paper's exact construction.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
    if not 0.0 <= beta_m <= 1.0:
        raise ConfigurationError(f"beta_m must be in [0, 1], got {beta_m}")
    if not 0.0 < deletion_window <= 1.0:
        raise ConfigurationError(
            f"deletion_window must be in (0, 1], got {deletion_window}"
        )
    gen = ensure_rng(rng)
    events: list[tuple[str, Edge]] = []
    alive: list[Edge] = []
    alive_set: set[Edge] = set()
    window_end = int(deletion_window * len(edges))
    for i, edge in enumerate(edges):
        if edge in alive_set:
            # Natural orders from generators have unique edges, but a
            # re-inserted edge after deletion is fine; a duplicate alive
            # edge would be infeasible, so skip it.
            continue
        events.append((INSERT, edge))
        alive.append(edge)
        alive_set.add(edge)
        in_window = i < window_end
        if alpha > 0.0 and in_window and gen.random() < alpha:
            survivors: list[Edge] = []
            deaths = gen.random(len(alive)) < beta_m
            for e, dead in zip(alive, deaths):
                if dead:
                    events.append((DELETE, e))
                    alive_set.discard(e)
                else:
                    survivors.append(e)
            alive = survivors
    return _materialise(events, columnar)


def light_deletion_stream(
    edges: list[Edge],
    beta_l: float = 0.2,
    rng: np.random.Generator | int | None = None,
    columnar: bool = False,
) -> EdgeStream | EventBlock:
    """Build a light-deletion stream (Section V-A, [WRS]).

    Each edge has probability ``beta_l`` of being deleted at a random
    position after its insertion. Implemented by first laying out the
    insertions, then splicing each deletion into a uniformly random
    later slot.
    """
    if not 0.0 <= beta_l <= 1.0:
        raise ConfigurationError(f"beta_l must be in [0, 1], got {beta_l}")
    gen = ensure_rng(rng)
    slots: list[list[tuple[str, Edge]]] = [
        [(INSERT, edge)] for edge in edges
    ]
    # A deletion scheduled "after position i" is appended to the pending
    # list of a random later slot (or to the very end of the stream).
    tail: list[tuple[str, Edge]] = []
    n = len(edges)
    for i, edge in enumerate(edges):
        if gen.random() >= beta_l:
            continue
        position = int(gen.integers(i, n + 1))
        if position >= n:
            tail.append((DELETE, edge))
        else:
            # Append after the insertion at `position` (which is > i or
            # == i, in which case the deletion directly follows its own
            # insertion — still feasible).
            slots[position].append((DELETE, edge))
    events: list[tuple[str, Edge]] = []
    for slot in slots:
        events.extend(slot)
    events.extend(tail)
    return _materialise(events, columnar)


def build_stream(
    edges: list[Edge],
    scenario: str,
    alpha: float | None = None,
    beta: float | None = None,
    rng: np.random.Generator | int | None = None,
    deletion_window: float = 0.8,
    columnar: bool = False,
) -> EdgeStream | EventBlock:
    """Dispatch to a scenario builder by name.

    ``scenario`` is ``"insertion-only"``, ``"massive"`` or ``"light"``.
    For ``massive``, ``alpha`` defaults to 4 massive-deletion events per
    stream (4/len) and ``beta`` to 0.8; for ``light``, ``beta`` defaults
    to 0.2 — the paper's default parameters, rescaled.

    ``columnar=True`` yields the same events as a numpy-columnar
    :class:`~repro.graph.stream.EventBlock` (the builders draw the same
    randomness either way, so the two representations are
    event-for-event identical).
    """
    name = scenario.lower()
    if name in {"insertion-only", "insert", "insertion_only"}:
        return insertion_only_stream(edges, columnar=columnar)
    if name == "massive":
        eff_alpha = alpha if alpha is not None else min(1.0, 4.0 / max(len(edges), 1))
        eff_beta = beta if beta is not None else 0.8
        return massive_deletion_stream(
            edges, eff_alpha, eff_beta, rng,
            deletion_window=deletion_window, columnar=columnar,
        )
    if name == "light":
        eff_beta = beta if beta is not None else 0.2
        return light_deletion_stream(edges, eff_beta, rng, columnar=columnar)
    raise ConfigurationError(
        f"unknown scenario {scenario!r}; choose insertion-only, massive, light"
    )


def partition_stream(
    stream: EdgeStream,
    num_shards: int,
    shard_key: Callable[[Edge], int] = default_shard_key,
) -> list[EdgeStream]:
    """Hash-partition a stream into ``num_shards`` feasible sub-streams.

    The materialised counterpart of what the
    :class:`~repro.streams.executor.ShardedStreamExecutor` does on the
    fly: every edge routes to ``shard_key(edge) % num_shards``, so each
    sub-stream preserves event order, receives every deletion in the
    shard that saw the insertion, and is therefore itself feasible
    (Section II). Useful for pre-splitting a scenario stream across
    worker processes or files.
    """
    return [
        EdgeStream(bucket)
        for bucket in partition_events(stream, num_shards, shard_key)
    ]
