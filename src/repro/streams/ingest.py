"""The counting service's TCP front: asyncio server + blocking client.

One wire format serves the whole library: the ``RSX1`` frames of
:mod:`repro.streams.transport`. A service connection is

1. a HELLO exchange (JSON, version-checked both ways — same rules as
   the shard transports);
2. CONTROL frames carrying RSX2-encoded ``(op, token, ...)`` requests
   (:mod:`repro.streams.codec` — a self-describing tagged binary
   format, not pickle) — ``create`` / ``attach`` / ``ingest`` /
   ``query`` / ``checkpoint`` / ``streams`` — answered by
   ``(op, token, value)`` or ``("error", token, traceback_text)``.
   Every decoded request is schema-validated (op whitelist, field
   types, bounds) before it is dispatched;
3. BLOCK frames carrying columnar
   :class:`~repro.graph.stream.EventBlock` payloads for the selected
   stream — the fire-and-forget fast path: no per-block acknowledgement,
   so ingestion pipelines; an ingest failure is reported once (token
   ``None``) and drops the connection, and the kernel socket buffer is
   the backpressure bound (the server reads and applies one frame at a
   time per connection, exactly like the shard host agent). The one
   exception is WAL overload: a block rejected by the session's hard
   limit is reported out-of-band (``("overloaded", None, info)``) and
   the connection stays up — the stream state is untouched, so there
   is nothing fatal about the rejection;
4. HEARTBEAT frames for liveness: a client with a heartbeat interval
   pings between requests and the server echoes, so the server's idle
   deadline (``ServiceConfig.heartbeat_timeout``) reaps only peers
   that are actually gone, and the client notices a dead service from
   a failed ping instead of on its next query.

The server (:class:`StreamIngestServer`) runs one asyncio event loop in
a daemon thread; session work (sampler ingestion, barrier reads) runs
on the default thread-pool executor so the loop stays responsive to
other connections. Per-stream ordering is preserved where it matters:
frames of one connection are applied strictly in order, and sessions
serialise concurrent writers under their own lock.

Trust model: **no pickle on the wire.** CONTROL payloads are RSX2 —
decoding hostile bytes can raise :class:`~repro.errors.ProtocolError`
or allocate up to the frame cap (``ServiceConfig.max_frame_bytes``,
enforced on header bytes before any allocation), never execute code.
With ``ServiceConfig.auth_key`` set, every frame additionally carries
an HMAC-SHA256 tag under a per-connection session key (see
:class:`~repro.streams.transport.FrameAuth`): unkeyed or wrong-keyed
peers are rejected at HELLO. The two controls compose: HMAC narrows
*who* can speak to holders of the shared key; RSX2 + schema
validation narrows *what* any peer — keyed or not — can make the
service do.
"""

from __future__ import annotations

import asyncio
import functools
import json
import socket
import threading
import time
import traceback

from repro.errors import (
    ConfigurationError,
    OperationTimeoutError,
    PeerLostError,
    ProtocolError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.graph.stream import EventBlock
from repro.streams.codec import (
    decode as _decode_payload,
    encode as _encode_payload,
    validate_service_reply,
    validate_service_request,
)
from repro.streams.executor import ExecutorOptions
from repro.streams.queries import run_query
from repro.streams.service import StreamConfig
from repro.streams.transport import (
    FRAME_BLOCK,
    FRAME_CONTROL,
    FRAME_HEARTBEAT,
    FRAME_HEADER_SIZE,
    FRAME_HELLO,
    PROTOCOL_VERSION,
    FrameAuth,
    block_from_frame,
    expect_hello,
    frame_bytes,
    hello_payload,
    parse_address,
    parse_frame_header,
    read_frame,
    write_frame,
)
from repro.utils.text import clip_text

__all__ = ["StreamIngestServer", "ServiceClient"]


async def _read_frame_async(
    reader: asyncio.StreamReader,
    idle_timeout: float | None = None,
    max_frame_bytes: int | None = None,
):
    """One frame from an asyncio stream; ``None`` on clean close.

    ``idle_timeout`` bounds the wait for the *next* frame: a peer that
    sends nothing at all (not even a HEARTBEAT) for the whole window
    raises :class:`~repro.errors.PeerLostError`. A frame that has
    started arriving is read to completion without the bound.
    """
    try:
        if idle_timeout is None:
            header = await reader.readexactly(FRAME_HEADER_SIZE)
        else:
            header = await asyncio.wait_for(
                reader.readexactly(FRAME_HEADER_SIZE), idle_timeout
            )
    except asyncio.TimeoutError:
        raise PeerLostError(
            "peer sent no frame (not even a heartbeat) for "
            f"{idle_timeout}s"
        ) from None
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(exc.partial)} of "
            f"{FRAME_HEADER_SIZE} bytes)"
        ) from exc
    kind, length = parse_frame_header(header, max_frame_bytes)
    if not length:
        return kind, b""
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of "
            f"{length} payload bytes)"
        ) from exc
    return kind, payload


def _check_hello(frame, auth: FrameAuth | None = None) -> dict:
    """Server-side HELLO validation (mirrors ``expect_hello``)."""
    if frame is None:
        raise ProtocolError("client closed the connection before HELLO")
    kind, payload = frame
    if kind != FRAME_HELLO:
        raise ProtocolError(f"expected HELLO, got frame kind {kind}")
    if auth is not None:
        payload = auth.verify(kind, payload)
    try:
        meta = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("malformed HELLO payload") from exc
    if meta.get("protocol") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"client speaks protocol {meta.get('protocol')!r}, this "
            f"build speaks {PROTOCOL_VERSION}"
        )
    if auth is not None and not meta.get("nonce"):
        raise ProtocolError(
            "authenticated HELLO from client carries no nonce"
        )
    return meta


def _control_reply(
    op: str, token, value, auth: FrameAuth | None = None
) -> bytes:
    return frame_bytes(FRAME_CONTROL, _encode_payload((op, token, value)), auth)


class StreamIngestServer:
    """The asyncio ingestion front of one :class:`CountingService`.

    Runs a dedicated event loop in a daemon thread; :meth:`start`
    returns the bound ``host:port`` (port 0 in ``listen`` picks a free
    one). One coroutine per connection; blocking session work is pushed
    to the default thread-pool executor.
    """

    def __init__(self, service, listen: str = "127.0.0.1:0") -> None:
        self._service = service
        self._host, self._port = parse_address(listen)
        config = getattr(service, "config", None)
        #: Idle deadline: drop a connection whose peer sends nothing
        #: (not even a HEARTBEAT) for this long. ``None`` = patient.
        self._idle_timeout = getattr(config, "heartbeat_timeout", None)
        #: Per-frame payload cap, enforced on header bytes before any
        #: allocation. ``None`` = :data:`DEFAULT_MAX_FRAME_BYTES`.
        self._max_frame_bytes = getattr(config, "max_frame_bytes", None)
        auth_key = getattr(config, "auth_key", None)
        self._static_auth = None if auth_key is None else FrameAuth(auth_key)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.base_events.Server | None = None
        #: The bound ``host:port`` once started.
        self.address: str | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> str:
        if self._thread is not None:
            raise ServiceError("ingest server already started")
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        boot_errors: list[BaseException] = []

        def run() -> None:
            loop = self._loop
            asyncio.set_event_loop(loop)
            try:
                self._server = loop.run_until_complete(
                    asyncio.start_server(
                        self._serve_connection, self._host, self._port
                    )
                )
            except BaseException as exc:  # surface bind failures to start()
                boot_errors.append(exc)
                started.set()
                return
            sockname = self._server.sockets[0].getsockname()
            self.address = f"{sockname[0]}:{sockname[1]}"
            started.set()
            try:
                loop.run_forever()
            finally:
                self._server.close()
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.run_until_complete(self._server.wait_closed())
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-service-ingest", daemon=True
        )
        self._thread.start()
        started.wait()
        if boot_errors:
            self._thread.join(timeout=5)
            self._thread = None
            raise boot_errors[0]
        assert self.address is not None
        return self.address

    def stop(self) -> None:
        """Stop accepting and drop live connections (idempotent)."""
        loop, thread = self._loop, self._thread
        if loop is not None and not loop.is_closed() and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=10)
        self._thread = None
        self._loop = None
        self._server = None

    # -- connection handling -------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        session = None
        auth: FrameAuth | None = None
        try:
            client_meta = _check_hello(
                await _read_frame_async(
                    reader, self._idle_timeout, self._max_frame_bytes
                ),
                self._static_auth,
            )
            if self._static_auth is None:
                writer.write(
                    frame_bytes(FRAME_HELLO, hello_payload("service"))
                )
            else:
                # The connecting client's nonce comes first in the
                # session-key derivation on both ends.
                nonce = FrameAuth.new_nonce()
                writer.write(
                    frame_bytes(
                        FRAME_HELLO,
                        hello_payload("service", nonce=nonce),
                        self._static_auth,
                    )
                )
                auth = self._static_auth.derived(client_meta["nonce"], nonce)
            await writer.drain()
            while True:
                frame = await _read_frame_async(
                    reader, self._idle_timeout, self._max_frame_bytes
                )
                if frame is None:
                    return
                kind, payload = frame
                if auth is not None:
                    payload = auth.verify(kind, payload)
                if kind == FRAME_HEARTBEAT:
                    # Liveness ping: echo it so the client's reply
                    # reads observe a live socket too.
                    writer.write(frame_bytes(FRAME_HEARTBEAT, b"", auth))
                    await writer.drain()
                    continue
                if kind == FRAME_BLOCK:
                    if session is None:
                        raise ServiceError(
                            "received an event block before create/attach "
                            "selected a stream"
                        )
                    block = block_from_frame(payload)
                    try:
                        await loop.run_in_executor(
                            None, session.ingest, block
                        )
                    except ServiceOverloadedError as exc:
                        # Backpressure is not connection-fatal: the
                        # block was atomically rejected (no partial
                        # state), so report out-of-band (token None)
                        # and keep serving — the client re-sends.
                        writer.write(
                            _control_reply(
                                "overloaded",
                                None,
                                {
                                    "retry_after": exc.retry_after,
                                    "message": str(exc),
                                },
                                auth,
                            )
                        )
                        await writer.drain()
                    continue
                if kind != FRAME_CONTROL:
                    raise ProtocolError(
                        f"unexpected frame kind {kind} mid-session"
                    )
                message = validate_service_request(_decode_payload(payload))
                op, token = message[0], message[1]
                try:
                    if op == "create":
                        _, _, name, config_dict, options_dict = message
                        config = StreamConfig.from_dict(config_dict)
                        options = (
                            ExecutorOptions.from_dict(options_dict)
                            if options_dict is not None
                            else None
                        )
                        session = await loop.run_in_executor(
                            None,
                            functools.partial(
                                self._service.create_stream,
                                name,
                                config,
                                options=options,
                            ),
                        )
                        value = {"name": name, "clock": session.clock}
                    elif op == "attach":
                        session = self._service.get_stream(message[2])
                        value = {
                            "name": session.name,
                            "clock": session.clock,
                            "config": session.config.to_dict(),
                        }
                    elif op == "ingest":
                        # The acknowledged slow path: pickled event
                        # lists, for streams whose labels have no
                        # columnar encoding.
                        if session is None:
                            raise ServiceError(
                                "no stream selected; create or attach first"
                            )
                        events = list(message[2])
                        await loop.run_in_executor(
                            None, session.ingest, events
                        )
                        value = len(events)
                    elif op == "query":
                        _, _, query_kind, query_args = message
                        if session is None:
                            raise ServiceError(
                                "no stream selected; create or attach first"
                            )
                        value = await loop.run_in_executor(
                            None, run_query, session, query_kind, query_args
                        )
                    elif op == "checkpoint":
                        if session is None:
                            raise ServiceError(
                                "no stream selected; create or attach first"
                            )
                        await loop.run_in_executor(None, session.checkpoint)
                        value = {
                            "clock": session.clock,
                            "durable": session.durable,
                        }
                    elif op == "streams":
                        value = list(self._service.streams())
                    else:
                        raise ProtocolError(f"unknown control op {op!r}")
                    reply = _control_reply(op, token, value, auth)
                except asyncio.CancelledError:
                    raise
                except ServiceOverloadedError as exc:
                    # WAL hard limit: a typed, retryable rejection —
                    # not worth a traceback, and never fatal.
                    reply = _control_reply(
                        "overloaded",
                        token,
                        {
                            "retry_after": exc.retry_after,
                            "message": str(exc),
                        },
                        auth,
                    )
                except Exception:
                    # Control failures are per-request: report with the
                    # (size-capped) remote traceback, keep the
                    # connection alive.
                    reply = _control_reply(
                        "error", token, clip_text(traceback.format_exc()), auth
                    )
                writer.write(reply)
                await writer.drain()
        except asyncio.CancelledError:
            # Cancellation only originates from our own stop(); finish
            # quietly so asyncio's stream-protocol done-callback does
            # not log a spurious traceback for every open connection.
            return
        except (ConnectionError, OSError):
            pass  # peer vanished; nothing to report to
        except Exception:
            # Protocol violations, idle-deadline expiry, and block-path
            # ingest failures are connection-fatal: report once (token
            # None), then drop.
            try:
                writer.write(
                    _control_reply(
                        "error", None, clip_text(traceback.format_exc()), auth
                    )
                )
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionError,
                OSError,
                # stop() can cancel us while the close handshake (or
                # an unread error reply to a gone peer) is pending.
                asyncio.CancelledError,
            ):  # pragma: no cover
                pass


class ServiceClient:
    """Blocking client for one counting-service connection.

    A connection addresses one stream at a time: :meth:`create_stream`
    or :meth:`attach` selects it, then :meth:`send_block` /
    :meth:`send_events` push events (fire-and-forget pipelining) and
    the query helpers read. Service-side failures raise
    :class:`~repro.errors.ServiceError` carrying the remote traceback.

    Liveness: every reply wait is bounded by ``op_timeout`` (a hung or
    silently dead service raises the retryable
    :class:`~repro.errors.OperationTimeoutError` instead of hanging the
    caller forever). With ``heartbeat_interval`` set, a daemon thread
    pings the service between requests — keeping an idle connection
    alive past the server's idle deadline, and turning a dead peer into
    :class:`~repro.errors.PeerLostError` at the next call. A block or
    request shed by the service's WAL hard limit raises
    :class:`~repro.errors.ServiceOverloadedError` with the server's
    retry-after hint.

    ``auth_key`` must match the service's ``--auth-key``; every frame
    is then HMAC-signed under a per-connection session key.

    Not thread-safe: one thread drives a client (the internal
    heartbeat thread is coordinated via a send lock).
    """

    def __init__(
        self,
        address: str,
        *,
        connect_timeout: float = 10.0,
        op_timeout: float | None = 60.0,
        heartbeat_interval: float | None = None,
        auth_key: str | None = None,
        max_frame_bytes: int | None = None,
    ) -> None:
        if op_timeout is not None and op_timeout <= 0:
            raise ConfigurationError(
                f"op_timeout must be positive or None, got {op_timeout}"
            )
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ConfigurationError(
                "heartbeat_interval must be positive or None, got "
                f"{heartbeat_interval}"
            )
        host, port = parse_address(address)
        self.address = address
        #: Deadline for every token-matched reply wait (``None`` waits
        #: forever, the pre-liveness behaviour).
        self.op_timeout = op_timeout
        #: Per-frame payload cap for replies (``None`` uses
        #: :data:`~repro.streams.transport.DEFAULT_MAX_FRAME_BYTES`).
        self._max_frame_bytes = max_frame_bytes
        self._auth: FrameAuth | None = None
        self._send_lock = threading.Lock()
        self._peer_lost: str | None = None
        self._heartbeat_stop = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to counting service {address}: {exc}"
            ) from exc
        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            deadline = time.monotonic() + connect_timeout
            peer = f"counting service {address}"
            if auth_key is None:
                write_frame(self._sock, FRAME_HELLO, hello_payload("client"))
                expect_hello(self._sock, peer=peer, deadline=deadline)
            else:
                static = FrameAuth(auth_key)
                nonce = FrameAuth.new_nonce()
                write_frame(
                    self._sock,
                    FRAME_HELLO,
                    hello_payload("client", nonce=nonce),
                    static,
                )
                meta = expect_hello(
                    self._sock, peer=peer, deadline=deadline, auth=static
                )
                # This end initiated the connection, so its nonce
                # comes first in the session-key derivation.
                self._auth = static.derived(nonce, meta["nonce"])
            self._sock.settimeout(None)
        except BaseException:
            self._sock.close()
            raise
        self._token = 0
        #: Name of the stream this connection is attached to.
        self.stream: str | None = None
        if heartbeat_interval is not None:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                args=(heartbeat_interval,),
                name="repro-client-heartbeat",
                daemon=True,
            )
            self._heartbeat_thread.start()

    # -- plumbing ------------------------------------------------------------

    def _heartbeat_loop(self, interval: float) -> None:
        """Ping between requests; a failed ping marks the peer lost.

        Sends never change the socket timeout (the app thread owns
        it): a ``TimeoutError`` here just means the send buffer is
        full — backpressure, not death, and the queued bytes prove
        liveness to the server once they land.
        """
        while not self._heartbeat_stop.wait(interval):
            try:
                with self._send_lock:
                    if self._peer_lost is not None:
                        return
                    self._sock.sendall(
                        frame_bytes(FRAME_HEARTBEAT, b"", self._auth)
                    )
            except TimeoutError:
                continue
            except OSError as exc:
                if not self._heartbeat_stop.is_set():
                    self._peer_lost = f"heartbeat send failed: {exc}"
                return

    def _raise_if_lost(self) -> None:
        if self._peer_lost is not None:
            raise PeerLostError(
                f"counting service {self.address} is unreachable "
                f"({self._peer_lost})"
            )

    def _send_frame(self, kind: int, payload) -> None:
        self._raise_if_lost()
        try:
            with self._send_lock:
                self._sock.settimeout(None)
                write_frame(self._sock, kind, payload, self._auth)
        except OSError as exc:
            self._raise_if_lost()
            # The server reports connection-fatal failures and then
            # drops the link; our send can hit the broken pipe before
            # we ever read that report. Salvage it if it is there.
            failure = self._drain_error()
            if failure is not None:
                raise ServiceError(
                    f"counting service {self.address} reported:\n{failure}"
                ) from exc
            raise ServiceError(
                f"connection to counting service {self.address} broke "
                f"mid-send: {exc}"
            ) from exc

    def _drain_error(self) -> str | None:
        """Best-effort read of a pending ``("error", None, ...)`` reply."""
        deadline = time.monotonic() + 1.0
        try:
            self._sock.settimeout(0.1)
            while True:
                frame = read_frame(
                    self._sock,
                    deadline=deadline,
                    auth=self._auth,
                    max_frame_bytes=self._max_frame_bytes,
                )
                if frame is None:
                    return None
                kind, payload = frame
                if kind != FRAME_CONTROL:
                    continue
                reply = _decode_payload(payload)
                if (
                    isinstance(reply, tuple)
                    and len(reply) == 3
                    and reply[0] == "error"
                    and isinstance(reply[2], str)
                ):
                    return reply[2]
        except Exception:
            return None

    def _read_reply(self, deadline: float | None) -> tuple:
        """One decoded CONTROL reply, skipping heartbeat echoes."""
        while True:
            try:
                if deadline is None:
                    self._sock.settimeout(None)
                    frame = read_frame(
                        self._sock,
                        auth=self._auth,
                        max_frame_bytes=self._max_frame_bytes,
                    )
                else:
                    # Finite socket timeout = the deadline's poll tick.
                    self._sock.settimeout(0.1)
                    frame = read_frame(
                        self._sock,
                        deadline=deadline,
                        auth=self._auth,
                        max_frame_bytes=self._max_frame_bytes,
                    )
            except TimeoutError:
                raise OperationTimeoutError(
                    f"counting service {self.address} sent no reply "
                    f"within {self.op_timeout}s"
                ) from None
            except OSError as exc:
                self._raise_if_lost()
                raise ServiceError(
                    f"connection to counting service {self.address} "
                    f"broke mid-reply: {exc}"
                ) from exc
            if frame is None:
                self._raise_if_lost()
                raise ServiceError(
                    f"counting service {self.address} closed the "
                    "connection"
                )
            kind, payload = frame
            if kind == FRAME_HEARTBEAT:
                continue  # server echo of our liveness ping
            if kind != FRAME_CONTROL:
                raise ProtocolError(
                    f"expected a control reply, got frame kind {kind}"
                )
            return validate_service_reply(_decode_payload(payload))

    def _overloaded(self, info) -> ServiceOverloadedError:
        info = info if isinstance(info, dict) else {}
        message = info.get("message") or (
            f"counting service {self.address} is overloaded"
        )
        return ServiceOverloadedError(
            message, retry_after=info.get("retry_after")
        )

    def _control(self, op: str, *rest):
        self._token += 1
        token = self._token
        self._send_frame(FRAME_CONTROL, _encode_payload((op, token, *rest)))
        deadline = (
            None
            if self.op_timeout is None
            else time.monotonic() + self.op_timeout
        )
        overload: ServiceOverloadedError | None = None
        while True:
            reply = self._read_reply(deadline)
            if reply[0] == "overloaded":
                if reply[1] is None:
                    # Out-of-band: an earlier fire-and-forget block was
                    # shed. Our request's own reply is still coming —
                    # stay in sync, then surface the rejection.
                    overload = overload or self._overloaded(reply[2])
                    continue
                if reply[1] != token:
                    raise ProtocolError(
                        f"out-of-order reply {reply[:2]!r} to "
                        f"({op!r}, {token})"
                    )
                raise self._overloaded(reply[2])
            if reply[0] == "error":
                raise ServiceError(
                    f"counting service {self.address} reported:\n{reply[2]}"
                )
            if reply[0] != op or reply[1] != token:
                raise ProtocolError(
                    f"out-of-order reply {reply[:2]!r} to ({op!r}, {token})"
                )
            if overload is not None:
                # The request succeeded, but a pipelined block was
                # dropped: the caller must know to re-send it.
                raise overload
            return reply[2]

    # -- stream selection ----------------------------------------------------

    def create_stream(
        self,
        name: str,
        config,
        *,
        options: ExecutorOptions | None = None,
    ) -> dict:
        """Create a named stream and attach this connection to it."""
        info = self._control(
            "create",
            name,
            config.to_dict(),
            options.to_dict() if options is not None else None,
        )
        self.stream = name
        return info

    def attach(self, name: str) -> dict:
        """Attach this connection to an existing stream."""
        info = self._control("attach", name)
        self.stream = name
        return info

    def streams(self) -> list[str]:
        """The service's registered stream names."""
        return self._control("streams")

    # -- write path ----------------------------------------------------------

    def send_block(self, block: EventBlock) -> None:
        """Push one columnar block (fire-and-forget, pipelines).

        If the service sheds the block (WAL hard limit), the typed
        rejection surfaces as :class:`ServiceOverloadedError` on the
        next acknowledged call (any query/checkpoint/control op).
        """
        self._send_frame(FRAME_BLOCK, block.to_bytes())

    def send_events(self, events) -> None:
        """Push an event batch, columnar when the labels allow it."""
        events = list(events)
        if not events:
            return
        try:
            block = EventBlock.from_events(events)
        except TypeError:
            self._control("ingest", events)
            return
        self.send_block(block)

    def ingest(self, events) -> int:
        """Push an event batch and wait for the ack (no pipelining).

        The acknowledged alternative to :meth:`send_events`: overload
        rejections surface immediately, on this call.
        """
        return self._control("ingest", list(events))

    # -- read path -----------------------------------------------------------

    def query(self, kind: str, **args):
        """One named query against the attached stream (a barrier)."""
        return self._control("query", kind, args)

    def estimate(self) -> float:
        return float(self.query("estimate"))

    def time(self) -> int:
        return int(self.query("time"))

    def shard_times(self) -> list[int]:
        return self.query("shard_times")

    def shard_estimates(self) -> list[float]:
        return self.query("shard_estimates")

    def stats(self) -> dict:
        """Estimate + clocks as one consistent snapshot dict."""
        return self.query("stats")

    def top_vertices(self, k: int = 10) -> list[tuple[object, float]]:
        return [tuple(item) for item in self.query("top_vertices", k=k)]

    def local_counts(self, vertices) -> dict:
        return self.query("local_counts", vertices=list(vertices))

    # -- durability ----------------------------------------------------------

    def checkpoint(self) -> dict:
        """Force a checkpoint of the attached stream (a barrier)."""
        return self._control("checkpoint")

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._heartbeat_stop.set()
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - defensive
            pass
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=2)
            self._heartbeat_thread = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ServiceClient(address={self.address!r}, "
            f"stream={self.stream!r})"
        )
