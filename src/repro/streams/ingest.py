"""The counting service's TCP front: asyncio server + blocking client.

One wire format serves the whole library: the ``RSX1`` frames of
:mod:`repro.streams.transport`. A service connection is

1. a HELLO exchange (JSON, version-checked both ways — same rules as
   the shard transports);
2. CONTROL frames carrying pickled ``(op, token, ...)`` requests —
   ``create`` / ``attach`` / ``ingest`` / ``query`` / ``checkpoint`` /
   ``streams`` — answered by ``(op, token, value)`` or
   ``("error", token, traceback_text)``;
3. BLOCK frames carrying columnar
   :class:`~repro.graph.stream.EventBlock` payloads for the selected
   stream — the fire-and-forget fast path: no per-block acknowledgement,
   so ingestion pipelines; an ingest failure is reported once (token
   ``None``) and drops the connection, and the kernel socket buffer is
   the backpressure bound (the server reads and applies one frame at a
   time per connection, exactly like the shard host agent).

The server (:class:`StreamIngestServer`) runs one asyncio event loop in
a daemon thread; session work (sampler ingestion, barrier reads) runs
on the default thread-pool executor so the loop stays responsive to
other connections. Per-stream ordering is preserved where it matters:
frames of one connection are applied strictly in order, and sessions
serialise concurrent writers under their own lock.

Trust model: CONTROL payloads are **pickled** — identical to the shard
transports, the service must only listen on networks where every peer
is trusted. This is cluster-internal plumbing, not a public endpoint.
"""

from __future__ import annotations

import asyncio
import functools
import json
import pickle
import socket
import threading
import traceback

from repro.errors import ProtocolError, ServiceError
from repro.graph.stream import EventBlock
from repro.streams.executor import ExecutorOptions
from repro.streams.queries import run_query
from repro.streams.service import StreamConfig
from repro.streams.transport import (
    FRAME_BLOCK,
    FRAME_CONTROL,
    FRAME_HEADER_SIZE,
    FRAME_HELLO,
    PROTOCOL_VERSION,
    block_from_frame,
    expect_hello,
    frame_bytes,
    hello_payload,
    parse_address,
    parse_frame_header,
    read_frame,
    write_frame,
)

__all__ = ["StreamIngestServer", "ServiceClient"]


async def _read_frame_async(reader: asyncio.StreamReader):
    """One frame from an asyncio stream; ``None`` on clean close."""
    try:
        header = await reader.readexactly(FRAME_HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(exc.partial)} of "
            f"{FRAME_HEADER_SIZE} bytes)"
        ) from exc
    kind, length = parse_frame_header(header)
    if not length:
        return kind, b""
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of "
            f"{length} payload bytes)"
        ) from exc
    return kind, payload


def _check_hello(frame) -> None:
    """Server-side HELLO validation (mirrors ``expect_hello``)."""
    if frame is None:
        raise ProtocolError("client closed the connection before HELLO")
    kind, payload = frame
    if kind != FRAME_HELLO:
        raise ProtocolError(f"expected HELLO, got frame kind {kind}")
    try:
        meta = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("malformed HELLO payload") from exc
    if meta.get("protocol") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"client speaks protocol {meta.get('protocol')!r}, this "
            f"build speaks {PROTOCOL_VERSION}"
        )


def _control_reply(op: str, token, value) -> bytes:
    return frame_bytes(
        FRAME_CONTROL,
        pickle.dumps((op, token, value), protocol=pickle.HIGHEST_PROTOCOL),
    )


class StreamIngestServer:
    """The asyncio ingestion front of one :class:`CountingService`.

    Runs a dedicated event loop in a daemon thread; :meth:`start`
    returns the bound ``host:port`` (port 0 in ``listen`` picks a free
    one). One coroutine per connection; blocking session work is pushed
    to the default thread-pool executor.
    """

    def __init__(self, service, listen: str = "127.0.0.1:0") -> None:
        self._service = service
        self._host, self._port = parse_address(listen)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.base_events.Server | None = None
        #: The bound ``host:port`` once started.
        self.address: str | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> str:
        if self._thread is not None:
            raise ServiceError("ingest server already started")
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        boot_errors: list[BaseException] = []

        def run() -> None:
            loop = self._loop
            asyncio.set_event_loop(loop)
            try:
                self._server = loop.run_until_complete(
                    asyncio.start_server(
                        self._serve_connection, self._host, self._port
                    )
                )
            except BaseException as exc:  # surface bind failures to start()
                boot_errors.append(exc)
                started.set()
                return
            sockname = self._server.sockets[0].getsockname()
            self.address = f"{sockname[0]}:{sockname[1]}"
            started.set()
            try:
                loop.run_forever()
            finally:
                self._server.close()
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.run_until_complete(self._server.wait_closed())
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-service-ingest", daemon=True
        )
        self._thread.start()
        started.wait()
        if boot_errors:
            self._thread.join(timeout=5)
            self._thread = None
            raise boot_errors[0]
        assert self.address is not None
        return self.address

    def stop(self) -> None:
        """Stop accepting and drop live connections (idempotent)."""
        loop, thread = self._loop, self._thread
        if loop is not None and not loop.is_closed() and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=10)
        self._thread = None
        self._loop = None
        self._server = None

    # -- connection handling -------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        session = None
        try:
            _check_hello(await _read_frame_async(reader))
            writer.write(frame_bytes(FRAME_HELLO, hello_payload("service")))
            await writer.drain()
            while True:
                frame = await _read_frame_async(reader)
                if frame is None:
                    return
                kind, payload = frame
                if kind == FRAME_BLOCK:
                    if session is None:
                        raise ServiceError(
                            "received an event block before create/attach "
                            "selected a stream"
                        )
                    block = block_from_frame(payload)
                    await loop.run_in_executor(None, session.ingest, block)
                    continue
                if kind != FRAME_CONTROL:
                    raise ProtocolError(
                        f"unexpected frame kind {kind} mid-session"
                    )
                message = pickle.loads(payload)
                op, token = message[0], message[1]
                try:
                    if op == "create":
                        _, _, name, config_dict, options_dict = message
                        config = StreamConfig.from_dict(config_dict)
                        options = (
                            ExecutorOptions.from_dict(options_dict)
                            if options_dict is not None
                            else None
                        )
                        session = await loop.run_in_executor(
                            None,
                            functools.partial(
                                self._service.create_stream,
                                name,
                                config,
                                options=options,
                            ),
                        )
                        value = {"name": name, "clock": session.clock}
                    elif op == "attach":
                        session = self._service.get_stream(message[2])
                        value = {
                            "name": session.name,
                            "clock": session.clock,
                            "config": session.config.to_dict(),
                        }
                    elif op == "ingest":
                        # The acknowledged slow path: pickled event
                        # lists, for streams whose labels have no
                        # columnar encoding.
                        if session is None:
                            raise ServiceError(
                                "no stream selected; create or attach first"
                            )
                        events = list(message[2])
                        await loop.run_in_executor(
                            None, session.ingest, events
                        )
                        value = len(events)
                    elif op == "query":
                        _, _, query_kind, query_args = message
                        if session is None:
                            raise ServiceError(
                                "no stream selected; create or attach first"
                            )
                        value = await loop.run_in_executor(
                            None, run_query, session, query_kind, query_args
                        )
                    elif op == "checkpoint":
                        if session is None:
                            raise ServiceError(
                                "no stream selected; create or attach first"
                            )
                        await loop.run_in_executor(None, session.checkpoint)
                        value = {
                            "clock": session.clock,
                            "durable": session.durable,
                        }
                    elif op == "streams":
                        value = list(self._service.streams())
                    else:
                        raise ProtocolError(f"unknown control op {op!r}")
                    reply = _control_reply(op, token, value)
                except asyncio.CancelledError:
                    raise
                except Exception:
                    # Control failures are per-request: report with the
                    # remote traceback, keep the connection alive.
                    reply = _control_reply(
                        "error", token, traceback.format_exc()
                    )
                writer.write(reply)
                await writer.drain()
        except asyncio.CancelledError:
            # Cancellation only originates from our own stop(); finish
            # quietly so asyncio's stream-protocol done-callback does
            # not log a spurious traceback for every open connection.
            return
        except (ConnectionError, OSError):
            pass  # peer vanished; nothing to report to
        except Exception:
            # Protocol violations and block-path ingest failures are
            # connection-fatal: report once (token None), then drop.
            try:
                writer.write(
                    _control_reply("error", None, traceback.format_exc())
                )
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


class ServiceClient:
    """Blocking client for one counting-service connection.

    A connection addresses one stream at a time: :meth:`create_stream`
    or :meth:`attach` selects it, then :meth:`send_block` /
    :meth:`send_events` push events (fire-and-forget pipelining) and
    the query helpers read. Service-side failures raise
    :class:`~repro.errors.ServiceError` carrying the remote traceback.
    """

    def __init__(self, address: str, *, connect_timeout: float = 10.0) -> None:
        host, port = parse_address(address)
        self.address = address
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to counting service {address}: {exc}"
            ) from exc
        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            write_frame(self._sock, FRAME_HELLO, hello_payload("client"))
            expect_hello(self._sock, peer=f"counting service {address}")
            self._sock.settimeout(None)
        except BaseException:
            self._sock.close()
            raise
        self._token = 0
        #: Name of the stream this connection is attached to.
        self.stream: str | None = None

    # -- plumbing ------------------------------------------------------------

    def _control(self, op: str, *rest):
        self._token += 1
        token = self._token
        write_frame(
            self._sock,
            FRAME_CONTROL,
            pickle.dumps(
                (op, token, *rest), protocol=pickle.HIGHEST_PROTOCOL
            ),
        )
        frame = read_frame(self._sock)
        if frame is None:
            raise ServiceError(
                f"counting service {self.address} closed the connection"
            )
        kind, payload = frame
        if kind != FRAME_CONTROL:
            raise ProtocolError(
                f"expected a control reply, got frame kind {kind}"
            )
        reply = pickle.loads(payload)
        if reply[0] == "error":
            raise ServiceError(
                f"counting service {self.address} reported:\n{reply[2]}"
            )
        if reply[0] != op or reply[1] != token:
            raise ProtocolError(
                f"out-of-order reply {reply[:2]!r} to ({op!r}, {token})"
            )
        return reply[2]

    # -- stream selection ----------------------------------------------------

    def create_stream(
        self,
        name: str,
        config,
        *,
        options: ExecutorOptions | None = None,
    ) -> dict:
        """Create a named stream and attach this connection to it."""
        info = self._control(
            "create",
            name,
            config.to_dict(),
            options.to_dict() if options is not None else None,
        )
        self.stream = name
        return info

    def attach(self, name: str) -> dict:
        """Attach this connection to an existing stream."""
        info = self._control("attach", name)
        self.stream = name
        return info

    def streams(self) -> list[str]:
        """The service's registered stream names."""
        return self._control("streams")

    # -- write path ----------------------------------------------------------

    def send_block(self, block: EventBlock) -> None:
        """Push one columnar block (fire-and-forget, pipelines)."""
        write_frame(self._sock, FRAME_BLOCK, block.to_bytes())

    def send_events(self, events) -> None:
        """Push an event batch, columnar when the labels allow it."""
        events = list(events)
        if not events:
            return
        try:
            block = EventBlock.from_events(events)
        except TypeError:
            self._control("ingest", events)
            return
        self.send_block(block)

    # -- read path -----------------------------------------------------------

    def query(self, kind: str, **args):
        """One named query against the attached stream (a barrier)."""
        return self._control("query", kind, args)

    def estimate(self) -> float:
        return float(self.query("estimate"))

    def time(self) -> int:
        return int(self.query("time"))

    def shard_times(self) -> list[int]:
        return self.query("shard_times")

    def shard_estimates(self) -> list[float]:
        return self.query("shard_estimates")

    def stats(self) -> dict:
        """Estimate + clocks as one consistent snapshot dict."""
        return self.query("stats")

    def top_vertices(self, k: int = 10) -> list[tuple[object, float]]:
        return [tuple(item) for item in self.query("top_vertices", k=k)]

    def local_counts(self, vertices) -> dict:
        return self.query("local_counts", vertices=list(vertices))

    # -- durability ----------------------------------------------------------

    def checkpoint(self) -> dict:
        """Force a checkpoint of the attached stream (a barrier)."""
        return self._control("checkpoint")

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ServiceClient(address={self.address!r}, "
            f"stream={self.stream!r})"
        )
