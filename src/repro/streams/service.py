"""Counting as a service: long-lived, multi-tenant streaming sessions.

Everything below this module answers one question per call: *given this
stream, what is the estimate now?* The service tier turns that into an
operated system: many named streams (tenants), each a sampler
configuration × shard layout backed by a
:class:`~repro.streams.executor.ShardedStreamExecutor` on any backend,
ingesting for hours while clients query, workers crash, and the process
itself restarts. Three objects carry the design:

* :class:`StreamConfig` — *what* a stream counts: algorithm, pattern,
  budget, seed, shard layout. JSON round-trippable, so it travels over
  the wire and into checkpoint manifests. The ``(config, name)`` pair
  defines the stream's randomness: per-shard generators are spawned
  from ``derive_seed(config.seed, "stream-<name>")``, so a serial
  re-run of the same named stream is bit-identical to the hosted one —
  the library's fixed-seed contract, extended to the service tier.
* :class:`StreamSession` — one live tenant. Owns the executor, an
  in-memory write-ahead log of everything since the last checkpoint
  barrier, and the durable on-disk checkpoint. A crashed worker is
  restored from its retained snapshot and the *exact* sub-stream it
  lost is replayed from the log (clock-delta replay, see
  :meth:`StreamSession._replay`), so recovery is invisible in the
  numbers, not just approximately patched.
* :class:`CountingService` — the registry + operations loop: restores
  every tenant found under ``state_dir`` at boot, runs the asyncio
  ingestion front (:mod:`repro.streams.ingest`) and a durability
  thread that checkpoints every tenant on a fixed cadence.
  ``python -m repro.streams.service --listen HOST:PORT`` is the
  operator entry point.

Durability uses generation-numbered checkpoint files: every shard
state of generation *g* is written (atomically, via
:func:`~repro.utils.io.atomic_write_bytes`) together with its own
``manifest-g<g>.json`` before ``manifest.json`` — the commit point —
is replaced to name them; generations *g* and *g-1* are both retained
(only *g-2* and older are pruned), so a checkpoint that turns out to
be corrupt on disk never strands the stream. A crash at any byte
leaves at least one complete checkpoint, never only a torn mix.

Everything read back from disk is validated before it is trusted:
WAL spill segments are CRC-framed (:mod:`repro.streams.codec`),
checkpoint shard files carry their own framed format, and manifests
are structurally checked. A file that fails — truncated, bit-flipped,
zero-length, wrong format — is renamed into the stream's
``quarantine/`` directory with a :class:`~repro.errors.CorruptStateWarning`
and restore falls back to the newest generation that validates in
full. No pickle is read from disk on any of these paths.

Trust model: the service speaks the shard-transport wire format,
whose control frames are RSX2-encoded and schema-validated — hostile
bytes raise typed errors instead of executing code (see
:mod:`repro.streams.transport`).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import threading
import traceback
import warnings
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path

from repro.errors import (
    ConfigurationError,
    CorruptStateWarning,
    PeerLostError,
    ProtocolError,
    ServiceError,
    ServiceOverloadedError,
    WorkerCrashError,
)
from repro.estimators.local import LocalSubgraphCounter
from repro.graph.stream import EventBlock
from repro.patterns.matching import get_pattern
from repro.samplers.checkpoint import (
    restore_sampler,
    state_from_wire,
    state_to_wire,
)
from repro.streams.codec import wal_from_wire, wal_to_wire
from repro.streams.executor import (
    ExecutorOptions,
    ShardedStreamExecutor,
    partition_block,
    partition_events,
)
from repro.streams.queries import StreamQueries
from repro.streams.supervisor import DEFAULT_RECOVERY_POLICY, RecoveryPolicy
from repro.utils.io import atomic_write_bytes, atomic_write_text
from repro.utils.rng import derive_seed, spawn_generators
from repro.weights.heuristic import GPSHeuristicWeight, UniformWeight

__all__ = [
    "SERVICE_ALGORITHMS",
    "StreamConfig",
    "StreamSession",
    "ServiceConfig",
    "CountingService",
    "main",
]

#: On-disk checkpoint manifest format; bumped on incompatible changes.
MANIFEST_FORMAT = 1

#: Default cap on write-ahead-log events before an automatic snapshot
#: barrier trims it (bounds both replay time and parent memory).
DEFAULT_WAL_LIMIT = 1 << 17

#: Spilled-WAL segment filename: base checkpoint generation + sequence.
_WAL_SEGMENT = "wal-g{generation:06d}-{seq:06d}.seg"

_WAL_SEGMENT_RE = re.compile(r"^wal-g(\d{6})-(\d{6})\.seg$")

#: Per-generation checkpoint manifest (``manifest.json`` is the commit
#: pointer naming the latest one).
_MANIFEST_FILE = "manifest-g{generation:06d}.json"

_MANIFEST_RE = re.compile(r"^manifest-g(\d{6})\.json$")

#: Any generation-numbered checkpoint artefact (for retention pruning).
_GENERATION_FILE_RE = re.compile(
    r"^(?:shard-\d{4}-|local-|manifest-)g(\d{6})\.(?:ckpt|json)$"
)

#: Algorithms the service can host. WSD-L is deliberately absent: it
#: needs a live policy object, which neither the wire nor the JSON
#: checkpoint manifest carries — host it in-process by building a
#: :class:`StreamSession` yourself and injecting a sampler factory.
SERVICE_ALGORITHMS = ("WSD-H", "WSD-U", "GPS-A", "GPS", "Triest", "ThinkD", "WRS")

_SERVICE_KEYS = {name.upper() for name in SERVICE_ALGORITHMS}

#: Stream names double as checkpoint directory names, so they are
#: restricted to a filesystem- and wire-safe alphabet.
_STREAM_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


def _validate_stream_name(name: str) -> None:
    if not isinstance(name, str) or not _STREAM_NAME.match(name):
        raise ConfigurationError(
            f"bad stream name {name!r}: need 1-128 chars of "
            "[A-Za-z0-9._-], starting with an alphanumeric"
        )


def _quarantine_file(directory: Path, path: Path, reason: str) -> Path | None:
    """Move a corrupt persisted file into ``<stream dir>/quarantine/``.

    The file is renamed (never deleted — an operator may want the
    bytes for forensics) and a :class:`CorruptStateWarning` names both
    ends of the move and why. Returns the quarantine path, or ``None``
    when even the rename failed (the warning still fires).
    """
    target: Path | None = None
    try:
        quarantine = directory / "quarantine"
        quarantine.mkdir(parents=True, exist_ok=True)
        target = quarantine / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = quarantine / f"{path.name}.{suffix}"
        path.rename(target)
    except OSError:  # pragma: no cover - rename is same-filesystem
        target = None
    warnings.warn(
        CorruptStateWarning(
            f"quarantined {path} ({reason})"
            + (f" -> {target}" if target is not None else "")
        ),
        stacklevel=2,
    )
    return target


class _SkippedGeneration(Exception):
    """Internal: this manifest repeats a generation already attempted."""


def _manifest_candidates(directory: Path) -> list[Path]:
    """Checkpoint manifests to try, newest first.

    ``manifest.json`` (the commit pointer) leads; the per-generation
    ``manifest-g*.json`` files follow in descending generation order,
    so a corrupt latest checkpoint falls back one generation at a
    time. Duplicate generations are filtered later (the pointer is a
    copy of the newest per-generation manifest).
    """
    candidates: list[Path] = []
    pointer = directory / "manifest.json"
    if pointer.is_file():
        candidates.append(pointer)
    generations: list[tuple[int, Path]] = []
    if directory.is_dir():
        for child in directory.iterdir():
            found = _MANIFEST_RE.match(child.name)
            if found is not None:
                generations.append((int(found.group(1)), child))
    candidates.extend(path for _gen, path in sorted(generations, reverse=True))
    return candidates


# Local-count vertices are int or str; JSON object keys are str-only,
# so accumulators persist as tagged pairs (the checkpoint layer's
# convention).
def _encode_vertex(vertex) -> list:
    if isinstance(vertex, bool) or not isinstance(vertex, (int, str)):
        raise ConfigurationError(
            f"local-count persistence supports int/str vertices, got "
            f"{type(vertex).__name__}"
        )
    return ["i", vertex] if isinstance(vertex, int) else ["s", vertex]


def _decode_vertex(pair: list):
    kind, value = pair
    return int(value) if kind == "i" else str(value)


def _entry_tail(entry, count: int):
    """The last ``count`` events of one WAL entry (block or list)."""
    if isinstance(entry, EventBlock):
        return EventBlock(
            entry.is_insert[-count:],
            entry.u[-count:],
            entry.v[-count:],
            canonical=True,
        )
    return entry[-count:]


def _tail_entries(entries: list, count: int) -> list:
    """The suffix of a routed WAL holding exactly ``count`` events."""
    tail: list = []
    need = count
    for entry in reversed(entries):
        if need <= 0:
            break
        if len(entry) <= need:
            tail.append(entry)
            need -= len(entry)
        else:
            tail.append(_entry_tail(entry, need))
            need = 0
    tail.reverse()
    return tail


@dataclass(frozen=True)
class StreamConfig:
    """What one hosted stream counts (JSON round-trippable).

    ``(seed, stream name)`` fully determines the randomness: the
    session spawns per-shard generators from
    ``derive_seed(seed, "stream-<name>")``, so two streams with the
    same config but different names are independent, and a serial
    reference run of the same named config reproduces the hosted
    stream bit for bit.
    """

    algorithm: str = "WSD-H"
    pattern: str = "triangle"
    budget: int = 10_000
    seed: int = 0
    shards: int = 1
    mode: str = "partition"
    #: Track per-vertex local counts (anomaly-detection workloads).
    #: Requires ``shards=1`` and the serial backend: the counter
    #: observes the replica's counted instances in-process.
    track_local: bool = False

    def validate(self) -> None:
        key = str(self.algorithm).upper().replace("_", "-")
        if key == "WSD-L":
            raise ConfigurationError(
                "the service cannot host WSD-L: it needs a live trained "
                "policy, which does not travel over the wire or into a "
                "checkpoint manifest; serve WSD-H, or run WSD-L "
                "in-process with a StreamSession you build yourself"
            )
        if key not in _SERVICE_KEYS:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; the service "
                f"hosts {SERVICE_ALGORITHMS}"
            )
        get_pattern(self.pattern)  # raises on unknown patterns
        if self.budget < 1:
            raise ConfigurationError("budget must be >= 1")
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.mode not in {"partition", "broadcast"}:
            raise ConfigurationError(
                f"mode must be 'partition' or 'broadcast', got {self.mode!r}"
            )
        if self.track_local and self.shards != 1:
            raise ConfigurationError(
                "track_local requires shards=1 (the local counter "
                "observes a single replica's instances)"
            )

    def shard_budget(self) -> int:
        """Per-replica budget: split in partition mode, full otherwise.

        The same convention as the experiment runner: partition mode
        divides M across the replicas (memory parity with a single
        sampler, floored at |H| so the estimators stay defined);
        broadcast replicas each sample the whole stream with the full
        budget.
        """
        if self.mode == "partition":
            return max(get_pattern(self.pattern).num_edges, self.budget // self.shards)
        return self.budget

    def build_weight_fn(self):
        """The algorithm's weight function (for checkpoint restores)."""
        key = str(self.algorithm).upper().replace("_", "-")
        if key in {"WSD-H", "GPS", "GPS-A"}:
            return GPSHeuristicWeight()
        if key == "WSD-U":
            return UniformWeight()
        return None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "StreamConfig":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown StreamConfig keys: {unknown}; known: {sorted(known)}"
            )
        config = cls(**payload)
        config.validate()
        return config

    def with_changes(self, **kwargs) -> "StreamConfig":
        return replace(self, **kwargs)


class StreamSession:
    """One live hosted stream: executor + replay log + durability.

    The session's job is to make a long-lived stream safe to operate:

    * **Writes** (:meth:`ingest`) append to an in-memory write-ahead
      log *before* dispatching to the executor, so any event the
      executor might lose to a worker crash is replayable.
    * **Crash recovery** is clock-delta replay: restart the crashed
      shard from its retained snapshot, read every shard's event clock
      (a barrier), and re-feed each shard exactly the suffix of its
      routed sub-stream that its clock says it is missing — survivors
      replay nothing, the restored shard replays everything since the
      snapshot, and the recovered state is bit-identical to a run with
      no crash at all.
    * **Durability** (:meth:`checkpoint`) persists a
      generation-numbered, atomically-committed checkpoint that
      :meth:`restore` turns back into a bit-identical continuation.

    Reads go through :attr:`queries`
    (a :class:`~repro.streams.queries.StreamQueries`); all paths
    share one re-entrant lock, so queries interleave with ingestion at
    batch boundaries only.
    """

    def __init__(
        self,
        name: str,
        config: StreamConfig,
        *,
        options: ExecutorOptions | None = None,
        state_dir: str | Path | None = None,
        auto_restart: bool = True,
        wal_limit_events: int = DEFAULT_WAL_LIMIT,
        wal_spill_events: int | None = None,
        wal_hard_limit_events: int | None = None,
        recovery_policy: RecoveryPolicy | None = None,
        _states: list[dict] | None = None,
        _generation: int = 0,
        _local_counts: dict | None = None,
    ) -> None:
        _validate_stream_name(name)
        config.validate()
        if options is None:
            options = ExecutorOptions()
        options.validate()
        if config.track_local and options.backend != "serial":
            raise ConfigurationError(
                "track_local requires the serial executor backend (the "
                "local counter observes replica instances in-process)"
            )
        if wal_limit_events < 1:
            raise ConfigurationError("wal_limit_events must be >= 1")
        if wal_spill_events is not None and wal_spill_events < 1:
            raise ConfigurationError(
                "wal_spill_events must be >= 1 (or None to disable)"
            )
        if wal_hard_limit_events is not None:
            if wal_hard_limit_events < 1:
                raise ConfigurationError(
                    "wal_hard_limit_events must be >= 1 (or None)"
                )
            if (
                wal_spill_events is not None
                and wal_hard_limit_events <= wal_spill_events
            ):
                raise ConfigurationError(
                    "wal_hard_limit_events must exceed wal_spill_events "
                    f"({wal_hard_limit_events} <= {wal_spill_events})"
                )
        self.name = name
        self.config = config
        self.options = options
        self.auto_restart = auto_restart
        self._wal_limit = int(wal_limit_events)
        self._wal_spill = (
            None if wal_spill_events is None else int(wal_spill_events)
        )
        self._wal_hard_limit = (
            None
            if wal_hard_limit_events is None
            else int(wal_hard_limit_events)
        )
        #: The retry hint shipped inside overload rejections.
        self.retry_after_hint = 1.0
        if recovery_policy is None:
            recovery_policy = (
                options.recovery_policy
                if options.recovery_policy is not None
                else DEFAULT_RECOVERY_POLICY
            )
        #: The recovery engine (public: the chaos bench reads its stats).
        self.supervisor = recovery_policy.build_supervisor(
            config.shards, name=name
        )
        self._state_dir = Path(state_dir) if state_dir is not None else None
        self._lock = threading.RLock()
        self._wal: list = []
        self._wal_events = 0
        self._wal_memory_events = 0
        #: Closed WAL segments spilled to disk: (path, event count).
        self._segments: list[tuple[Path, int]] = []
        self._spilled_events = 0
        self._spill_seq = 0
        #: Corrupt persisted files renamed aside over this session's
        #: lifetime (segments + events lost to them), surfaced in
        #: :meth:`wal_stats`.
        self._quarantined_segments = 0
        self._quarantined_events = 0
        # Whether _base_clocks match the persisted checkpoint of
        # self._generation — the precondition for spilled segments to
        # be replayable at restore (a snapshot() without persist breaks
        # it; the next checkpoint() re-establishes it). Fresh sessions
        # start aligned: no manifest carries generation 0, so their
        # segments can never be mis-replayed.
        self._base_aligned = True
        self._generation = int(_generation)
        self._closed = False

        if _states is None:
            from repro.experiments.algorithms import make_sampler

            shard_budget = config.shard_budget()
            rngs = spawn_generators(
                derive_seed(config.seed, f"stream-{name}"), config.shards
            )

            def factory(index: int):
                return make_sampler(
                    config.algorithm, config.pattern, shard_budget,
                    rng=rngs[index],
                )
        else:
            if len(_states) != config.shards:
                raise ServiceError(
                    f"checkpoint for stream {name!r} has {len(_states)} "
                    f"shard states but the config declares {config.shards}"
                )
            weight_fn = config.build_weight_fn()

            def factory(index: int):
                return restore_sampler(_states[index], weight_fn)

        #: The underlying executor. Public for operational tooling and
        #: tests; normal callers use :meth:`ingest` and :attr:`queries`.
        self.executor = ShardedStreamExecutor(
            factory, config.shards, mode=config.mode, options=options
        )
        #: Per-vertex local counter when ``config.track_local``.
        self.local: LocalSubgraphCounter | None = None
        if config.track_local:
            self.local = LocalSubgraphCounter().attach(self.executor.shards[0])
            if _local_counts:
                self.local.load_vertex_estimates(_local_counts)
        # Arm restart_shard from event zero (or the restored cut): the
        # executor retains this snapshot until the next one replaces it.
        self._base_clocks = [
            int(state["time"]) for state in self.executor.snapshot()
        ]
        #: The read surface (estimate / stats / top_vertices / ...).
        self.queries = StreamQueries(self)

    # -- identity ------------------------------------------------------------

    @property
    def clock(self) -> int:
        """Events ingested into this session over its whole lifetime."""
        with self._lock:
            if not self._base_clocks:
                return self._wal_events
            if self.config.mode == "broadcast":
                return self._base_clocks[0] + self._wal_events
            return sum(self._base_clocks) + self._wal_events

    @property
    def durable(self) -> bool:
        """Whether :meth:`checkpoint` persists to disk."""
        return self._state_dir is not None

    @property
    def state_path(self) -> Path | None:
        """This stream's checkpoint directory (``None`` if in-memory)."""
        if self._state_dir is None:
            return None
        return self._state_dir / self.name

    # -- write path ----------------------------------------------------------

    def ingest(self, events) -> None:
        """Feed a batch (EventBlock or event iterable) into the stream.

        The batch lands in the write-ahead log before it is dispatched,
        so a worker crash at any point is recoverable by replay; when
        the log exceeds the session's limit, a snapshot barrier trims
        it. No synchronisation barrier otherwise — worker backends keep
        pipelining until the next read.

        Backpressure (both knobs off by default): past
        ``wal_spill_events`` in-memory events, closed WAL segments
        spill to disk under the stream's state directory (bounding
        parent memory without a barrier); past
        ``wal_hard_limit_events`` *total* WAL events the batch is
        rejected atomically — nothing appended, nothing dispatched —
        with :class:`~repro.errors.ServiceOverloadedError` carrying a
        retry-after hint. A checkpoint trims the log and ingestion
        resumes.
        """
        if not isinstance(events, (list, EventBlock)):
            events = list(events)
        if not len(events):
            return
        with self._lock:
            if self._closed:
                raise ServiceError(f"stream {self.name!r} is closed")
            if (
                self._wal_hard_limit is not None
                and self._wal_events + len(events) > self._wal_hard_limit
            ):
                raise ServiceOverloadedError(
                    f"stream {self.name!r} write-ahead log is at "
                    f"{self._wal_events} events; accepting "
                    f"{len(events)} more would exceed the hard limit "
                    f"of {self._wal_hard_limit} — checkpoint (or wait "
                    "for the durability cadence) and retry",
                    retry_after=self.retry_after_hint,
                )
            self._wal.append(events)
            self._wal_events += len(events)
            self._wal_memory_events += len(events)
            try:
                self.executor.ingest(events)
            except (WorkerCrashError, PeerLostError) as exc:
                self._recover(exc)
            if (
                self._wal_spill is not None
                and self._wal_memory_events >= self._wal_spill
            ):
                self._spill_or_trim()
            if self._wal_events >= self._wal_limit:
                self.snapshot()

    # -- read path -----------------------------------------------------------

    def _read(self, fn):
        """Run one executor read under the lock, recovering crashes."""
        with self._lock:
            try:
                return fn(self.executor)
            except (WorkerCrashError, PeerLostError) as exc:
                self._recover(exc)
                return fn(self.executor)

    # -- crash recovery ------------------------------------------------------

    def _recover(self, exc) -> None:
        """Restore a crashed shard and replay its lost sub-stream.

        Recovery runs under the session's :attr:`supervisor`: each
        attempt restarts whichever shard failed last (replay itself can
        surface another silent death — its first send is how one is
        discovered — which continues the same incident against the new
        failure), with policy-driven backoff between attempts. When the
        incident's attempt limit or the shard's lifetime failure budget
        is exhausted, the supervisor escalates with
        :class:`~repro.errors.ShardUnrecoverableError` — determinism
        included: a fixed fault sequence escalates at a fixed point.
        """
        if not self.auto_restart:
            raise exc

        def attempt(error) -> None:
            index = getattr(error, "shard_index", None)
            if not isinstance(index, int) or not (
                0 <= index < self.config.shards
            ):
                # No shard to restart (e.g. a lost service-level peer):
                # nothing this session can rebuild — re-raise so the
                # supervisor burns the incident down and escalates.
                raise error
            self.executor.restart_shard(index)
            self._replay()

        self.supervisor.recover(exc, attempt)

    def _wal_entries(self) -> list:
        """Every live WAL entry, oldest first: spilled segments, then
        the in-memory tail (segments are read back from disk only
        here, on the recovery path).

        Segments are CRC-framed; one that fails validation is
        quarantined — along with every later segment, because replay
        order cannot skip a gap — and recovery degrades to best
        effort for the events it held (see :meth:`_replay`).
        """
        entries: list = []
        survivors: list[tuple[Path, int]] = []
        corrupt_from: int | None = None
        for index, (path, count) in enumerate(self._segments):
            if corrupt_from is not None:
                break
            try:
                entries.extend(wal_from_wire(path.read_bytes()))
                survivors.append((path, count))
            except (OSError, ProtocolError) as exc:
                corrupt_from = index
                directory = self.state_path
                assert directory is not None
                _quarantine_file(directory, path, str(exc))
        if corrupt_from is not None:
            for path, count in self._segments[corrupt_from:]:
                self._quarantined_segments += 1
                self._quarantined_events += count
                self._spilled_events -= count
                self._wal_events -= count
                if path.is_file():
                    directory = self.state_path
                    assert directory is not None
                    _quarantine_file(
                        directory,
                        path,
                        "follows a corrupt WAL segment (replay cannot "
                        "skip a gap)",
                    )
            self._segments = survivors
        entries.extend(self._wal)
        return entries

    def _routed_wal(self) -> list[list]:
        """The WAL as per-shard sub-streams (the executor's routing)."""
        shards = self.config.shards
        entries = self._wal_entries()
        if self.config.mode == "broadcast":
            return [list(entries) for _ in range(shards)]
        routed: list[list] = [[] for _ in range(shards)]
        for entry in entries:
            if isinstance(entry, EventBlock):
                buckets = partition_block(entry, shards, self.executor.shard_key)
            else:
                buckets = partition_events(entry, shards, self.executor.shard_key)
            for index, bucket in enumerate(buckets):
                routed[index].append(bucket)
        return routed

    def _replay(self) -> None:
        """Clock-delta replay: re-feed exactly what each shard lost.

        ``shard_times()`` is a barrier, so each clock reflects every
        event that reached its shard (including events a dead worker
        buffered but never processed — those never advance the clock,
        which is why the clock is the ground truth, not the dispatch
        history). A shard whose clock matches its expected position
        (base clock at the last snapshot + its routed share of the WAL)
        replays nothing; the restored shard replays the missing suffix
        of its own sub-stream via the executor's direct-delivery path.
        """
        times = self.executor.shard_times()
        routed = self._routed_wal()
        expected = [
            self._base_clocks[index] + sum(len(entry) for entry in routed[index])
            for index in range(self.config.shards)
        ]
        for index in range(self.config.shards):
            behind = expected[index] - times[index]
            if behind <= 0:
                continue
            for entry in _tail_entries(routed[index], behind):
                self.executor.ingest_shard(index, entry)
        # Barrier again so a replay failure surfaces here (and is
        # retried by _recover), not on some later unrelated query.
        final = self.executor.shard_times()
        for index in range(self.config.shards):
            if final[index] == expected[index]:
                continue
            if self._quarantined_segments and final[index] > expected[index]:
                # Quarantined segments took events out of the WAL that
                # surviving shards already processed: their clocks run
                # ahead of what the degraded log can account for. The
                # CorruptStateWarning already flagged the gap.
                continue
            raise ServiceError(
                f"replay did not converge for shard {index} of "
                f"stream {self.name!r}: clock {final[index]} != "
                f"expected {expected[index]}"
            )

    # -- WAL spill ----------------------------------------------------------

    @property
    def _wal_dir(self) -> Path | None:
        path = self.state_path
        return None if path is None else path / "wal"

    def _spill_or_trim(self) -> None:
        """Get in-memory WAL events under the spill mark.

        Durable sessions whose base snapshot matches their persisted
        checkpoint spill the closed entries to an on-disk segment (no
        barrier, replayable at restore); otherwise the trim falls back
        to a checkpoint (durable, re-aligns) or a plain snapshot
        barrier (in-memory sessions have no disk to spill to).
        """
        if self.durable and self._base_aligned:
            self._spill()
        elif self.durable:
            self.checkpoint()
        else:
            self.snapshot()

    def _spill(self) -> None:
        """Close the in-memory WAL entries into one on-disk segment."""
        if not self._wal:
            return
        directory = self._wal_dir
        assert directory is not None
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / _WAL_SEGMENT.format(
            generation=self._generation, seq=self._spill_seq
        )
        count = self._wal_memory_events
        atomic_write_bytes(path, wal_to_wire(self._wal))
        self._spill_seq += 1
        self._segments.append((path, count))
        self._spilled_events += count
        self._wal = []
        self._wal_memory_events = 0

    def _drop_segments(self) -> None:
        """Delete every tracked spilled segment (WAL was trimmed)."""
        for path, _count in self._segments:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self._segments = []
        self._spilled_events = 0
        self._spill_seq = 0

    def wal_stats(self) -> dict:
        """Write-ahead-log accounting: totals, memory share, segments.

        The observable contract of the bounded WAL: ``memory_events``
        stays under ``spill_events`` (when spilling is on) no matter
        how long checkpoints are withheld, and ``events`` never
        exceeds ``hard_limit_events``.
        """
        with self._lock:
            return {
                "events": self._wal_events,
                "memory_events": self._wal_memory_events,
                "spilled_events": self._spilled_events,
                "segments": len(self._segments),
                "limit_events": self._wal_limit,
                "spill_events": self._wal_spill,
                "hard_limit_events": self._wal_hard_limit,
                "aligned": self._base_aligned,
                "quarantined_segments": self._quarantined_segments,
                "quarantined_events": self._quarantined_events,
            }

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """Barrier-checkpoint every shard in memory; trim the WAL.

        The states are retained by the executor as the restart point
        for crashed shards, and the write-ahead log is reset to this
        cut — the session only ever needs to replay *since the last
        snapshot*.
        """
        with self._lock:
            try:
                states = self.executor.snapshot()
            except (WorkerCrashError, PeerLostError) as exc:
                self._recover(exc)
                states = self.executor.snapshot()
            self._wal.clear()
            self._wal_events = 0
            self._wal_memory_events = 0
            self._drop_segments()
            self._base_clocks = [int(state["time"]) for state in states]
            # The new base is an in-memory cut until the next persist.
            self._base_aligned = False
            return states

    def checkpoint(self) -> list[dict]:
        """Snapshot, then persist durably when the session has a state dir."""
        with self._lock:
            states = self.snapshot()
            if self._state_dir is not None:
                self._persist(states)
            return states

    def _persist(self, states: list[dict]) -> None:
        """Commit one checkpoint generation atomically.

        Every file of generation *g* is written (each one atomically),
        including the generation's own ``manifest-g<g>.json``, before
        ``manifest.json`` — the commit point — is atomically replaced
        to name them. Generation *g-1* is **retained**: a checkpoint
        that later fails validation (disk corruption discovered at
        restore) must never have destroyed its predecessor, so only
        generations *g-2* and older are pruned. A crash at any step
        leaves a manifest whose named files all exist and are
        internally CRC-checked, so restore always sees at least one
        complete, consistent checkpoint.
        """
        directory = self.state_path
        assert directory is not None
        directory.mkdir(parents=True, exist_ok=True)
        generation = self._generation + 1
        shard_files = [
            f"shard-{index:04d}-g{generation:06d}.ckpt"
            for index in range(len(states))
        ]
        for fname, state in zip(shard_files, states):
            atomic_write_bytes(directory / fname, state_to_wire(state))
        local_file = None
        if self.local is not None:
            local_file = f"local-g{generation:06d}.json"
            counts = self.local.vertex_estimates()
            payload = json.dumps(
                {
                    "vertices": [
                        [_encode_vertex(vertex), value]
                        for vertex, value in sorted(
                            counts.items(), key=lambda item: repr(item[0])
                        )
                    ]
                }
            )
            atomic_write_text(directory / local_file, payload)
        manifest = {
            "format": MANIFEST_FORMAT,
            "name": self.name,
            "generation": generation,
            "clock": self.clock,
            "config": self.config.to_dict(),
            "options": self.options.to_dict(),
            "shard_files": shard_files,
            "local_file": local_file,
        }
        manifest_text = json.dumps(manifest, indent=2, sort_keys=True)
        atomic_write_text(
            directory / _MANIFEST_FILE.format(generation=generation),
            manifest_text,
        )
        atomic_write_text(directory / "manifest.json", manifest_text)
        self._generation = generation
        # The freshly committed manifest is exactly the snapshot that
        # cut the WAL, so spilled segments may build on it again.
        self._base_aligned = True
        # Retention: keep this generation and the previous one; prune
        # g-2 and older, plus anything unrecognised.
        keep = {"manifest.json", "wal", "quarantine"}
        for stale in directory.iterdir():
            if stale.name in keep:
                continue
            found = _GENERATION_FILE_RE.match(stale.name)
            if found is not None and int(found.group(1)) in (
                generation,
                generation - 1,
            ):
                continue
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        # Every WAL segment predates the manifest commit (checkpoint
        # trims the log first), so the spill directory sweeps clean.
        wal_dir = directory / "wal"
        if wal_dir.is_dir():
            for stale in wal_dir.iterdir():
                try:
                    stale.unlink()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass

    @classmethod
    def restore(
        cls,
        name: str,
        state_dir: str | Path,
        *,
        options: ExecutorOptions | None = None,
        auto_restart: bool = True,
        wal_limit_events: int = DEFAULT_WAL_LIMIT,
        wal_spill_events: int | None = None,
        wal_hard_limit_events: int | None = None,
        recovery_policy: RecoveryPolicy | None = None,
    ) -> "StreamSession":
        """Rebuild a session from its latest durable checkpoint.

        The continuation is bit-identical: replicas are restored from
        their CRC-checked shard states, local accumulators reload, and
        the stream picks up exactly where the checkpoint barrier cut
        it. ``options`` defaults to the options recorded in the
        manifest, so a process-backend stream resumes as one.

        WAL segments spilled on top of this checkpoint's generation are
        replayed in order through the ordinary ingest path and then
        folded into a fresh checkpoint, so events that outlived their
        process only in the spill directory are not lost; segments from
        any other generation are stale and deleted.

        Every file is validated before it is trusted: a manifest that
        does not parse, a shard file that fails its framed-format
        checks, or a local-count file that does not decode is
        quarantined (renamed into ``quarantine/`` with a
        :class:`~repro.errors.CorruptStateWarning`) and restore falls
        back to the newest older generation that validates in full —
        generations N and N-1 are both on disk by construction. Only
        when no generation validates does restore raise.
        """
        directory = Path(state_dir) / name
        candidates = _manifest_candidates(directory)
        if not candidates:
            raise ServiceError(
                f"no checkpoint for stream {name!r} under {state_dir}"
            )
        failures: list[str] = []
        tried: set[int] = set()
        for manifest_path in candidates:
            if not manifest_path.is_file():
                continue  # quarantined by an earlier candidate's failure
            try:
                manifest, config, manifest_options, states, local_counts = (
                    cls._load_checkpoint(directory, manifest_path, tried)
                )
            except _SkippedGeneration:
                continue
            except ServiceError as exc:
                failures.append(str(exc))
                continue
            session = cls(
                name,
                config,
                options=options if options is not None else manifest_options,
                state_dir=state_dir,
                auto_restart=auto_restart,
                wal_limit_events=wal_limit_events,
                wal_spill_events=wal_spill_events,
                wal_hard_limit_events=wal_hard_limit_events,
                recovery_policy=recovery_policy,
                _states=states,
                _generation=int(manifest["generation"]),
                _local_counts=local_counts,
            )
            session._replay_spilled(int(manifest["generation"]))
            return session
        raise ServiceError(
            f"no checkpoint generation for stream {name!r} under "
            f"{state_dir} validates: " + "; ".join(failures)
        )

    @classmethod
    def _load_checkpoint(
        cls, directory: Path, manifest_path: Path, tried: set[int]
    ) -> tuple:
        """Read and fully validate one checkpoint generation.

        Returns ``(manifest, config, options, states, local_counts)``
        or raises :class:`ServiceError` naming what failed — after
        quarantining the corrupt file so the next restore attempt (or
        the fallback to an older generation) does not trip over it
        again. Raises :class:`_SkippedGeneration` when this manifest
        names a generation an earlier candidate already covered.
        """
        try:
            manifest = json.loads(manifest_path.read_text("utf-8"))
            if not isinstance(manifest, dict):
                raise ValueError("manifest is not a JSON object")
        except (OSError, UnicodeDecodeError, ValueError) as exc:
            _quarantine_file(directory, manifest_path, f"unreadable manifest: {exc}")
            raise ServiceError(
                f"{manifest_path.name} does not parse: {exc}"
            ) from exc
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ServiceError(
                f"{manifest_path.name} has format "
                f"{manifest.get('format')!r}; this build reads "
                f"{MANIFEST_FORMAT}"
            )
        generation = manifest.get("generation")
        if isinstance(generation, int):
            if generation in tried:
                raise _SkippedGeneration()
            tried.add(generation)
        try:
            config = StreamConfig.from_dict(manifest["config"])
            manifest_options = ExecutorOptions.from_dict(manifest["options"])
            shard_files = manifest["shard_files"]
            if not isinstance(shard_files, list) or not all(
                isinstance(fname, str) for fname in shard_files
            ):
                raise ValueError("shard_files is not a list of names")
        except (
            KeyError,
            TypeError,
            ValueError,
            ConfigurationError,
        ) as exc:
            _quarantine_file(
                directory, manifest_path, f"malformed manifest: {exc}"
            )
            raise ServiceError(
                f"{manifest_path.name} is malformed: {exc}"
            ) from exc
        states = []
        for fname in shard_files:
            shard_path = directory / fname
            if not shard_path.is_file():
                raise ServiceError(
                    f"{manifest_path.name} names missing shard file {fname}"
                )
            try:
                states.append(state_from_wire(shard_path.read_bytes()))
            except Exception as exc:
                _quarantine_file(directory, shard_path, str(exc))
                raise ServiceError(
                    f"shard file {fname} fails validation: {exc}"
                ) from exc
        local_counts = None
        if manifest.get("local_file"):
            local_path = directory / manifest["local_file"]
            if not local_path.is_file():
                raise ServiceError(
                    f"{manifest_path.name} names missing local-count "
                    f"file {manifest['local_file']}"
                )
            try:
                payload = json.loads(local_path.read_text("utf-8"))
                local_counts = {
                    _decode_vertex(pair): float(value)
                    for pair, value in payload["vertices"]
                }
            except Exception as exc:
                _quarantine_file(directory, local_path, str(exc))
                raise ServiceError(
                    f"local-count file {manifest['local_file']} fails "
                    f"validation: {exc}"
                ) from exc
        return manifest, config, manifest_options, states, local_counts

    def _replay_spilled(self, generation: int) -> None:
        """Fold restore-time WAL segments back into the stream.

        Segments whose base generation matches the restored checkpoint
        are replayed oldest-first through :meth:`ingest` (so routing,
        recovery, and bit-identity all hold by construction), then a
        fresh checkpoint commits the recovered cut and sweeps the spill
        directory. Spill and the hard limit are suspended during the
        replay — these events were already accepted once. Idempotent
        under crashes: the segments outlive the replay until the final
        checkpoint's manifest commit, so a re-restore replays them
        again from the same base.

        Each segment is CRC-validated before a single event of it is
        replayed; a segment that fails is quarantined together with
        every later segment (replay cannot skip a gap), and the valid
        prefix is still folded in.
        """
        wal_dir = self._wal_dir
        if wal_dir is None or not wal_dir.is_dir():
            return
        matched: list[tuple[int, Path]] = []
        stale: list[Path] = []
        for child in wal_dir.iterdir():
            found = _WAL_SEGMENT_RE.match(child.name)
            if found is None:
                continue
            if int(found.group(1)) == generation:
                matched.append((int(found.group(2)), child))
            else:
                stale.append(child)
        for path in stale:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        if not matched:
            return
        directory = self.state_path
        assert directory is not None
        ordered = sorted(matched)
        decoded: list[list] = []
        for index, (_seq, path) in enumerate(ordered):
            try:
                decoded.append(wal_from_wire(path.read_bytes()))
            except (OSError, ProtocolError) as exc:
                _quarantine_file(directory, path, str(exc))
                self._quarantined_segments += 1
                for _later_seq, later in ordered[index + 1:]:
                    self._quarantined_segments += 1
                    _quarantine_file(
                        directory,
                        later,
                        "follows a corrupt WAL segment (replay cannot "
                        "skip a gap)",
                    )
                break
        if not decoded:
            return
        with self._lock:
            spill, self._wal_spill = self._wal_spill, None
            hard, self._wal_hard_limit = self._wal_hard_limit, None
            try:
                for entries in decoded:
                    for entry in entries:
                        self.ingest(entry)
            finally:
                self._wal_spill = spill
                self._wal_hard_limit = hard
            self.checkpoint()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop accepting events and tear the executor down (idempotent).

        Worker backends harvest final states into the parent replicas,
        so estimates stay readable after close; a worker that died
        before delivering its final state is tolerated — the last
        checkpoint already covers it.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self.executor.close()
            except WorkerCrashError:
                pass

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"StreamSession(name={self.name!r}, "
            f"algorithm={self.config.algorithm!r}, "
            f"pattern={self.config.pattern!r}, shards={self.config.shards}, "
            f"clock={self.clock})"
        )


@dataclass(frozen=True)
class ServiceConfig:
    """How the counting service runs (not what any stream counts).

    ``executor`` is the default execution backend for streams created
    without explicit options; ``checkpoint_interval`` drives the
    durability thread (``None`` disables it — streams still checkpoint
    on WAL pressure and at shutdown).

    The robustness knobs (all off by default): ``wal_spill_events`` /
    ``wal_hard_limit_events`` bound every tenant's write-ahead log
    (spill to disk, then shed load with typed overload errors);
    ``recovery_policy`` governs supervised crash recovery;
    ``heartbeat_timeout`` drops ingest connections that go fully
    silent; ``auth_key`` requires HMAC-signed frames from every
    client; ``max_frame_bytes`` caps how large a single wire frame's
    declared payload may be (enforced on header bytes, before any
    allocation — ``None`` uses
    :data:`~repro.streams.transport.DEFAULT_MAX_FRAME_BYTES`).
    """

    listen: str = "127.0.0.1:0"
    state_dir: str | Path | None = None
    checkpoint_interval: float | None = 30.0
    executor: ExecutorOptions = field(default_factory=ExecutorOptions)
    wal_limit_events: int = DEFAULT_WAL_LIMIT
    auto_restart: bool = True
    wal_spill_events: int | None = None
    wal_hard_limit_events: int | None = None
    recovery_policy: RecoveryPolicy | None = None
    heartbeat_timeout: float | None = None
    auth_key: str | None = None
    max_frame_bytes: int | None = None

    def validate(self) -> None:
        if self.checkpoint_interval is not None and not self.checkpoint_interval > 0:
            raise ConfigurationError(
                "checkpoint_interval must be > 0 (or None to disable)"
            )
        if self.wal_limit_events < 1:
            raise ConfigurationError("wal_limit_events must be >= 1")
        if self.wal_spill_events is not None and self.wal_spill_events < 1:
            raise ConfigurationError(
                "wal_spill_events must be >= 1 (or None)"
            )
        if (
            self.wal_hard_limit_events is not None
            and self.wal_hard_limit_events < 1
        ):
            raise ConfigurationError(
                "wal_hard_limit_events must be >= 1 (or None)"
            )
        if (
            self.heartbeat_timeout is not None
            and not self.heartbeat_timeout > 0
        ):
            raise ConfigurationError(
                "heartbeat_timeout must be > 0 (or None)"
            )
        if self.max_frame_bytes is not None and self.max_frame_bytes < 4096:
            raise ConfigurationError(
                f"max_frame_bytes must be >= 4096 (or None), got "
                f"{self.max_frame_bytes}"
            )
        if self.recovery_policy is not None:
            self.recovery_policy.validate()
        self.executor.validate()

    def with_changes(self, **kwargs) -> "ServiceConfig":
        return replace(self, **kwargs)


class CountingService:
    """The multi-tenant registry + operations loop.

    Construction restores every tenant found under ``state_dir`` (any
    subdirectory with a committed manifest), so a killed service comes
    back serving the same streams at their last checkpoint cut.
    :meth:`start` brings up the TCP ingestion front and the durability
    thread; :meth:`stop` checkpoints everything and tears down.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.config.validate()
        self._lock = threading.Lock()
        self._sessions: dict[str, StreamSession] = {}
        self._server = None
        self._durability: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._stopped = False
        if self.config.state_dir is not None:
            root = Path(self.config.state_dir)
            root.mkdir(parents=True, exist_ok=True)
            for child in sorted(root.iterdir()):
                if not _manifest_candidates(child):
                    continue
                self._sessions[child.name] = StreamSession.restore(
                    child.name,
                    root,
                    auto_restart=self.config.auto_restart,
                    wal_limit_events=self.config.wal_limit_events,
                    wal_spill_events=self.config.wal_spill_events,
                    wal_hard_limit_events=self.config.wal_hard_limit_events,
                    recovery_policy=self.config.recovery_policy,
                )

    # -- registry ------------------------------------------------------------

    def streams(self) -> tuple[str, ...]:
        """The registered stream names, sorted."""
        with self._lock:
            return tuple(sorted(self._sessions))

    def create_stream(
        self,
        name: str,
        config: StreamConfig,
        *,
        options: ExecutorOptions | None = None,
    ) -> StreamSession:
        """Register and start a new named stream."""
        _validate_stream_name(name)
        with self._lock:
            if self._stopped:
                raise ServiceError("the service is stopped")
            if name in self._sessions:
                raise ServiceError(f"stream {name!r} already exists")
            session = StreamSession(
                name,
                config,
                options=options if options is not None else self.config.executor,
                state_dir=self.config.state_dir,
                auto_restart=self.config.auto_restart,
                wal_limit_events=self.config.wal_limit_events,
                wal_spill_events=self.config.wal_spill_events,
                wal_hard_limit_events=self.config.wal_hard_limit_events,
                recovery_policy=self.config.recovery_policy,
            )
            self._sessions[name] = session
            return session

    def get_stream(self, name: str) -> StreamSession:
        """Look a tenant up by name."""
        with self._lock:
            session = self._sessions.get(name)
            known = sorted(self._sessions)
        if session is None:
            raise ServiceError(
                f"no stream named {name!r}; registered: {known}"
            )
        return session

    def _session_list(self) -> list[StreamSession]:
        with self._lock:
            return list(self._sessions.values())

    def checkpoint_all(self) -> dict[str, int]:
        """Checkpoint every tenant; returns name -> clock at the cut."""
        clocks: dict[str, int] = {}
        for session in self._session_list():
            session.checkpoint()
            clocks[session.name] = session.clock
        return clocks

    # -- operations loop -----------------------------------------------------

    @property
    def address(self) -> str | None:
        """The bound ``host:port`` once started."""
        return self._server.address if self._server is not None else None

    def start(self) -> str:
        """Start the ingestion front + durability loop; return the address."""
        from repro.streams.ingest import StreamIngestServer

        if self._server is not None:
            raise ServiceError("the service is already started")
        if self._stopped:
            raise ServiceError("the service is stopped")
        self._server = StreamIngestServer(self, self.config.listen)
        address = self._server.start()
        if self.config.checkpoint_interval is not None:
            self._durability = threading.Thread(
                target=self._durability_loop,
                name="repro-service-durability",
                daemon=True,
            )
            self._durability.start()
        return address

    def _durability_loop(self) -> None:
        # One failed cadence (e.g. a crash recovery in progress on some
        # stream) must not kill durability for every later cadence.
        while not self._stop_event.wait(self.config.checkpoint_interval):
            try:
                self.checkpoint_all()
            except Exception:  # pragma: no cover - defensive
                traceback.print_exc()

    def serve_forever(self) -> None:
        """Block until :meth:`stop` is called (or KeyboardInterrupt)."""
        self._stop_event.wait()

    def stop(self) -> None:
        """Checkpoint every tenant, stop serving, tear down (idempotent)."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
        self._stop_event.set()
        if self._durability is not None:
            self._durability.join(timeout=30)
            self._durability = None
        if self._server is not None:
            self._server.stop()
            self._server = None
        for session in self._session_list():
            try:
                session.checkpoint()
            except Exception:  # pragma: no cover - defensive
                traceback.print_exc()
            session.close()

    def __enter__(self) -> "CountingService":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"CountingService(streams={list(self.streams())}, "
            f"address={self.address!r})"
        )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.streams.service``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.streams.service",
        description=(
            "Run a long-lived subgraph-counting service: clients create "
            "named streams, push edge events over TCP, and query "
            "estimates while ingestion continues. Control frames are "
            "RSX2-encoded and schema-validated (no pickle on the "
            "wire); pass --auth-key to additionally require "
            "HMAC-signed frames."
        ),
    )
    parser.add_argument(
        "--listen",
        default="127.0.0.1:0",
        help="bind address as host:port (port 0 picks a free port)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        help=(
            "directory for durable checkpoints; streams found here are "
            "restored at boot"
        ),
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=30.0,
        help="seconds between durability checkpoints (0 disables)",
    )
    parser.add_argument(
        "--backend",
        default="serial",
        choices=("serial", "process"),
        help="default executor backend for newly created streams",
    )
    parser.add_argument(
        "--wal-spill",
        type=int,
        default=None,
        metavar="EVENTS",
        help=(
            "spill the in-memory write-ahead log to disk segments past "
            "this many events (default: no spilling)"
        ),
    )
    parser.add_argument(
        "--wal-hard-limit",
        type=int,
        default=None,
        metavar="EVENTS",
        help=(
            "reject ingestion with a typed overload error once the "
            "write-ahead log holds this many events (default: no limit)"
        ),
    )
    parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "drop client connections that send no frame (not even a "
            "heartbeat) for this long (default: wait forever)"
        ),
    )
    parser.add_argument(
        "--auth-key",
        default=None,
        metavar="KEY",
        help=(
            "shared secret enabling HMAC-SHA256 frame signing; clients "
            "must present the same key (default: unsigned)"
        ),
    )
    parser.add_argument(
        "--max-frame-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help=(
            "cap on a single wire frame's declared payload, enforced "
            "before allocation (default: 64 MiB)"
        ),
    )
    args = parser.parse_args(argv)
    config = ServiceConfig(
        listen=args.listen,
        state_dir=args.state_dir,
        checkpoint_interval=args.checkpoint_interval or None,
        executor=ExecutorOptions(backend=args.backend),
        wal_spill_events=args.wal_spill,
        wal_hard_limit_events=args.wal_hard_limit,
        heartbeat_timeout=args.heartbeat_timeout,
        auth_key=args.auth_key,
        max_frame_bytes=args.max_frame_bytes,
    )
    service = CountingService(config)
    address = service.start()
    print(f"counting service listening on {address}", flush=True)
    restored = service.streams()
    if restored:
        print(f"restored streams: {', '.join(restored)}", flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
