"""Incremental arrival-time aggregates for the learned-weight fast path.

The temporal state features of Eq. (20)–(21) aggregate, per position in
an instance's (arrival-ordered) edge list, the arrival times over all
instances the arriving edge completes. For the wedge every instance has
exactly one *other* edge — an edge incident to one of the arriving
edge's endpoints — so the per-position aggregate over instances is a
per-vertex aggregate over incident sampled edges:

    max-position:  max over e ∈ N(u) ∪ N(v) of time(e)
    avg-position:  (Σ_{e ∋ u} time(e) + Σ_{e ∋ v} time(e)) / (d(u) + d(v))

:class:`ArrivalTimeTracker` maintains exactly those per-vertex
aggregates incrementally, the :class:`~repro.patterns.paths.WedgeDeltaTracker`
pattern applied to arrival times: the samplers notify it at every
sampled-graph mutation, and the learned-weight serving path reads the
pair aggregates in O(1) instead of walking both neighbourhoods.

Arrival times are integers, so the running sums are *exact* (Python
ints) and the aggregates are order-independent — a tracker rebuilt by
replaying the surviving sample (checkpoint restore) is bit-identical to
one maintained through the full history, unlike the float light-sums of
the wedge-delta tracker. Bit-identity with the numpy reference
(``per_position.mean(axis=0)``) holds as long as the float64 column sum
is exact, i.e. Σ times < 2^53 — unreachable for any realistic stream.
"""

from __future__ import annotations

from repro.graph.edges import Edge, Vertex

__all__ = ["ArrivalTimeTracker"]


class ArrivalTimeTracker:
    """Per-vertex arrival-time sum/max over incident sampled edges."""

    __slots__ = ("_times", "_sums", "_maxes")

    def __init__(self) -> None:
        #: vertex -> {other endpoint: arrival time} of incident edges.
        self._times: dict[Vertex, dict[Vertex, int]] = {}
        #: vertex -> Σ arrival times over incident edges (exact int).
        self._sums: dict[Vertex, int] = {}
        #: vertex -> max arrival time over incident edges.
        self._maxes: dict[Vertex, int] = {}

    def __len__(self) -> int:
        """Number of (vertex, incident edge) slots tracked (= 2·edges)."""
        return sum(len(d) for d in self._times.values())

    def add(self, edge: Edge, time: int) -> None:
        """Track a newly sampled edge with its arrival time."""
        u, v = edge
        times = self._times
        sums = self._sums
        maxes = self._maxes
        for a, b in ((u, v), (v, u)):
            d = times.get(a)
            if d is None:
                times[a] = {b: time}
                sums[a] = time
                maxes[a] = time
            else:
                d[b] = time
                sums[a] += time
                if time > maxes[a]:
                    maxes[a] = time

    def remove(self, edge: Edge) -> None:
        """Stop tracking an edge leaving the sampled graph."""
        u, v = edge
        times = self._times
        sums = self._sums
        maxes = self._maxes
        for a, b in ((u, v), (v, u)):
            d = times[a]
            t = d.pop(b)
            if not d:
                del times[a]
                del sums[a]
                del maxes[a]
            else:
                sums[a] -= t
                if t == maxes[a]:
                    # The max departed: recompute over the survivors.
                    # Amortised cheap — evictions are rare relative to
                    # queries, and the scan is a C-level max().
                    maxes[a] = max(d.values())

    def clear(self) -> None:
        """Forget all tracked edges (between trials)."""
        self._times.clear()
        self._sums.clear()
        self._maxes.clear()

    # -- pair queries (the arriving edge {u, v} must not be tracked) ------

    def max_pair(self, u: Vertex, v: Vertex) -> int:
        """max arrival time over edges incident to ``u`` or ``v`` (0 if none)."""
        maxes = self._maxes
        mu = maxes.get(u, 0)
        mv = maxes.get(v, 0)
        return mu if mu >= mv else mv

    def sum_pair(self, u: Vertex, v: Vertex) -> int:
        """Σ arrival times over edges incident to ``u`` plus those to ``v``."""
        sums = self._sums
        return sums.get(u, 0) + sums.get(v, 0)

    # -- checkpoint support ------------------------------------------------

    def aggregates(self) -> dict[Vertex, tuple[int, int]]:
        """Per-vertex ``(sum, max)`` snapshot (checkpoint serialisation)."""
        sums = self._sums
        return {v: (sums[v], m) for v, m in self._maxes.items()}

    def load_aggregates(
        self, aggregates: dict[Vertex, tuple[int, int]]
    ) -> None:
        """Overwrite the sum/max aggregates (checkpoint restore).

        The per-edge time map must already have been rebuilt (replaying
        the restored sample through :meth:`add`); integer arithmetic
        makes the replayed aggregates exact, so this overwrite is a
        belt-and-braces identity in practice.
        """
        for v, (s, m) in aggregates.items():
            self._sums[v] = int(s)
            self._maxes[v] = int(m)
