"""Exact incremental subgraph counting (ground truth).

:class:`ExactCounter` maintains |J(t)| — the exact number of pattern
instances in the evolving graph G(t) — by applying each stream event
incrementally: an insertion adds the number of instances the new edge
completes, a deletion subtracts the number of instances the edge was
part of. Per-event cost is the local enumeration cost γ(deg), far below
recounting, which makes exact rewards (Eq. 24) and ARE/MARE affordable
during training and evaluation.
"""

from __future__ import annotations

from repro.graph.adjacency import DynamicAdjacency
from repro.graph.stream import INSERT, EdgeEvent, EdgeStream
from repro.patterns.base import Pattern
from repro.patterns.matching import get_pattern

__all__ = ["ExactCounter", "exact_count_stream"]


class ExactCounter:
    """Maintains the exact count of one pattern over a dynamic graph."""

    def __init__(self, pattern: str | Pattern) -> None:
        self.pattern = get_pattern(pattern)
        self.graph = DynamicAdjacency()
        self._count = 0

    @property
    def count(self) -> int:
        """|J(t)|: the exact number of pattern instances alive now."""
        return self._count

    def process(self, event: EdgeEvent) -> int:
        """Apply one stream event; return the signed count delta."""
        edge = event.edge
        u, v = edge
        if event.op == INSERT:
            delta = self.pattern.count_completed(self.graph, u, v)
            self.graph.add_edge_canonical(edge)
            self._count += delta
            return delta
        self.graph.remove_edge_canonical(edge)
        delta = self.pattern.count_completed(self.graph, u, v)
        self._count -= delta
        return -delta

    def process_stream(self, stream: EdgeStream) -> int:
        """Apply a whole stream; return the final count."""
        process = self.process
        for event in stream:
            process(event)
        return self._count

    def reset(self) -> None:
        """Forget all edges and reset the count to zero."""
        self.graph.clear()
        self._count = 0


def exact_count_stream(
    stream: EdgeStream, pattern: str | Pattern
) -> list[int]:
    """Return the exact count after every event of ``stream``.

    Convenience used by the metrics to build ground-truth traces.
    """
    counter = ExactCounter(pattern)
    trace = []
    for event in stream:
        counter.process(event)
        trace.append(counter.count)
    return trace
