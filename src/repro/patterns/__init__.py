"""Subgraph patterns, local enumeration, and exact counting."""

from repro.patterns.base import Instance, Pattern
from repro.patterns.cliques import FourClique, KClique, Triangle
from repro.patterns.exact import ExactCounter, exact_count_stream
from repro.patterns.matching import brute_force_count, get_pattern, pattern_names
from repro.patterns.paths import ThreePath, Wedge
from repro.patterns.temporal import ArrivalTimeTracker

__all__ = [
    "Instance",
    "Pattern",
    "Triangle",
    "FourClique",
    "KClique",
    "Wedge",
    "ThreePath",
    "ArrivalTimeTracker",
    "ExactCounter",
    "exact_count_stream",
    "brute_force_count",
    "get_pattern",
    "pattern_names",
]
