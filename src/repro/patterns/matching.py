"""Pattern registry and brute-force oracles.

:func:`get_pattern` resolves pattern names used throughout configs and
the CLI. The brute-force counters here are *oracles* for tests and the
exact counter's cross-checks — quadratic or worse, never used on hot
paths.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import ConfigurationError
from repro.graph.adjacency import DynamicAdjacency
from repro.patterns.base import Pattern
from repro.patterns.cliques import FourClique, KClique, Triangle
from repro.patterns.paths import ThreePath, Wedge

__all__ = [
    "get_pattern",
    "pattern_names",
    "brute_force_count",
]

_REGISTRY: dict[str, Pattern] = {
    "triangle": Triangle(),
    "wedge": Wedge(),
    "4-clique": FourClique(),
    "3-path": ThreePath(),
}

_ALIASES = {
    "triangles": "triangle",
    "3-clique": "triangle",
    "wedges": "wedge",
    "path2": "wedge",
    "four-clique": "4-clique",
    "4clique": "4-clique",
    "path3": "3-path",
    "three-path": "3-path",
}


def pattern_names() -> list[str]:
    """Return the canonical names of the registered patterns."""
    return sorted(_REGISTRY)


def get_pattern(name: str | Pattern) -> Pattern:
    """Resolve a pattern by name (or pass an instance through).

    Names ``"k-clique"`` for any integer k >= 3 resolve to
    :class:`~repro.patterns.cliques.KClique`.
    """
    if isinstance(name, Pattern):
        return name
    key = _ALIASES.get(name.lower(), name.lower())
    if key in _REGISTRY:
        return _REGISTRY[key]
    if key.endswith("-clique"):
        prefix = key.removesuffix("-clique")
        if prefix.isdigit() and int(prefix) >= 3:
            return KClique(int(prefix))
    raise ConfigurationError(
        f"unknown pattern {name!r}; known: {pattern_names()} or 'k-clique'"
    )


def brute_force_count(adj: DynamicAdjacency, pattern: str | Pattern) -> int:
    """Count instances of ``pattern`` in ``adj`` by brute force (oracle).

    Supports the three registered patterns and general k-cliques.
    """
    pat = get_pattern(pattern)
    if pat.name == "wedge":
        return sum(
            adj.degree(v) * (adj.degree(v) - 1) // 2 for v in adj.vertices()
        )
    if pat.name == "triangle":
        count = 0
        for u, v in adj.edges():
            count += len(adj.common_neighbors(u, v))
        return count // 3
    if pat.name == "3-path":
        # Classic identity: paths of length 3 =
        # Σ_{(u,v) ∈ E} (d(u)-1)(d(v)-1) − 3 · triangles
        # (each triangle is counted 3 times by the edge sum but is a
        # cycle, not a simple path).
        edge_sum = sum(
            (adj.degree(u) - 1) * (adj.degree(v) - 1)
            for u, v in adj.edges()
        )
        return edge_sum - 3 * brute_force_count(adj, "triangle")
    # k-cliques (including 4-clique): enumerate vertex subsets of the
    # smallest-degree endpoint's neighbourhood.
    k = getattr(pat, "k", 4 if pat.name == "4-clique" else None)
    if k is None:  # pragma: no cover - defensive
        raise ConfigurationError(f"no brute-force oracle for {pat.name}")
    vertices = sorted(adj.vertices(), key=repr)
    count = 0
    for subset in combinations(vertices, k):
        if all(
            adj.has_edge(a, b) for a, b in combinations(subset, 2)
        ):
            count += 1
    return count
