"""Path patterns: the wedge (length-2 path) and the 3-path.

An edge {u, v} completes one wedge per existing neighbour of u other
than v (wedge centred at u) and one per existing neighbour of v other
than u (centred at v), so the count is deg(u) + deg(v) on the adjacency
without the new edge.

The 3-path (a simple path on 4 distinct vertices, 3 edges) extends the
pattern family beyond the paper's triangle/wedge/4-clique — WSD's
estimator (Theorem 4) is pattern-agnostic, so adding a pattern only
requires its local enumeration.
"""

from __future__ import annotations

from collections.abc import Iterator
from heapq import heappop, heappush

from repro.graph.adjacency import DynamicAdjacency
from repro.graph.edges import Edge, Vertex, canonical_edge
from repro.patterns.base import Instance, Pattern

__all__ = ["Wedge", "ThreePath", "WedgeDeltaTracker"]


class Wedge(Pattern):
    """The length-2 path ("wedge"), |H| = 2 (Tables II/VIII)."""

    name = "wedge"
    num_edges = 2

    def instances_completed(
        self, adj: DynamicAdjacency, u: Vertex, v: Vertex
    ) -> Iterator[Instance]:
        for w in adj.neighbors_view(u):
            if w != v:
                yield (canonical_edge(u, w),)
        for w in adj.neighbors_view(v):
            if w != u:
                yield (canonical_edge(v, w),)

    def count_completed(
        self, adj: DynamicAdjacency, u: Vertex, v: Vertex
    ) -> int:
        count = adj.degree(u) + adj.degree(v)
        # The edge {u, v} itself must not be in adj, but u and v may
        # already be adjacent through stale callers; guard in tests, not
        # here, to keep the hot path branch-free.
        return count


class WedgeDeltaTracker:
    """O(1) wedge-delta arithmetic for the rank-threshold samplers.

    A wedge event on edge {u, v} contributes, per neighbour w of a
    centre c ∈ {u, v}, one term 1 / P[r(e) > τ] for the sampled edge
    e = {c, w}. Under the paper's inverse-uniform ranks that
    probability is ``min(1, w(e)/τ)``, so the per-centre sum splits
    into *heavy* incident edges (weight ≥ τ, term exactly 1) and
    *light* ones (term τ/w(e)):

        Σ_w 1/p({c, w})  =  H(c) + τ · L(c),
        H(c) = #{heavy incident sampled edges},
        L(c) = Σ_light 1 / w(e).

    Both aggregates are maintained incrementally per vertex, so the
    wedge estimator needs no per-neighbour loop at all. The threshold
    of these samplers is non-decreasing over a run, so an edge can only
    migrate heavy → light; a min-heap of heavy edges keyed by weight
    pops exactly the edges crossing each raise — every sampled edge
    migrates at most once per admission, keeping maintenance amortised
    O(1) per event. (A threshold *decrease* — possible only through
    manual state surgery, never through stream processing — triggers a
    full rebuild.)

    The sum ``H + τ·L`` groups float terms differently from the
    per-instance loop it replaces, so estimates agree with the scalar
    path only up to float associativity; they are exactly reproducible
    against *this* path, which both the per-event and the batched
    ingestion routes use.
    """

    __slots__ = ("heavy_count", "light_inv", "threshold",
                 "_entries", "_heavy_heap", "_token")

    def __init__(self) -> None:
        #: Per-vertex count of heavy incident sampled edges.
        self.heavy_count: dict[Vertex, int] = {}
        #: Per-vertex Σ 1/w(e) over light incident sampled edges.
        self.light_inv: dict[Vertex, float] = {}
        self.threshold = 0.0
        #: edge → (weight, admission token, is_heavy).
        self._entries: dict[Edge, tuple[float, int, bool]] = {}
        #: Heavy edges as (weight, token, edge); entries go stale on
        #: removal and are skipped (token check) when popped.
        self._heavy_heap: list[tuple[float, int, Edge]] = []
        self._token = 0

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, edge: Edge, weight: float) -> None:
        """Track a newly sampled edge of known weight."""
        u, v = edge
        token = self._token = self._token + 1
        threshold = self.threshold
        if threshold <= 0.0 or weight >= threshold:
            self._entries[edge] = (weight, token, True)
            hc = self.heavy_count
            hc[u] = hc.get(u, 0) + 1
            hc[v] = hc.get(v, 0) + 1
            heappush(self._heavy_heap, (weight, token, edge))
        else:
            self._entries[edge] = (weight, token, False)
            inv = 1.0 / weight
            li = self.light_inv
            li[u] = li.get(u, 0.0) + inv
            li[v] = li.get(v, 0.0) + inv

    def remove(self, edge: Edge) -> None:
        """Stop tracking an edge leaving the sampled graph."""
        weight, _, heavy = self._entries.pop(edge)
        u, v = edge
        if heavy:
            hc = self.heavy_count
            for c in (u, v):
                left = hc[c] - 1
                if left:
                    hc[c] = left
                else:
                    del hc[c]
            # The heap entry goes stale; compact when stale entries
            # dominate so long streams stay bounded.
            if len(self._heavy_heap) > 2 * len(self._entries) + 64:
                self._compact()
        else:
            inv = 1.0 / weight
            li = self.light_inv
            for c in (u, v):
                left = li[c] - inv
                if left == 0.0:
                    del li[c]
                else:
                    li[c] = left

    def raise_threshold(self, value: float) -> None:
        """τ ← value (≥ current τ); migrate newly light edges."""
        self.threshold = value
        heap = self._heavy_heap
        if not heap or heap[0][0] >= value:
            return
        entries = self._entries
        hc = self.heavy_count
        li = self.light_inv
        while heap and heap[0][0] < value:
            weight, token, edge = heappop(heap)
            entry = entries.get(edge)
            if entry is None or entry[1] != token:
                continue  # stale: the edge left the sample (or re-entered)
            entries[edge] = (weight, token, False)
            inv = 1.0 / weight
            for c in edge:
                left = hc[c] - 1
                if left:
                    hc[c] = left
                else:
                    del hc[c]
                li[c] = li.get(c, 0.0) + inv

    def set_threshold(self, value: float) -> None:
        """Set τ to an arbitrary value (rebuilds on a decrease)."""
        if value >= self.threshold:
            self.raise_threshold(value)
            return
        entries = list(self._entries.items())
        self.heavy_count.clear()
        self.light_inv.clear()
        self._entries.clear()
        self._heavy_heap.clear()
        self.threshold = value
        for edge, (weight, _, _) in entries:
            self.add(edge, weight)

    def _compact(self) -> None:
        entries = self._entries
        self._heavy_heap = sorted(
            (weight, token, edge)
            for edge, (weight, token, heavy) in entries.items()
            if heavy
        )

    def delta(self, u: Vertex, v: Vertex) -> float:
        """Σ 1/p over the wedges completed (or destroyed) by {u, v}.

        Evaluated against the current sampled graph, which must not
        contain the edge {u, v} itself (the samplers guarantee this:
        insertions estimate before sampling, deletions remove first).
        """
        hc = self.heavy_count
        li = self.light_inv
        return (
            hc.get(u, 0) + hc.get(v, 0)
            + self.threshold * (li.get(u, 0.0) + li.get(v, 0.0))
        )


class ThreePath(Pattern):
    """The simple path on 4 distinct vertices (|H| = 3 edges).

    An arriving edge {u, v} completes a 3-path in two roles:

    * as the **middle** edge: w — u — v — x, one instance per pair
      (w, x) with w ∈ N(u)\\{v}, x ∈ N(v)\\{u}, w ≠ x;
    * as an **end** edge: v — u — w — x (and symmetrically u — v — w — x),
      one instance per neighbour w of u and neighbour x of w outside
      {u, v}.

    All four vertices must be distinct (simple path).
    """

    name = "3-path"
    num_edges = 3

    def instances_completed(
        self, adj: DynamicAdjacency, u: Vertex, v: Vertex
    ) -> Iterator[Instance]:
        # Middle role: w - u - v - x.
        for w in adj.neighbors_view(u):
            if w == v:
                continue
            for x in adj.neighbors_view(v):
                if x == u or x == w:
                    continue
                yield (canonical_edge(w, u), canonical_edge(v, x))
        # End roles: v - a - w - x with the new edge at one end; cover
        # both orientations by swapping (u, v).
        for end, inner in ((u, v), (v, u)):
            # new edge is (inner, end); path: inner - end - w - x.
            for w in adj.neighbors_view(end):
                if w == inner:
                    continue
                for x in adj.neighbors_view(w):
                    if x == end or x == inner or x == w:
                        continue
                    yield (canonical_edge(end, w), canonical_edge(w, x))
