"""Path patterns: the wedge (length-2 path) and the 3-path.

An edge {u, v} completes one wedge per existing neighbour of u other
than v (wedge centred at u) and one per existing neighbour of v other
than u (centred at v), so the count is deg(u) + deg(v) on the adjacency
without the new edge.

The 3-path (a simple path on 4 distinct vertices, 3 edges) extends the
pattern family beyond the paper's triangle/wedge/4-clique — WSD's
estimator (Theorem 4) is pattern-agnostic, so adding a pattern only
requires its local enumeration.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graph.adjacency import DynamicAdjacency
from repro.graph.edges import Vertex, canonical_edge
from repro.patterns.base import Instance, Pattern

__all__ = ["Wedge", "ThreePath"]


class Wedge(Pattern):
    """The length-2 path ("wedge"), |H| = 2 (Tables II/VIII)."""

    name = "wedge"
    num_edges = 2

    def instances_completed(
        self, adj: DynamicAdjacency, u: Vertex, v: Vertex
    ) -> Iterator[Instance]:
        for w in adj.neighbors_view(u):
            if w != v:
                yield (canonical_edge(u, w),)
        for w in adj.neighbors_view(v):
            if w != u:
                yield (canonical_edge(v, w),)

    def count_completed(
        self, adj: DynamicAdjacency, u: Vertex, v: Vertex
    ) -> int:
        count = adj.degree(u) + adj.degree(v)
        # The edge {u, v} itself must not be in adj, but u and v may
        # already be adjacent through stale callers; guard in tests, not
        # here, to keep the hot path branch-free.
        return count


class ThreePath(Pattern):
    """The simple path on 4 distinct vertices (|H| = 3 edges).

    An arriving edge {u, v} completes a 3-path in two roles:

    * as the **middle** edge: w — u — v — x, one instance per pair
      (w, x) with w ∈ N(u)\\{v}, x ∈ N(v)\\{u}, w ≠ x;
    * as an **end** edge: v — u — w — x (and symmetrically u — v — w — x),
      one instance per neighbour w of u and neighbour x of w outside
      {u, v}.

    All four vertices must be distinct (simple path).
    """

    name = "3-path"
    num_edges = 3

    def instances_completed(
        self, adj: DynamicAdjacency, u: Vertex, v: Vertex
    ) -> Iterator[Instance]:
        # Middle role: w - u - v - x.
        for w in adj.neighbors_view(u):
            if w == v:
                continue
            for x in adj.neighbors_view(v):
                if x == u or x == w:
                    continue
                yield (canonical_edge(w, u), canonical_edge(v, x))
        # End roles: v - a - w - x with the new edge at one end; cover
        # both orientations by swapping (u, v).
        for end, inner in ((u, v), (v, u)):
            # new edge is (inner, end); path: inner - end - w - x.
            for w in adj.neighbors_view(end):
                if w == inner:
                    continue
                for x in adj.neighbors_view(w):
                    if x == end or x == inner or x == w:
                        continue
                    yield (canonical_edge(end, w), canonical_edge(w, x))
