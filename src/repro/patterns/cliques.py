"""Clique patterns: triangle, 4-clique, and the general k-clique.

An edge {u, v} completes a k-clique for every (k-2)-subset of the
common neighbours of u and v that is itself a clique. For k = 3 this is
just every common neighbour; for k = 4 every *adjacent pair* of common
neighbours — matching the per-event costs γ(M) discussed in Theorem 3.

Candidate vertices are ordered by their interned dense ids
(:meth:`~repro.graph.adjacency.DynamicAdjacency.sort_by_id`) so each
instance is emitted exactly once. The previous scheme sorted by
``key=repr``, which allocated a string per vertex per event and could
disagree with identity for vertex types whose ``repr`` ordering differs
from equality; interned ids are allocation-free and identity-consistent
by construction.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import ConfigurationError
from repro.graph.adjacency import DynamicAdjacency
from repro.graph.edges import Vertex, canonical_edge
from repro.patterns.base import Instance, Pattern

__all__ = ["Triangle", "FourClique", "KClique"]


class Triangle(Pattern):
    """The 3-clique: the paper's primary pattern."""

    name = "triangle"
    num_edges = 3

    def instances_completed(
        self, adj: DynamicAdjacency, u: Vertex, v: Vertex
    ) -> Iterator[Instance]:
        # Deliberately the plain set intersection: the batched kernel
        # loops inline ``nu & nv`` and rely on iterating the *same*
        # order here (identical set contents constructed the same way
        # iterate identically), so per-event and batched estimates
        # stay bit-for-bit equal for every rank family.
        for w in adj.common_neighbors(u, v):
            yield (canonical_edge(u, w), canonical_edge(v, w))

    def count_completed(
        self, adj: DynamicAdjacency, u: Vertex, v: Vertex
    ) -> int:
        # count_common routes through the arena slabs (searchsorted
        # intersection) when both endpoints hold one; exact-int either
        # way, so sampler trajectories cannot depend on the routing.
        return adj.count_common(u, v)


class FourClique(Pattern):
    """The 4-clique: the paper's "dense subgraph pattern" (Table VII/X)."""

    name = "4-clique"
    num_edges = 6

    def instances_completed(
        self, adj: DynamicAdjacency, u: Vertex, v: Vertex
    ) -> Iterator[Instance]:
        # The arena helper intersects the sorted slabs where both
        # endpoints are dense (None → plain set path); sort_by_id then
        # normalises the order either way, so emission order — and
        # therefore downstream float accumulation — is identical no
        # matter which path computed the set.
        common = adj.arena_common_neighbors(u, v)
        if common is None:
            common = adj.common_neighbors(u, v)
        if len(common) < 2:
            return
        ordered = adj.sort_by_id(common)
        for i, w in enumerate(ordered):
            w_neighbours = adj.neighbors_view(w)
            for x in ordered[i + 1:]:
                if x in w_neighbours:
                    yield (
                        canonical_edge(u, w),
                        canonical_edge(u, x),
                        canonical_edge(v, w),
                        canonical_edge(v, x),
                        canonical_edge(w, x),
                    )

    def count_completed(
        self, adj: DynamicAdjacency, u: Vertex, v: Vertex
    ) -> int:
        # Count-only fast path: adjacent pairs among the common
        # neighbours, via C-level intersections (each pair seen twice).
        # The u-v intersection itself reuses the sorted slabs when the
        # endpoints are dense.
        common = adj.arena_common_neighbors(u, v)
        if common is None:
            common = adj.common_neighbors(u, v)
        if len(common) < 2:
            return 0
        neighbors_view = adj.neighbors_view
        count = 0
        for w in common:
            count += len(neighbors_view(w) & common)
        return count // 2


class KClique(Pattern):
    """The general k-clique pattern for k >= 3.

    Provided as the natural extension beyond the paper's three patterns
    (its estimator, Theorem 4, is pattern-agnostic). Enumeration extends
    a growing clique through the common neighbourhood, so the cost is
    output-sensitive.
    """

    def __init__(self, k: int) -> None:
        if k < 3:
            raise ConfigurationError(f"k-clique needs k >= 3, got {k}")
        self.k = k
        self.name = f"{k}-clique"
        self.num_edges = k * (k - 1) // 2

    def instances_completed(
        self, adj: DynamicAdjacency, u: Vertex, v: Vertex
    ) -> Iterator[Instance]:
        need = self.k - 2
        raw_common = adj.arena_common_neighbors(u, v)
        if raw_common is None:
            raw_common = adj.common_neighbors(u, v)
        if len(raw_common) < need:
            return
        common = adj.sort_by_id(raw_common)

        def extend(
            chosen: list[Vertex], start: int
        ) -> Iterator[tuple[Vertex, ...]]:
            if len(chosen) == need:
                yield tuple(chosen)
                return
            for i in range(start, len(common)):
                candidate = common[i]
                neighbours = adj.neighbors_view(candidate)
                if all(c in neighbours for c in chosen):
                    chosen.append(candidate)
                    yield from extend(chosen, i + 1)
                    chosen.pop()

        for extension in extend([], 0):
            members = [u, v, *extension]
            edges = []
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    edge = canonical_edge(a, b)
                    if edge != canonical_edge(u, v):
                        edges.append(edge)
            yield tuple(edges)

    def count_completed(
        self, adj: DynamicAdjacency, u: Vertex, v: Vertex
    ) -> int:
        # Count-only fast path: same search, no edge-tuple construction.
        need = self.k - 2
        raw_common = adj.arena_common_neighbors(u, v)
        if raw_common is None:
            raw_common = adj.common_neighbors(u, v)
        if len(raw_common) < need:
            return 0
        common = adj.sort_by_id(raw_common)
        neighbors_view = adj.neighbors_view

        def count_extensions(chosen: list[Vertex], start: int) -> int:
            if len(chosen) == need:
                return 1
            total = 0
            for i in range(start, len(common)):
                candidate = common[i]
                neighbours = neighbors_view(candidate)
                if all(c in neighbours for c in chosen):
                    chosen.append(candidate)
                    total += count_extensions(chosen, i + 1)
                    chosen.pop()
            return total

        return count_extensions([], 0)
