"""Subgraph pattern interface.

A :class:`Pattern` describes a small connected subgraph H (triangle,
wedge, 4-clique, ...) and knows how to enumerate, *locally*, the
instances of H that a single edge completes against a given adjacency
structure. That local enumeration is the only pattern-specific primitive
the whole system needs:

* Algorithm 2 uses it against the **reservoir** adjacency to update the
  estimator;
* the exact counter uses it against the **full** adjacency to maintain
  ground truth;
* the weight functions use the instance count |H(e)| and the MDP state
  uses both the count and the instances' edges.

An *instance* is reported as the tuple of its edges **other than** the
triggering edge, in canonical form — exactly the set J \\ e_t that the
estimators multiply over.
"""

from __future__ import annotations

import abc
from collections.abc import Iterator

from repro.graph.adjacency import DynamicAdjacency
from repro.graph.edges import Edge, Vertex

__all__ = ["Pattern", "Instance"]

#: The edges of one pattern instance, excluding the triggering edge.
Instance = tuple[Edge, ...]


class Pattern(abc.ABC):
    """A subgraph pattern H with |H| = :attr:`num_edges` edges."""

    #: Human-readable pattern name ("triangle", "wedge", "4-clique", ...).
    name: str
    #: |H|: the number of edges of the pattern.
    num_edges: int

    @abc.abstractmethod
    def instances_completed(
        self, adj: DynamicAdjacency, u: Vertex, v: Vertex
    ) -> Iterator[Instance]:
        """Yield instances of H completed by edge ``{u, v}`` against ``adj``.

        ``adj`` must *not* contain the edge ``{u, v}`` itself (the
        callers guarantee this: Algorithm 2 updates the estimate before
        the reservoir, and the exact counter adds/removes the edge on
        the appropriate side of the count). Each yielded instance is the
        tuple of the |H| - 1 edges other than ``{u, v}``; every such
        edge is guaranteed to be present in ``adj``.
        """

    def count_completed(
        self, adj: DynamicAdjacency, u: Vertex, v: Vertex
    ) -> int:
        """Return the number of instances completed by edge ``{u, v}``.

        Subclasses override this when counting is cheaper than
        enumerating (e.g. wedges count degrees directly).
        """
        return sum(1 for _ in self.instances_completed(adj, u, v))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(name={self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Pattern) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)
