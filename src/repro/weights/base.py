"""Weight-function protocol for weighted sampling (Section III/IV).

WSD asks, for every inserted edge, "how important is this edge?" — the
answer is the weight W(e, R) that drives its sampling rank. A
:class:`WeightFunction` receives a :class:`WeightContext` snapshot of
everything observable under the streaming constraints (the new edge, the
sampled graph, the instances the edge completes there, and the arrival
times of sampled edges) and returns a strictly positive weight.

The heuristic weights (Section III) and the learned RL policy
(Section IV) both implement this protocol, so WSD is oblivious to how
weights are produced.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.graph.adjacency import DynamicAdjacency
from repro.graph.edges import Edge
from repro.patterns.base import Instance, Pattern

__all__ = ["WeightContext", "WeightFunction"]


@dataclass(slots=True)
class WeightContext:
    """Everything a weight function may observe when an edge arrives.

    Attributes:
        edge: the arriving edge e = (u, v), canonical form.
        time: the stream clock t at this insertion (1-based).
        instances: the pattern instances completed by ``edge`` against
            the sampled graph; each instance is the tuple of its *other*
            edges (all currently sampled). This is H_k of Eq. (19).
        adjacency: the sampled graph R (read-only) — provides
            |N_k(u)|, |N_k(v)| of Eq. (19).
        edge_times: arrival time of each sampled edge (used by the
            temporal features of Eq. (20)–(21)).
        pattern: the target pattern H.
        instance_times: optional prefetched arrival times, one sorted
            row per entry of ``instances`` (the *other* edges' times,
            ascending, without the arriving edge's own time). The
            samplers fill this while they walk the instances for the
            estimator, so feature extraction
            (:func:`repro.weights.features.raw_state_vector`) does not
            enumerate the instance edges a second time. ``None`` means
            "not prefetched" — consumers fall back to ``edge_times``.
    """

    edge: Edge
    time: int
    instances: Sequence[Instance]
    adjacency: DynamicAdjacency
    edge_times: Mapping[Edge, int]
    pattern: Pattern
    instance_times: Sequence[Sequence[int]] | None = None


class WeightFunction(abc.ABC):
    """Maps a :class:`WeightContext` to a strictly positive weight."""

    #: Short name used in experiment tables ("heuristic", "learned", ...).
    name: str = "weight"

    #: Whether this weight function needs the full :class:`WeightContext`.
    #: Building the context materialises the instance list and is the
    #: single largest avoidable allocation on the samplers' insertion
    #: path, so functions that only need cheap summaries (instance
    #: count, degrees) set this to ``False`` and implement
    #: :meth:`light_weight`; the samplers then skip context construction
    #: entirely. Defaults to ``True`` (safe for subclasses that only
    #: implement ``__call__``).
    needs_context: bool = True

    #: Whether this weight function serves from the kernels' *block*
    #: path: per-event state summaries (instance count, degrees,
    #: per-position temporal aggregates) assembled inside the batched
    #: mega-loop, evaluated via :meth:`state_weight` — no
    #: :class:`WeightContext`, no instance re-enumeration. Functions
    #: that set this must implement :meth:`state_weight` and
    #: :meth:`weights_for_block` and produce weights bit-identical to
    #: ``__call__`` on the equivalent context.
    block_serving: bool = False

    @abc.abstractmethod
    def __call__(self, ctx: WeightContext) -> float:
        """Return W(e, R) > 0 for the arriving edge."""

    def bind_pattern(self, pattern: Pattern) -> None:
        """One-time construction hook: the samplers announce H here.

        Lets weight functions validate pattern-dependent invariants
        (e.g. the policy's state dimension against ``|H| + 3``) once
        instead of per event. Default: no-op.
        """

    def state_weight(
        self,
        num_instances: int,
        deg_u: int,
        deg_v: int,
        time: int,
        positions: tuple | None,
    ) -> float:
        """Block-path analogue of :meth:`light_weight` with state features.

        ``positions`` carries the raw per-position temporal aggregates
        v_1 .. v_|H| of Eq. (20)–(21) (``None`` when ``num_instances``
        is zero — the reference state leaves them at 0). Must return
        the same value ``__call__`` would for the equivalent context.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares block_serving=True but does "
            "not implement state_weight()"
        )

    def weights_for_block(self, states, times):
        """Vectorised serving over a raw ``(n, |H|+3)`` state matrix.

        The batched analogue of :meth:`light_weight`: given the raw
        state rows of ``n`` insertion events and their stream clocks,
        return the ``n`` weights as a float64 array — row k
        bit-identical to what :meth:`state_weight` produced for event
        k. Used to audit a recorded trajectory block-wise; the live
        kernels call :meth:`state_weight` per event because each weight
        feeds back into the sampled graph the next state is read from.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares block_serving=True but does "
            "not implement weights_for_block()"
        )

    def light_weight(
        self,
        num_instances: int,
        adjacency: DynamicAdjacency,
        u: object,
        v: object,
    ) -> float:
        """Context-free fast path: weight from cheap per-event summaries.

        Called by the samplers instead of ``__call__`` when
        :attr:`needs_context` is ``False``. ``num_instances`` is
        |H(e)| — the number of instances the arriving edge ``(u, v)``
        completes against the sampled graph ``adjacency``. Must return
        the same value ``__call__`` would for the equivalent context.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares needs_context=False but does "
            "not implement light_weight()"
        )

    def reset(self) -> None:
        """Clear any per-stream state (called between trials)."""
