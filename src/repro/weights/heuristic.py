"""Heuristic weight functions (Section III / V-A).

* :class:`GPSHeuristicWeight` — the paper's WSD-H weight,
  W(e, R) = 9·|H(e)| + 1, taken from GPS [Ahmed et al.]: edges that
  complete more pattern instances against the current reservoir are
  deemed more important.
* :class:`UniformWeight` — W(e, R) = 1; turns WSD into an (unweighted)
  priority sampler, useful as a control.
* :class:`DegreeWeight` — W(e, R) = deg_R(u) + deg_R(v) + 1; a natural
  alternative heuristic (the "celebrity edge" intuition of the paper's
  introduction) provided for ablations.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.weights.base import WeightContext, WeightFunction

__all__ = ["GPSHeuristicWeight", "UniformWeight", "DegreeWeight"]


class GPSHeuristicWeight(WeightFunction):
    """W(e, R) = ``slope`` · |H(e)| + ``offset`` (defaults: 9, 1)."""

    name = "heuristic"
    needs_context = False

    def __init__(self, slope: float = 9.0, offset: float = 1.0) -> None:
        if offset <= 0.0:
            raise ConfigurationError(
                f"offset must be positive to keep weights > 0, got {offset}"
            )
        if slope < 0.0:
            raise ConfigurationError(f"slope must be >= 0, got {slope}")
        self.slope = slope
        self.offset = offset

    def __call__(self, ctx: WeightContext) -> float:
        return self.slope * len(ctx.instances) + self.offset

    def light_weight(self, num_instances, adjacency, u, v) -> float:
        return self.slope * num_instances + self.offset


class UniformWeight(WeightFunction):
    """W(e, R) = 1: every edge equally important."""

    name = "uniform"
    needs_context = False

    def __call__(self, ctx: WeightContext) -> float:
        return 1.0

    def light_weight(self, num_instances, adjacency, u, v) -> float:
        return 1.0


class DegreeWeight(WeightFunction):
    """W(e, R) = deg_R(u) + deg_R(v) + ``offset``."""

    name = "degree"
    needs_context = False

    def __init__(self, offset: float = 1.0) -> None:
        if offset <= 0.0:
            raise ConfigurationError(
                f"offset must be positive to keep weights > 0, got {offset}"
            )
        self.offset = offset

    def __call__(self, ctx: WeightContext) -> float:
        u, v = ctx.edge
        return (
            ctx.adjacency.degree(u) + ctx.adjacency.degree(v) + self.offset
        )

    def light_weight(self, num_instances, adjacency, u, v) -> float:
        return adjacency.degree(u) + adjacency.degree(v) + self.offset
