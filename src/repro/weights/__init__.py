"""Weight functions for weighted sampling: heuristic and learned."""

from repro.weights.base import WeightContext, WeightFunction
from repro.weights.features import (
    TEMPORAL_AGGREGATIONS,
    raw_state_vector,
    state_dimension,
    state_vector,
)
from repro.weights.heuristic import DegreeWeight, GPSHeuristicWeight, UniformWeight
from repro.weights.learned import ActionPolicy, LearnedWeight
from repro.weights.registry import (
    build_weight_fn,
    register_weight_spec,
    weight_spec_for,
)

__all__ = [
    "WeightContext",
    "WeightFunction",
    "GPSHeuristicWeight",
    "UniformWeight",
    "DegreeWeight",
    "LearnedWeight",
    "ActionPolicy",
    "state_vector",
    "raw_state_vector",
    "state_dimension",
    "TEMPORAL_AGGREGATIONS",
    "register_weight_spec",
    "build_weight_fn",
    "weight_spec_for",
]
