"""Named weight-spec registry: how weight functions cross the wire.

A remote shard lease must tell the host agent which weight function to
restore the replica with. Shipping a pickled callable would hand code
execution to anyone who can reach the lease socket, so protocol
version 2 ships a **spec** instead: ``(name, params)``, where ``name``
selects a builder registered here and ``params`` is a dict of scalar
keyword arguments. The host resolves the spec through its *own* copy
of this registry — only code already installed on the host can run.

The built-in heuristic weights register themselves below; a custom
:class:`~repro.weights.base.WeightFunction` becomes remotable by
calling :func:`register_weight_spec` on both the coordinator and every
host (typically at import time of the module defining it). WSD-L's
learned weights never need a spec at all: format-v4 checkpoints embed
the frozen actor, and :func:`~repro.samplers.checkpoint.restore_sampler`
rebuilds the weight function from the state itself when none is
supplied — so a lease for a learned-weight shard ships ``spec=None``
and rides the checkpoint path.

Resolution failures are typed: an unknown name raises
:class:`~repro.errors.ProtocolError` (it arrived off the wire, and the
reply to the coordinator says exactly which name the host lacks); an
*unregistered* weight function at lease time raises
:class:`~repro.errors.ConfigurationError` coordinator-side, before any
bytes move.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigurationError, ProtocolError
from repro.weights.heuristic import (
    DegreeWeight,
    GPSHeuristicWeight,
    UniformWeight,
)

__all__ = [
    "register_weight_spec",
    "build_weight_fn",
    "weight_spec_for",
]

#: name -> (builder, describe). ``builder(**params)`` constructs the
#: weight function; ``describe(fn)`` extracts the params dict from an
#: instance (so the coordinator can spec what it holds).
_REGISTRY: dict[str, tuple[Callable, Callable]] = {}

#: Weight-function classes with a registered spec, for instance lookup.
_CLASS_SPECS: dict[type, str] = {}


def register_weight_spec(
    name: str,
    builder: Callable,
    *,
    cls: type | None = None,
    describe: Callable | None = None,
) -> None:
    """Register a named weight-spec builder (idempotent per name).

    Args:
        name: the wire name; must match on coordinator and hosts.
        builder: called with the spec's scalar keyword params to
            construct the weight function host-side.
        cls: the weight-function class this spec describes; instances
            of it become leasable to remote hosts.
        describe: extracts the params dict from an instance
            (default: no params).
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError("weight spec name must be a non-empty str")
    _REGISTRY[name] = (builder, describe or (lambda fn: {}))
    if cls is not None:
        _CLASS_SPECS[cls] = name


def build_weight_fn(name: str, params: dict):
    """Resolve a wire spec to a weight function (host-side).

    Raises :class:`~repro.errors.ProtocolError` for a name this build
    does not register — the typed reply a coordinator gets back when
    it leases against a host missing the custom weight module — and
    for params the builder rejects.
    """
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ProtocolError(
            f"unknown weight spec {name!r}; this host registers "
            f"{sorted(_REGISTRY)} — register the custom weight "
            "function on the host (repro.weights.registry."
            "register_weight_spec) before leasing against it"
        )
    builder, _ = entry
    try:
        return builder(**dict(params))
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(
            f"weight spec {name!r} rejected params {params!r}: {exc}"
        ) from exc


def weight_spec_for(weight_fn) -> tuple[str, dict] | None:
    """The wire spec for a weight function held in hand (coordinator-side).

    ``None`` stays ``None`` (pairing samplers, and WSD-L replicas whose
    checkpoint embeds the actor). A learned weight also maps to
    ``None``: its state rides the checkpoint, never the lease. Any
    other unregistered function is a :class:`ConfigurationError` —
    the remote backend refuses to improvise a serialisation for it.
    """
    if weight_fn is None:
        return None
    # Learned weights are reconstructed from the checkpoint's embedded
    # policy (format v4); the lease deliberately carries no spec.
    name = getattr(type(weight_fn), "name", None)
    if name == "learned":
        return None
    spec_name = _CLASS_SPECS.get(type(weight_fn))
    if spec_name is None:
        raise ConfigurationError(
            f"weight function {type(weight_fn).__name__} has no "
            "registered wire spec; the remote backend ships a named "
            "spec instead of pickled code — register it with "
            "repro.weights.registry.register_weight_spec on the "
            "coordinator and every host, or use a local backend"
        )
    _, describe = _REGISTRY[spec_name]
    params = dict(describe(weight_fn))
    return spec_name, params


# -- built-ins ---------------------------------------------------------------

register_weight_spec(
    "gps-heuristic",
    GPSHeuristicWeight,
    cls=GPSHeuristicWeight,
    describe=lambda fn: {"slope": fn.slope, "offset": fn.offset},
)
register_weight_spec(
    "uniform",
    UniformWeight,
    cls=UniformWeight,
)
register_weight_spec(
    "degree",
    DegreeWeight,
    cls=DegreeWeight,
    describe=lambda fn: {"offset": fn.offset},
)
