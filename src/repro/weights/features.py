"""MDP state features (Section IV-A, Eqs. 19–22).

The state observed when edge e = (u, v) arrives combines:

* **topological** features s^g_k = [|H_k|, |N_k(u)|, |N_k(v)|] — the
  number of pattern instances the edge completes against the sampled
  graph, and the sampled degrees of its endpoints (Eq. 19);
* **temporal** features s^v_k = [v_1, ..., v_|H|] — for each position j
  in the (arrival-ordered) edge list of an instance, the maximum arrival
  time i_j over all completed instances (Eq. 20–21). The Table XIII
  ablation replaces max by average.

The raw state is s_k = [s^g_k, s^v_k] ∈ R^{|H|+3} (Eq. 22). Because raw
counts and time indices are unbounded, :func:`state_vector` optionally
normalises: log1p on counts and division by the current time on arrival
indices — the stabilisation the paper delegates to batch normalisation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.weights.base import WeightContext

__all__ = [
    "state_dimension",
    "raw_state_vector",
    "state_vector",
    "normalize_state",
    "normalize_states",
    "TEMPORAL_AGGREGATIONS",
]

TEMPORAL_AGGREGATIONS = ("max", "avg")


def state_dimension(pattern_num_edges: int) -> int:
    """Dimension of the state vector: |H| + 3 (Eq. 22)."""
    return pattern_num_edges + 3


def raw_state_vector(
    ctx: WeightContext, temporal_aggregation: str = "max"
) -> np.ndarray:
    """Compute the raw (unnormalised) state s_k of Eq. (22).

    ``temporal_aggregation`` selects Eq. (20)'s max (default, WSD-L
    (Max)) or the average variant of the Table XIII ablation
    (WSD-L (Avg)).
    """
    if temporal_aggregation not in TEMPORAL_AGGREGATIONS:
        raise ConfigurationError(
            f"temporal_aggregation must be one of {TEMPORAL_AGGREGATIONS}, "
            f"got {temporal_aggregation!r}"
        )
    u, v = ctx.edge
    h = ctx.pattern.num_edges
    state = np.zeros(h + 3, dtype=np.float64)
    state[0] = len(ctx.instances)
    state[1] = ctx.adjacency.degree(u)
    state[2] = ctx.adjacency.degree(v)

    if ctx.instances:
        # Each instance's ordered arrival times: the other edges' stored
        # arrival times plus the current time for e itself (which is
        # always the latest, i_|H| = t_k).
        per_position = np.zeros((len(ctx.instances), h), dtype=np.float64)
        prefetched = ctx.instance_times
        if prefetched is not None:
            # The sampler already collected each instance's sorted
            # times while walking the instances for the estimator —
            # consume them instead of re-enumerating the edges.
            for row, times in enumerate(prefetched):
                per_position[row, : h - 1] = times
            per_position[:, h - 1] = ctx.time
        else:
            for row, instance in enumerate(ctx.instances):
                times = sorted(ctx.edge_times[e] for e in instance)
                times.append(ctx.time)
                per_position[row, :] = times
        if temporal_aggregation == "max":
            state[3:] = per_position.max(axis=0)
        else:
            state[3:] = per_position.mean(axis=0)
    return state


def state_vector(
    ctx: WeightContext,
    temporal_aggregation: str = "max",
    normalize: bool = True,
) -> np.ndarray:
    """Compute the (optionally normalised) state vector.

    Normalisation maps counts through log1p and arrival indices to
    recency ratios in [0, 1] (divide by the current time), keeping the
    actor's single linear layer numerically well-behaved across stream
    lengths. ``normalize=False`` returns the paper's raw features.
    """
    state = raw_state_vector(ctx, temporal_aggregation)
    if not normalize:
        return state
    return normalize_state(state, ctx.time)


def normalize_state(state: np.ndarray, time: int) -> np.ndarray:
    """Normalise one raw state row (log1p counts, time-ratio positions).

    Shared by :func:`state_vector` and the learned-weight serving
    paths; keeping the arithmetic in one place is what makes the
    context path and the block path bit-identical.
    """
    out = state.copy()
    out[:3] = np.log1p(out[:3])
    if time > 0:
        out[3:] = out[3:] / float(time)
    return out


def normalize_states(states: np.ndarray, times) -> np.ndarray:
    """Normalise a raw ``(n, |H|+3)`` state matrix, one clock per row.

    Row k is bit-identical to ``normalize_state(states[k], times[k])``:
    ``np.log1p`` and the division are elementwise, so the vectorised
    pass performs the same IEEE operations per element as the per-row
    calls.
    """
    states = np.asarray(states, dtype=np.float64)
    if states.ndim != 2 or states.shape[1] < 3:
        raise ConfigurationError(
            f"states must have shape (n, |H|+3), got {states.shape}"
        )
    times = np.asarray(times, dtype=np.float64).reshape(-1)
    if times.shape[0] != states.shape[0]:
        raise ConfigurationError(
            f"got {states.shape[0]} state rows but {times.shape[0]} clocks"
        )
    out = states.copy()
    out[:, :3] = np.log1p(out[:, :3])
    positive = times > 0
    if positive.all():
        out[:, 3:] /= times[:, None]
    elif positive.any():
        out[positive, 3:] /= times[positive, None]
    return out
