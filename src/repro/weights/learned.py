"""WSD-L: the learned weight function (Section IV).

:class:`LearnedWeight` adapts a trained policy — any object exposing
``action(state: np.ndarray) -> float`` — into the
:class:`~repro.weights.base.WeightFunction` protocol WSD consumes. The
policy is typically a :class:`repro.rl.policy.Policy` produced by
:func:`repro.rl.training.train_weight_policy`, mirroring the paper's
deployment: train with DDPG offline, then run the frozen actor (a single
linear layer) per arriving edge.

Two serving modes exist:

* **Context path** (any policy): the sampler materialises a
  :class:`~repro.weights.base.WeightContext` per insertion and
  ``__call__`` builds the state vector from it. This is the legacy
  route and the one RL training uses (it needs the context anyway).
* **Block path** (:class:`~repro.rl.policy.FrozenPolicy` only): the
  sampler kernels assemble the raw state features inline — instance
  counts and temporal aggregates fall out of the estimator walk they
  already do — and call :meth:`state_weight` per event, skipping
  context construction and instance re-enumeration entirely.
  :meth:`weights_for_block` replays a whole recorded state matrix
  through the same arithmetic in one vectorised pass. Both routes are
  bit-identical to ``__call__`` by construction (same normalisation
  ufunc, same fixed-order actor accumulation), which is what lets a
  context-path and a block-path run of the same seed produce the same
  sampling trajectory.
"""

from __future__ import annotations

from math import isfinite
from typing import Protocol

import numpy as np

from repro.errors import PolicyError
from repro.patterns.base import Pattern
from repro.weights.base import WeightContext, WeightFunction
from repro.weights.features import (
    TEMPORAL_AGGREGATIONS,
    normalize_state,
    normalize_states,
    raw_state_vector,
    state_dimension,
)

__all__ = ["LearnedWeight", "ActionPolicy"]


class ActionPolicy(Protocol):
    """Anything that maps a state vector to a scalar action."""

    def action(self, state: np.ndarray) -> float:  # pragma: no cover
        ...


def _serving_grade(policy) -> bool:
    """Whether ``policy`` implements the pinned-order serving protocol.

    Duck-typed on purpose (``repro.weights`` must not import
    ``repro.rl`` at module level — the rl package imports the samplers,
    which import this package): :class:`repro.rl.policy.FrozenPolicy`
    is the canonical implementation.
    """
    return callable(getattr(policy, "action_from_values", None)) and (
        callable(getattr(policy, "actions", None))
    )


class LearnedWeight(WeightFunction):
    """WSD-L: weight each edge with a trained policy's action.

    Args:
        policy: the trained actor (see :class:`repro.rl.policy.Policy`).
        temporal_aggregation: "max" (paper default) or "avg"
            (Table XIII ablation) for the temporal state features.
        normalize: whether to normalise state features (see
            :func:`repro.weights.features.state_vector`). Must match the
            setting used during training.
        minimum_weight: floor applied to the policy output; the actor's
            ``ReLU(Ws+b) + 1`` construction already keeps weights >= 1,
            so the floor only guards against foreign policies.
        block_serving: serve from the kernels' block path (raw state
            summaries, no WeightContext). Requires a
            :class:`~repro.rl.policy.FrozenPolicy` (its pinned
            evaluation order is the bit-identity contract); ``None``
            (default) auto-enables exactly when the policy is one.
            Pass ``False`` to force the legacy context path (the A/B
            benchmarks do, to measure the block path against it).
    """

    name = "learned"

    def __init__(
        self,
        policy: ActionPolicy,
        temporal_aggregation: str = "max",
        normalize: bool = True,
        minimum_weight: float = 1e-6,
        block_serving: bool | None = None,
    ) -> None:
        if temporal_aggregation not in TEMPORAL_AGGREGATIONS:
            raise PolicyError(
                f"temporal_aggregation must be one of {TEMPORAL_AGGREGATIONS}"
            )
        if minimum_weight <= 0.0:
            raise PolicyError("minimum_weight must be positive")
        frozen = _serving_grade(policy)
        if block_serving is None:
            block_serving = frozen
        elif block_serving and not frozen:
            raise PolicyError(
                "block serving requires a FrozenPolicy (its pinned "
                "evaluation order is what makes the block path "
                "bit-identical to the context path); freeze the policy "
                "first or pass block_serving=False"
            )
        self.policy = policy
        self.temporal_aggregation = temporal_aggregation
        self.normalize = normalize
        self.minimum_weight = minimum_weight
        self.block_serving = bool(block_serving)
        # Block-served weights never ask for a context, so the kernels'
        # fast gate opens; the context path still works (and produces
        # bit-identical weights) when a caller forces capture_context.
        self.needs_context = not self.block_serving
        self._expected_dim: int | None = None
        #: Memoised scalar ``np.log1p`` results: the count features are
        #: small repeated integers, so the serving path pays one dict
        #: probe instead of a ufunc dispatch per feature. Values are
        #: the exact floats the vectorised ``np.log1p`` produces.
        self._log1p_cache: dict[float, float] = {}
        #: Optional hook called with ``(raw_state_row, time)`` for every
        #: served event, on both paths — the test harness collects the
        #: rows to audit :meth:`weights_for_block` against the per-event
        #: weights. ``None`` (default) costs one attribute test.
        self.state_observer = None

    # -- construction-time validation -------------------------------------

    def bind_pattern(self, pattern: Pattern) -> None:
        """Validate the policy dimension against ``|H| + 3`` once.

        Called by the sampler kernels at construction, replacing the
        historical per-event shape check in ``__call__``.
        """
        dim = state_dimension(pattern.num_edges)
        policy_dim = getattr(self.policy, "state_dim", None)
        if policy_dim is not None and policy_dim != dim:
            raise PolicyError(
                f"policy dimension {policy_dim} does not match pattern "
                f"dimension {dim} (|H|+3 for {pattern.name!r})"
            )
        self._expected_dim = dim

    # -- context path ------------------------------------------------------

    def __call__(self, ctx: WeightContext) -> float:
        state = raw_state_vector(
            ctx, temporal_aggregation=self.temporal_aggregation
        )
        if self.state_observer is not None:
            self.state_observer(state.copy(), ctx.time)
        if self.normalize:
            state = normalize_state(state, ctx.time)
        weight = float(self.policy.action(state))
        if not isfinite(weight):
            raise PolicyError(f"policy produced non-finite weight {weight!r}")
        return max(weight, self.minimum_weight)

    # -- block path --------------------------------------------------------

    def state_weight(
        self,
        num_instances: int,
        deg_u: int,
        deg_v: int,
        time: int,
        positions: tuple | None,
    ) -> float:
        """Scalar serving from the kernels' inline state summaries.

        ``positions`` holds the raw temporal aggregates v_1 .. v_|H|
        (``None`` ≡ all zero, the ``num_instances == 0`` reference
        state). Arithmetic is pinned to the context path's: scalar
        ``np.log1p`` (memoised — numpy's log1p is self-consistent
        between its scalar and array loops, unlike ``math.log1p``),
        per-element division by the clock, and the frozen actor's
        fixed-order accumulation chain.
        """
        if self.normalize:
            cache = self._log1p_cache
            try:
                a = cache[num_instances]
            except KeyError:
                a = cache[num_instances] = float(np.log1p(num_instances))
            try:
                b = cache[deg_u]
            except KeyError:
                b = cache[deg_u] = float(np.log1p(deg_u))
            try:
                c = cache[deg_v]
            except KeyError:
                c = cache[deg_v] = float(np.log1p(deg_v))
            values = [a, b, c]
            if positions is None:
                values += [0.0] * (self._expected_dim - 3)
            elif time > 0:
                ft = float(time)
                values += [p / ft for p in positions]
            else:
                values += list(positions)
        else:
            values = [float(num_instances), float(deg_u), float(deg_v)]
            if positions is None:
                values += [0.0] * (self._expected_dim - 3)
            else:
                values += list(positions)
        if self.state_observer is not None:
            raw = [float(num_instances), float(deg_u), float(deg_v)]
            raw += (
                [0.0] * (self._expected_dim - 3)
                if positions is None
                else list(positions)
            )
            self.state_observer(np.array(raw, dtype=np.float64), time)
        weight = self.policy.action_from_values(values)
        if not isfinite(weight):
            raise PolicyError(f"policy produced non-finite weight {weight!r}")
        return max(weight, self.minimum_weight)

    def weights_for_block(self, states, times) -> np.ndarray:
        """Vectorised serving over raw state rows (trajectory audit).

        Row k is bit-identical to the :meth:`state_weight` /
        ``__call__`` result for event k: the normalisation is the
        elementwise matrix form of the scalar arithmetic and the frozen
        actor's ``actions`` is the column accumulation of its scalar
        chain.
        """
        states = np.asarray(states, dtype=np.float64)
        if self.normalize:
            states = normalize_states(states, times)
        weights = self.policy.actions(states)
        if not np.all(np.isfinite(weights)):
            raise PolicyError("policy produced non-finite block weights")
        return np.maximum(weights, self.minimum_weight)

    def reset(self) -> None:
        self._log1p_cache.clear()
