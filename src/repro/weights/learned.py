"""WSD-L: the learned weight function (Section IV).

:class:`LearnedWeight` adapts a trained policy — any object exposing
``action(state: np.ndarray) -> float`` — into the
:class:`~repro.weights.base.WeightFunction` protocol WSD consumes. The
policy is typically a :class:`repro.rl.policy.Policy` produced by
:func:`repro.rl.training.train_weight_policy`, mirroring the paper's
deployment: train with DDPG offline, then run the frozen actor (a single
linear layer) per arriving edge.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.errors import PolicyError
from repro.weights.base import WeightContext, WeightFunction
from repro.weights.features import (
    TEMPORAL_AGGREGATIONS,
    state_dimension,
    state_vector,
)

__all__ = ["LearnedWeight", "ActionPolicy"]


class ActionPolicy(Protocol):
    """Anything that maps a state vector to a scalar action."""

    def action(self, state: np.ndarray) -> float:  # pragma: no cover
        ...


class LearnedWeight(WeightFunction):
    """WSD-L: weight each edge with a trained policy's action.

    Args:
        policy: the trained actor (see :class:`repro.rl.policy.Policy`).
        temporal_aggregation: "max" (paper default) or "avg"
            (Table XIII ablation) for the temporal state features.
        normalize: whether to normalise state features (see
            :func:`repro.weights.features.state_vector`). Must match the
            setting used during training.
        minimum_weight: floor applied to the policy output; the actor's
            ``ReLU(Ws+b) + 1`` construction already keeps weights >= 1,
            so the floor only guards against foreign policies.
    """

    name = "learned"

    def __init__(
        self,
        policy: ActionPolicy,
        temporal_aggregation: str = "max",
        normalize: bool = True,
        minimum_weight: float = 1e-6,
    ) -> None:
        if temporal_aggregation not in TEMPORAL_AGGREGATIONS:
            raise PolicyError(
                f"temporal_aggregation must be one of {TEMPORAL_AGGREGATIONS}"
            )
        if minimum_weight <= 0.0:
            raise PolicyError("minimum_weight must be positive")
        self.policy = policy
        self.temporal_aggregation = temporal_aggregation
        self.normalize = normalize
        self.minimum_weight = minimum_weight
        self._expected_dim: int | None = None

    def __call__(self, ctx: WeightContext) -> float:
        state = state_vector(
            ctx,
            temporal_aggregation=self.temporal_aggregation,
            normalize=self.normalize,
        )
        if self._expected_dim is None:
            self._expected_dim = state_dimension(ctx.pattern.num_edges)
        if state.shape[0] != self._expected_dim:
            raise PolicyError(
                f"state dimension {state.shape[0]} does not match pattern "
                f"dimension {self._expected_dim}"
            )
        weight = float(self.policy.action(state))
        if not np.isfinite(weight):
            raise PolicyError(f"policy produced non-finite weight {weight!r}")
        return max(weight, self.minimum_weight)
