"""WSD: RL-enhanced weighted sampling for subgraph counting on fully
dynamic graph streams.

A production-quality reproduction of Wang et al., "Reinforcement
Learning Enhanced Weighted Sampling for Accurate Subgraph Counting on
Fully Dynamic Graph Streams" (ICDE 2023). The public API re-exports the
pieces a typical user needs:

* samplers: :class:`WSD`, :class:`GPS`, :class:`GPSA`, :class:`Triest`,
  :class:`ThinkD`, :class:`WRS`;
* weight functions: :class:`GPSHeuristicWeight` (WSD-H),
  :class:`LearnedWeight` (WSD-L), :class:`UniformWeight`;
* patterns: triangle / wedge / 4-clique via :func:`get_pattern`;
* streams: :class:`EdgeStream`, :func:`build_stream`, scenario builders;
* RL training: :func:`train_weight_policy`, :class:`Policy`;
* metrics: ARE / MARE and :func:`run_with_trace`;
* experiments: the table/figure regenerators under
  :mod:`repro.experiments`.

Quickstart::

    from repro import WSD, GPSHeuristicWeight, build_stream, ExactCounter
    from repro.graph.generators import forest_fire

    edges = forest_fire(2000, p=0.5, rng=0)
    stream = build_stream(edges, "massive", rng=1)
    sampler = WSD("triangle", budget=500, weight_fn=GPSHeuristicWeight(), rng=2)
    estimate = sampler.process_stream(stream)

Performance notes
-----------------

The per-event hot path is ``sampler.process`` →
``pattern.instances_completed`` → ``DynamicAdjacency`` neighbourhood
queries → rank/threshold bookkeeping, and it is engineered so the
library streams events as fast as CPython allows while keeping
estimates bit-identical to the naive implementation under a fixed seed:

* **Batched ingestion** — ``sampler.process_batch(events)`` (which
  ``process_stream`` routes through) pre-draws rank randomness in one
  numpy block, hoists attribute lookups, and skips observer plumbing
  when no observers are registered. The sampler kernels
  (:mod:`repro.samplers.kernel`) additionally inline the
  triangle/wedge estimators and the inverse-uniform rank arithmetic
  for every threshold sampler (WSD, GPS, GPS-A), and ThinkD/Triest
  inline the random-pairing arithmetic the same way.
* **Sharded execution** — a
  :class:`~repro.streams.executor.ShardedStreamExecutor` fans one
  stream out to N sampler replicas (hash-partition for throughput,
  broadcast for variance) and merges partial estimates with the
  combiners in :mod:`repro.estimators.combine`.
* **Vertex interning** — every :class:`~repro.graph.adjacency.DynamicAdjacency`
  assigns dense int ids to vertices on first insertion
  (:class:`~repro.graph.interning.VertexInterner`); the clique
  enumerators order candidates by id instead of allocating ``repr``
  strings, and ``neighbors_view`` / ``iter_neighbors`` expose the
  adjacency sets without per-call copies.
* **Memoized inclusion probabilities** — WSD/GPS/GPS-A cache
  P[r(e) > τ] per sampled edge and invalidate exactly when the
  threshold changes (``WSD.tau_q_generation`` counts those
  transitions); weight functions that only need cheap summaries
  declare ``needs_context = False`` so the ``WeightContext`` snapshot
  (and its instance list) is never materialised — pass
  ``capture_context=True`` to WSD when RL transition capture or the
  local-counting examples need ``last_context``.

Run the throughput microbenchmarks with
``PYTHONPATH=src python benchmarks/perf/run_all.py`` (add ``--quick``
for a seconds-scale smoke pass); results land in
``BENCH_throughput.json`` with speedups against the recorded baseline.
"""

from repro.errors import ReproError
from repro.estimators import (
    absolute_relative_error,
    mean_absolute_relative_error,
    run_with_trace,
)
from repro.graph import DynamicAdjacency, EdgeEvent, EdgeStream, EventBlock
from repro.graph.datasets import load_dataset
from repro.patterns import ExactCounter, get_pattern
from repro.rl import Policy, train_weight_policy
from repro.samplers import GPS, GPSA, WRS, SubgraphCountingSampler, ThinkD, Triest, WSD
from repro.streams import ShardedStreamExecutor, build_stream
from repro.weights import (
    GPSHeuristicWeight,
    LearnedWeight,
    UniformWeight,
    WeightFunction,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "DynamicAdjacency",
    "EdgeEvent",
    "EdgeStream",
    "EventBlock",
    "load_dataset",
    "ExactCounter",
    "get_pattern",
    "Policy",
    "train_weight_policy",
    "SubgraphCountingSampler",
    "WSD",
    "GPS",
    "GPSA",
    "Triest",
    "ThinkD",
    "WRS",
    "build_stream",
    "ShardedStreamExecutor",
    "GPSHeuristicWeight",
    "LearnedWeight",
    "UniformWeight",
    "WeightFunction",
    "absolute_relative_error",
    "mean_absolute_relative_error",
    "run_with_trace",
    "__version__",
]
