"""WSD: RL-enhanced weighted sampling for subgraph counting on fully
dynamic graph streams.

A production-quality reproduction of Wang et al., "Reinforcement
Learning Enhanced Weighted Sampling for Accurate Subgraph Counting on
Fully Dynamic Graph Streams" (ICDE 2023). The public API re-exports the
pieces a typical user needs:

* samplers: :class:`WSD`, :class:`GPS`, :class:`GPSA`, :class:`Triest`,
  :class:`ThinkD`, :class:`WRS`;
* weight functions: :class:`GPSHeuristicWeight` (WSD-H),
  :class:`LearnedWeight` (WSD-L), :class:`UniformWeight`;
* patterns: triangle / wedge / 4-clique via :func:`get_pattern`;
* streams: :class:`EdgeStream`, :func:`build_stream`, scenario builders;
* RL training: :func:`train_weight_policy`, :class:`Policy`;
* metrics: ARE / MARE and :func:`run_with_trace`;
* experiments: the table/figure regenerators under
  :mod:`repro.experiments`.

Quickstart::

    from repro import WSD, GPSHeuristicWeight, build_stream, ExactCounter
    from repro.graph.generators import forest_fire

    edges = forest_fire(2000, p=0.5, rng=0)
    stream = build_stream(edges, "massive", rng=1)
    sampler = WSD("triangle", budget=500, weight_fn=GPSHeuristicWeight(), rng=2)
    estimate = sampler.process_stream(stream)
"""

from repro.errors import ReproError
from repro.estimators import (
    absolute_relative_error,
    mean_absolute_relative_error,
    run_with_trace,
)
from repro.graph import DynamicAdjacency, EdgeEvent, EdgeStream
from repro.graph.datasets import load_dataset
from repro.patterns import ExactCounter, get_pattern
from repro.rl import Policy, train_weight_policy
from repro.samplers import GPS, GPSA, WRS, SubgraphCountingSampler, ThinkD, Triest, WSD
from repro.streams import build_stream
from repro.weights import (
    GPSHeuristicWeight,
    LearnedWeight,
    UniformWeight,
    WeightFunction,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "DynamicAdjacency",
    "EdgeEvent",
    "EdgeStream",
    "load_dataset",
    "ExactCounter",
    "get_pattern",
    "Policy",
    "train_weight_policy",
    "SubgraphCountingSampler",
    "WSD",
    "GPS",
    "GPSA",
    "Triest",
    "ThinkD",
    "WRS",
    "build_stream",
    "GPSHeuristicWeight",
    "LearnedWeight",
    "UniformWeight",
    "WeightFunction",
    "absolute_relative_error",
    "mean_absolute_relative_error",
    "run_with_trace",
    "__version__",
]
