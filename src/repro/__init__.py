"""WSD: RL-enhanced weighted sampling for subgraph counting on fully
dynamic graph streams.

A production-quality reproduction of Wang et al., "Reinforcement
Learning Enhanced Weighted Sampling for Accurate Subgraph Counting on
Fully Dynamic Graph Streams" (ICDE 2023). The public API re-exports the
pieces a typical user needs:

* samplers: :class:`WSD`, :class:`GPS`, :class:`GPSA`, :class:`Triest`,
  :class:`ThinkD`, :class:`WRS`;
* weight functions: :class:`GPSHeuristicWeight` (WSD-H),
  :class:`LearnedWeight` (WSD-L), :class:`UniformWeight`;
* patterns: triangle / wedge / 4-clique via :func:`get_pattern`;
* streams: :class:`EdgeStream`, :func:`build_stream`, scenario builders;
* RL training: :func:`train_weight_policy`, :class:`Policy`;
* metrics: ARE / MARE and :func:`run_with_trace`;
* experiments: the table/figure regenerators under
  :mod:`repro.experiments`.

Quickstart::

    from repro import WSD, GPSHeuristicWeight, build_stream, ExactCounter
    from repro.graph.generators import forest_fire

    edges = forest_fire(2000, p=0.5, rng=0)
    stream = build_stream(edges, "massive", rng=1)
    sampler = WSD("triangle", budget=500, weight_fn=GPSHeuristicWeight(), rng=2)
    estimate = sampler.process_stream(stream)

Performance notes
-----------------

The per-event hot path is ``sampler.process`` →
``pattern.instances_completed`` → ``DynamicAdjacency`` neighbourhood
queries → rank/threshold bookkeeping, and it is engineered so the
library streams events as fast as CPython allows while keeping
estimates bit-identical to the naive implementation under a fixed seed:

* **Batched ingestion** — ``sampler.process_batch(events)`` (which
  ``process_stream`` routes through) pre-draws rank randomness in one
  numpy block, hoists attribute lookups, and skips observer plumbing
  when no observers are registered. The sampler kernels
  (:mod:`repro.samplers.kernel`) additionally inline the
  triangle/wedge estimators and the inverse-uniform rank arithmetic
  for every threshold sampler (WSD, GPS, GPS-A), and ThinkD/Triest
  inline the random-pairing arithmetic the same way.
* **Sharded execution** — a
  :class:`~repro.streams.executor.ShardedStreamExecutor` fans one
  stream out to N sampler replicas (hash-partition for throughput,
  broadcast for variance) and merges partial estimates with the
  combiners in :mod:`repro.estimators.combine`.
* **Vertex interning** — every :class:`~repro.graph.adjacency.DynamicAdjacency`
  assigns dense int ids to vertices on first insertion
  (:class:`~repro.graph.interning.VertexInterner`); the clique
  enumerators order candidates by id instead of allocating ``repr``
  strings, and ``neighbors_view`` / ``iter_neighbors`` expose the
  adjacency sets without per-call copies.
* **Memoized inclusion probabilities** — WSD/GPS/GPS-A cache
  P[r(e) > τ] per sampled edge and invalidate exactly when the
  threshold changes (``WSD.tau_q_generation`` counts those
  transitions); weight functions that only need cheap summaries
  declare ``needs_context = False`` so the ``WeightContext`` snapshot
  (and its instance list) is never materialised — pass
  ``capture_context=True`` to WSD when RL transition capture or the
  local-counting examples need ``last_context``.

Run the throughput microbenchmarks with
``PYTHONPATH=src python benchmarks/perf/run_all.py`` (add ``--quick``
for a seconds-scale smoke pass); results land in
``BENCH_throughput.json`` with speedups against the recorded baseline.
"""

from repro.errors import (
    ConfigurationError,
    OperationTimeoutError,
    PeerLostError,
    ReproError,
    RetryableError,
    ServiceOverloadedError,
    ShardUnrecoverableError,
    WorkerCrashError,
)
from repro.estimators import (
    absolute_relative_error,
    mean_absolute_relative_error,
    run_with_trace,
)
from repro.graph import DynamicAdjacency, EdgeEvent, EdgeStream, EventBlock
from repro.graph.datasets import load_dataset
from repro.patterns import ExactCounter, get_pattern
from repro.rl import Policy, train_weight_policy
from repro.samplers import GPS, GPSA, WRS, SubgraphCountingSampler, ThinkD, Triest, WSD
from repro.streams import ShardedStreamExecutor, build_stream
from repro.streams.executor import ExecutorOptions
from repro.streams.faults import Fault, FaultPlan
from repro.streams.supervisor import RecoveryPolicy
from repro.weights import (
    GPSHeuristicWeight,
    LearnedWeight,
    UniformWeight,
    WeightFunction,
)

__version__ = "1.0.0"

#: Service-tier names resolved lazily: the service/ingest modules
#: double as ``python -m`` CLIs (runpy), and the heavyweight parts of
#: the tier should not tax ``import repro``.
_SERVICE_EXPORTS = (
    "StreamConfig",
    "StreamSession",
    "ServiceConfig",
    "CountingService",
    "ServiceClient",
    "StreamQueries",
    "StreamSnapshot",
)


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        from repro import streams

        return getattr(streams, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def open_stream(
    config=None,
    *,
    name: str = "default",
    executor: ExecutorOptions | None = None,
    state_dir=None,
    **config_fields,
):
    """Open a ready-to-ingest counting stream (the front door).

    Builds a :class:`~repro.streams.service.StreamSession` — the same
    object the hosted service tier runs per tenant — directly in this
    process. Pass a :class:`~repro.streams.service.StreamConfig`, or
    its fields as keyword arguments::

        session = repro.open_stream(algorithm="WSD-H", pattern="triangle",
                                    budget=20_000, seed=7)
        session.ingest(events)
        session.queries.estimate()

    ``(config.seed, name)`` determines the stream's randomness, so a
    session opened with the same config *and the same name* as a hosted
    stream reproduces it bit for bit — that is the parity contract the
    service's tests and smoke gates check. ``executor`` selects the
    backend (:class:`~repro.streams.executor.ExecutorOptions`;
    defaults to serial); ``state_dir`` makes
    :meth:`~repro.streams.service.StreamSession.checkpoint` durable.
    """
    from repro.streams.service import StreamConfig, StreamSession

    if config is None:
        config = StreamConfig(**config_fields)
    elif config_fields:
        raise ConfigurationError(
            "pass either a StreamConfig or its fields as keyword "
            f"arguments, not both; got both a config and {sorted(config_fields)}"
        )
    return StreamSession(name, config, options=executor, state_dir=state_dir)


__all__ = [
    "ReproError",
    "DynamicAdjacency",
    "EdgeEvent",
    "EdgeStream",
    "EventBlock",
    "load_dataset",
    "ExactCounter",
    "get_pattern",
    "Policy",
    "train_weight_policy",
    "SubgraphCountingSampler",
    "WSD",
    "GPS",
    "GPSA",
    "Triest",
    "ThinkD",
    "WRS",
    "build_stream",
    "ShardedStreamExecutor",
    "ExecutorOptions",
    "RecoveryPolicy",
    "Fault",
    "FaultPlan",
    "RetryableError",
    "WorkerCrashError",
    "PeerLostError",
    "OperationTimeoutError",
    "ShardUnrecoverableError",
    "ServiceOverloadedError",
    "open_stream",
    "StreamConfig",
    "StreamSession",
    "ServiceConfig",
    "CountingService",
    "ServiceClient",
    "StreamQueries",
    "StreamSnapshot",
    "ConfigurationError",
    "GPSHeuristicWeight",
    "LearnedWeight",
    "UniformWeight",
    "WeightFunction",
    "absolute_relative_error",
    "mean_absolute_relative_error",
    "run_with_trace",
    "__version__",
]
