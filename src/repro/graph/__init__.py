"""Graph substrate: adjacency, edges, streams, generators, datasets."""

from repro.graph.adjacency import DEFAULT_SLAB_CUTOFF, DynamicAdjacency
from repro.graph.arena import AdjacencyArena
from repro.graph.edges import Edge, Vertex, canonical_edge
from repro.graph.interning import VertexInterner
from repro.graph.stream import DELETE, INSERT, EdgeEvent, EdgeStream, EventBlock

__all__ = [
    "AdjacencyArena",
    "DEFAULT_SLAB_CUTOFF",
    "DynamicAdjacency",
    "Edge",
    "Vertex",
    "VertexInterner",
    "canonical_edge",
    "EdgeEvent",
    "EdgeStream",
    "EventBlock",
    "INSERT",
    "DELETE",
]
