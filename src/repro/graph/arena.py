"""Numpy-native sampled-graph arena: dynamic sorted-CSR neighbour slabs.

:class:`AdjacencyArena` stores, for a chosen subset of vertices, the
neighbourhood as a **sorted int64 slab** inside one growable arena
buffer, with **parallel payload lanes** aligned slot-for-slot with the
neighbour ids (per-edge inclusion weight for the threshold kernels,
per-edge sample membership for the pairing kernels). Two slabs
intersect with ``searchsorted`` + a gather instead of a per-element
Python loop, which is what turns the triangle delta — γ(M) of
Theorems 3/5, the per-event cost of the paper's headline pattern —
into a handful of C-level array passes.

Design points (all load-bearing for the samplers' bit-identity
contracts):

* **Dense-id domain.** Slabs are keyed by the interned dense vertex id
  and *store* dense neighbour ids, so the arena works for any hashable
  label type and the slab order (ascending dense id) is a pure function
  of the slab's live content — rebuilding a slab from the same edge set
  always reproduces the same array, which checkpoint restore relies on.
* **Amortised doubling.** Each slab owns a power-of-two capacity region
  of the arena; outgrowing it relocates the slab to the arena tail with
  doubled capacity (compacting away tombstones on the way). The arena
  buffer itself doubles when the tail reaches the end, after first
  squeezing out garbage regions when they dominate.
* **Tombstoned deletions.** Removing a neighbour flips its slot in the
  ``alive`` lane (O(log d) for the position probe, no tail shift). The
  id stays in place, so the slab remains sorted and probe-able, and a
  re-inserted edge resurrects its old slot in O(1). Dead slots are
  folded out per-vertex when they reach half the slab or when a query
  touches the slab — queries therefore always intersect live,
  duplicate-free, sorted arrays and never mask.
* **Sentinel padding.** Unused capacity holds ``int64 max``, and every
  slab keeps at least one pad slot, so ``searchsorted`` results can be
  used as gather indices without a bounds-clipping pass.

The arena never decides *which* vertices deserve slabs — that policy
(a degree cutoff with hysteresis) lives in
:class:`~repro.graph.adjacency.DynamicAdjacency` so the dict-of-sets
substrate stays authoritative and sparse vertices pay nothing.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["AdjacencyArena"]

#: Sentinel filling unused slab capacity; compares greater than every
#: real dense id, so searchsorted probes into padding never match.
_PAD = np.iinfo(np.int64).max


class _Slab:
    """Bookkeeping for one vertex's region of the arena."""

    __slots__ = ("off", "size", "cap", "dead")

    def __init__(self, off: int, size: int, cap: int, dead: int = 0) -> None:
        self.off = off
        self.size = size  # used slots, live + dead
        self.cap = cap
        self.dead = dead


def _pow2_at_least(n: int) -> int:
    """Smallest power of two >= max(n, 2)."""
    return 1 << max(1, (n - 1).bit_length())


class AdjacencyArena:
    """Per-vertex sorted neighbour slabs + payload lanes in one buffer.

    All ids are dense interned vertex ids (non-negative ints below
    :data:`_PAD`). Payloads are float64; their meaning belongs to the
    caller (edge weight, sample membership, ...).
    """

    def __init__(self, initial_capacity: int = 1024) -> None:
        if initial_capacity < 4:
            raise ConfigurationError(
                f"initial_capacity must be >= 4, got {initial_capacity}"
            )
        n = _pow2_at_least(initial_capacity)
        self._ids = np.full(n, _PAD, dtype=np.int64)
        self._lane = np.zeros(n, dtype=np.float64)
        #: Optional second payload lane (e.g. per-edge arrival time),
        #: aligned slot-for-slot with ``_ids`` like ``_lane``. ``None``
        #: until :meth:`ensure_lane2` — single-lane callers pay nothing.
        self._lane2: np.ndarray | None = None
        self._alive = np.zeros(n, dtype=bool)
        self._slabs: dict[int, _Slab] = {}
        self._tail = 0  # next free arena slot
        self._garbage = 0  # slots abandoned by relocation / drop

    def ensure_lane2(self) -> None:
        """Allocate the second payload lane (idempotent).

        Must be called before any slab exists: the lane starts zeroed,
        and slots written before the lane existed would silently read
        back 0.0 rather than their true payload.
        """
        if self._lane2 is not None:
            return
        if self._slabs:
            raise ConfigurationError(
                "ensure_lane2() must run before slabs are built"
            )
        self._lane2 = np.zeros(len(self._ids), dtype=np.float64)

    @property
    def has_lane2(self) -> bool:
        return self._lane2 is not None

    # -- introspection -----------------------------------------------------

    def __contains__(self, vertex_id: int) -> bool:
        return vertex_id in self._slabs

    def __len__(self) -> int:
        return len(self._slabs)

    def slab_ids(self) -> list[int]:
        """Dense ids of the vertices currently holding a slab."""
        return list(self._slabs)

    def live_degree(self, vertex_id: int) -> int:
        """Number of live neighbours in ``vertex_id``'s slab."""
        slab = self._slabs[vertex_id]
        return slab.size - slab.dead

    def live_items(self, vertex_id: int) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the live ``(neighbour ids, payloads)`` of a slab."""
        slab = self._slabs[vertex_id]
        if slab.dead:
            self._compact(slab)
        lo, hi = slab.off, slab.off + slab.size
        return self._ids[lo:hi].copy(), self._lane[lo:hi].copy()

    @property
    def capacity(self) -> int:
        """Total arena slots currently allocated."""
        return len(self._ids)

    @property
    def garbage(self) -> int:
        """Arena slots abandoned by slab relocation or drop."""
        return self._garbage

    # -- allocation --------------------------------------------------------

    def _ensure_room(self, cap: int) -> None:
        """Make ``cap`` contiguous slots available at the tail."""
        if self._tail + cap <= len(self._ids):
            return
        if self._garbage * 2 >= self._tail:
            self.compact_arena()
            if self._tail + cap <= len(self._ids):
                return
        n = len(self._ids)
        need = self._tail + cap
        while n < need:
            n *= 2
        ids = np.full(n, _PAD, dtype=np.int64)
        lane = np.zeros(n, dtype=np.float64)
        alive = np.zeros(n, dtype=bool)
        tail = self._tail
        ids[:tail] = self._ids[:tail]
        lane[:tail] = self._lane[:tail]
        alive[:tail] = self._alive[:tail]
        if self._lane2 is not None:
            lane2 = np.zeros(n, dtype=np.float64)
            lane2[:tail] = self._lane2[:tail]
            self._lane2 = lane2
        self._ids = ids
        self._lane = lane
        self._alive = alive

    def compact_arena(self) -> None:
        """Squeeze out all garbage regions (slabs keep their capacity).

        Tombstones inside live slabs are dropped on the way, so this is
        also the arena-wide compaction sweep. Slabs are repacked in
        offset order; relative order is preserved, so every copy moves
        data left and basic-slice assignment (memmove semantics) is
        safe.
        """
        slabs = sorted(self._slabs.values(), key=lambda s: s.off)
        ids, lane, alive = self._ids, self._lane, self._alive
        lane2 = self._lane2
        write = 0
        for slab in slabs:
            lo, hi = slab.off, slab.off + slab.size
            if slab.dead:
                mask = alive[lo:hi]
                live_ids = ids[lo:hi][mask]
                live_lane = lane[lo:hi][mask]
                if lane2 is not None:
                    lane2[write:write + len(live_ids)] = lane2[lo:hi][mask]
                k = len(live_ids)
            else:
                live_ids = ids[lo:hi]
                live_lane = lane[lo:hi]
                if lane2 is not None:
                    lane2[write:write + slab.size] = lane2[lo:hi]
                k = slab.size
            cap = slab.cap
            ids[write:write + k] = live_ids
            lane[write:write + k] = live_lane
            alive[write:write + k] = True
            ids[write + k:write + cap] = _PAD
            alive[write + k:write + cap] = False
            slab.off = write
            slab.size = k
            slab.dead = 0
            write += cap
        self._tail = write
        self._garbage = 0

    # -- per-slab operations ----------------------------------------------

    def build(
        self,
        vertex_id: int,
        ids: np.ndarray,
        payloads: np.ndarray,
        payloads2: np.ndarray | None = None,
    ) -> None:
        """Install a slab from sorted unique dense ids + aligned payloads."""
        if vertex_id in self._slabs:
            raise ConfigurationError(
                f"vertex {vertex_id} already has a slab"
            )
        k = len(ids)
        cap = _pow2_at_least(k + 1)
        self._ensure_room(cap)
        off = self._tail
        self._ids[off:off + k] = ids
        self._lane[off:off + k] = payloads
        if self._lane2 is not None:
            self._lane2[off:off + k] = (
                0.0 if payloads2 is None else payloads2
            )
        self._alive[off:off + k] = True
        self._ids[off + k:off + cap] = _PAD
        self._alive[off + k:off + cap] = False
        self._tail = off + cap
        self._slabs[vertex_id] = _Slab(off, k, cap)

    def drop(self, vertex_id: int) -> None:
        """Free a slab (its region becomes garbage, or tail space)."""
        slab = self._slabs.pop(vertex_id)
        lo = slab.off
        self._ids[lo:lo + slab.size] = _PAD
        self._alive[lo:lo + slab.size] = False
        if slab.off + slab.cap == self._tail:
            self._tail = slab.off
        else:
            self._garbage += slab.cap

    def _position(self, slab: _Slab, neighbour_id: int) -> int:
        """Slot index of ``neighbour_id`` within the slab, or -1.

        Dead slots keep their id in place, so the slab is always sorted
        and the probe finds live and tombstoned entries alike; callers
        check the ``alive`` lane when liveness matters.
        """
        lo = slab.off
        view = self._ids[lo:lo + slab.size]
        pos = int(np.searchsorted(view, neighbour_id))
        if pos < slab.size and int(view[pos]) == neighbour_id:
            return pos
        return -1

    def insert(
        self,
        vertex_id: int,
        neighbour_id: int,
        payload: float,
        payload2: float = 0.0,
    ) -> None:
        """Sorted-insert a live neighbour (resurrecting a tombstone)."""
        slab = self._slabs[vertex_id]
        pos = self._position(slab, neighbour_id)
        lane2 = self._lane2
        if pos >= 0:
            at = slab.off + pos
            if self._alive[at]:
                raise ConfigurationError(
                    f"neighbour {neighbour_id} already present in slab "
                    f"{vertex_id}"
                )
            self._alive[at] = True
            self._lane[at] = payload
            if lane2 is not None:
                lane2[at] = payload2
            slab.dead -= 1
            return
        if slab.size + 1 >= slab.cap:
            self._grow_slab(vertex_id, slab)
            lane2 = self._lane2  # _ensure_room may have reallocated it
        # Recompute against the (possibly relocated/compacted) slab.
        pos = int(np.searchsorted(
            self._ids[slab.off:slab.off + slab.size], neighbour_id
        ))
        ids, lane, alive = self._ids, self._lane, self._alive
        at = slab.off + pos
        end = slab.off + slab.size
        ids[at + 1:end + 1] = ids[at:end]
        lane[at + 1:end + 1] = lane[at:end]
        if lane2 is not None:
            lane2[at + 1:end + 1] = lane2[at:end]
            lane2[at] = payload2
        alive[at + 1:end + 1] = alive[at:end]
        ids[at] = neighbour_id
        lane[at] = payload
        alive[at] = True
        slab.size += 1

    def remove(self, vertex_id: int, neighbour_id: int) -> int:
        """Tombstone a live neighbour; return the live degree left."""
        slab = self._slabs[vertex_id]
        pos = self._position(slab, neighbour_id)
        if pos < 0 or not self._alive[slab.off + pos]:
            raise ConfigurationError(
                f"neighbour {neighbour_id} not present in slab {vertex_id}"
            )
        self._alive[slab.off + pos] = False
        slab.dead += 1
        if slab.dead * 2 >= slab.size:
            self._compact(slab)
        return slab.size - slab.dead

    def set_payload(
        self, vertex_id: int, neighbour_id: int, payload: float
    ) -> None:
        """Overwrite the payload of a live neighbour slot."""
        slab = self._slabs[vertex_id]
        pos = self._position(slab, neighbour_id)
        if pos < 0 or not self._alive[slab.off + pos]:
            raise ConfigurationError(
                f"neighbour {neighbour_id} not present in slab {vertex_id}"
            )
        self._lane[slab.off + pos] = payload

    def payload(self, vertex_id: int, neighbour_id: int) -> float:
        """Payload of a live neighbour slot (ConfigurationError if absent)."""
        slab = self._slabs[vertex_id]
        pos = self._position(slab, neighbour_id)
        if pos < 0 or not self._alive[slab.off + pos]:
            raise ConfigurationError(
                f"neighbour {neighbour_id} not present in slab {vertex_id}"
            )
        return float(self._lane[slab.off + pos])

    def _compact(self, slab: _Slab) -> None:
        """Fold tombstones out of one slab (in place, order-preserving)."""
        lo, hi = slab.off, slab.off + slab.size
        mask = self._alive[lo:hi]
        k = int(np.count_nonzero(mask))
        self._ids[lo:lo + k] = self._ids[lo:hi][mask]
        self._lane[lo:lo + k] = self._lane[lo:hi][mask]
        if self._lane2 is not None:
            self._lane2[lo:lo + k] = self._lane2[lo:hi][mask]
        self._alive[lo:lo + k] = True
        self._ids[lo + k:hi] = _PAD
        self._alive[lo + k:hi] = False
        slab.size = k
        slab.dead = 0

    def _grow_slab(self, vertex_id: int, slab: _Slab) -> None:
        """Relocate a full slab to the tail with doubled capacity."""
        lo, hi = slab.off, slab.off + slab.size
        if slab.dead:
            mask = self._alive[lo:hi]
            live_ids = self._ids[lo:hi][mask]
            live_lane = self._lane[lo:hi][mask]
            live_lane2 = (
                None if self._lane2 is None else self._lane2[lo:hi][mask]
            )
        else:
            live_ids = self._ids[lo:hi].copy()
            live_lane = self._lane[lo:hi].copy()
            live_lane2 = (
                None if self._lane2 is None else self._lane2[lo:hi].copy()
            )
        k = len(live_ids)
        new_cap = _pow2_at_least(max(slab.cap * 2, k + 2))
        self._ids[lo:hi] = _PAD
        self._alive[lo:hi] = False
        if lo + slab.cap == self._tail:
            self._tail = lo
        else:
            self._garbage += slab.cap
        # Unregister while making room: a compact_arena() inside
        # _ensure_room must not repack this slab's abandoned region.
        del self._slabs[vertex_id]
        self._ensure_room(new_cap)
        self._slabs[vertex_id] = slab
        off = self._tail
        self._ids[off:off + k] = live_ids
        self._lane[off:off + k] = live_lane
        if live_lane2 is not None:
            self._lane2[off:off + k] = live_lane2
        self._alive[off:off + k] = True
        self._ids[off + k:off + new_cap] = _PAD
        self._alive[off + k:off + new_cap] = False
        self._tail = off + new_cap
        slab.off = off
        slab.size = k
        slab.cap = new_cap
        slab.dead = 0  # relocation dropped the tombstones

    # -- intersections -----------------------------------------------------

    def _query_views(
        self, u_id: int, v_id: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Live sorted views of both slabs: (a_padded, lane_a, b, lane_b).

        ``a`` is the longer slab including one pad slot (so searchsorted
        probes need no bounds clipping); ``b`` the shorter, live-only.
        Slabs with tombstones are compacted first, so the views are
        live, strictly sorted, and duplicate-free.
        """
        slabs = self._slabs
        su = slabs[u_id]
        sv = slabs[v_id]
        if su.dead:
            self._compact(su)
        if sv.dead:
            self._compact(sv)
        if su.size < sv.size:
            su, sv = sv, su
        ids, lane = self._ids, self._lane
        lo_a, lo_b = su.off, sv.off
        return (
            ids[lo_a:lo_a + su.size + 1],
            lane[lo_a:lo_a + su.size],
            ids[lo_b:lo_b + sv.size],
            lane[lo_b:lo_b + sv.size],
        )

    def common_count(self, u_id: int, v_id: int) -> int:
        """|N(u) ∩ N(v)| over the two slabs."""
        a, _la, b, _lb = self._query_views(u_id, v_id)
        if len(b) == 0 or len(a) == 1:
            return 0
        hit = a[np.searchsorted(a, b)] == b
        return int(np.count_nonzero(hit))

    def common_payloads(
        self, u_id: int, v_id: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Payload pairs over the common neighbourhood.

        Returns ``(pa, pb)`` where ``pa[k]`` / ``pb[k]`` are the two
        edge payloads of the k-th common neighbour (ascending dense
        id). Which endpoint is which side is unspecified — callers
        combine the lanes symmetrically.
        """
        a, la, b, lb = self._query_views(u_id, v_id)
        if len(b) == 0 or len(a) == 1:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty
        idx = np.searchsorted(a, b)
        hit = a[idx] == b
        return la[idx[hit]], lb[hit]

    def common_payloads2(
        self, u_id: int, v_id: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Both payload lanes over the common neighbourhood.

        Like :meth:`common_payloads` but also gathers the second lane:
        returns ``(pa, pb, qa, qb)`` with ``qa``/``qb`` the lane-2
        payloads of the same slots, from one shared ``searchsorted``
        probe. Requires :meth:`ensure_lane2`.
        """
        slabs = self._slabs
        su = slabs[u_id]
        sv = slabs[v_id]
        if su.dead:
            self._compact(su)
        if sv.dead:
            self._compact(sv)
        if su.size < sv.size:
            su, sv = sv, su
        ids, lane, lane2 = self._ids, self._lane, self._lane2
        lo_a, lo_b = su.off, sv.off
        a = ids[lo_a:lo_a + su.size + 1]
        b = ids[lo_b:lo_b + sv.size]
        if len(b) == 0 or len(a) == 1:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty, empty, empty
        idx = np.searchsorted(a, b)
        hit = a[idx] == b
        sel_a = idx[hit]
        la = lane[lo_a:lo_a + su.size]
        lb = lane[lo_b:lo_b + sv.size]
        l2a = lane2[lo_a:lo_a + su.size]
        l2b = lane2[lo_b:lo_b + sv.size]
        return la[sel_a], lb[hit], l2a[sel_a], l2b[hit]

    def common_ids(self, u_id: int, v_id: int) -> np.ndarray:
        """Dense ids of the common neighbours (ascending)."""
        a, _la, b, _lb = self._query_views(u_id, v_id)
        if len(b) == 0 or len(a) == 1:
            return np.empty(0, dtype=np.int64)
        hit = a[np.searchsorted(a, b)] == b
        return b[hit]

    def clear(self) -> None:
        """Drop every slab and reset the arena."""
        self._ids[:self._tail] = _PAD
        self._alive[:self._tail] = False
        self._slabs.clear()
        self._tail = 0
        self._garbage = 0

    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is broken.

        Test hook: used slots ascend strictly (live and dead ids
        together stay sorted and unique), padding holds the sentinel,
        capacities are powers of two with at least one pad slot,
        regions never overlap, and the garbage account matches the
        layout.
        """
        if self._lane2 is not None:
            assert len(self._lane2) == len(self._ids), "lane2 misaligned"
        regions = []
        for vid, slab in self._slabs.items():
            assert slab.cap >= slab.size + 1, (vid, slab.size, slab.cap)
            assert slab.cap == _pow2_at_least(slab.cap), slab.cap
            lo, hi = slab.off, slab.off + slab.size
            used = self._ids[lo:hi]
            dead = ~self._alive[lo:hi]
            assert int(np.count_nonzero(dead)) == slab.dead, vid
            assert slab.dead * 2 < max(slab.size, 1), (
                f"slab {vid} missed its compaction trigger"
            )
            assert np.all(np.diff(used) > 0), f"slab {vid} not sorted"
            assert np.all(used < _PAD), f"slab {vid} holds the sentinel"
            pad = self._ids[hi:slab.off + slab.cap]
            assert np.all(pad == _PAD), f"slab {vid} padding dirty"
            assert not np.any(self._alive[hi:slab.off + slab.cap]), vid
            regions.append((slab.off, slab.off + slab.cap))
        regions.sort()
        for (s1, e1), (s2, _e2) in zip(regions, regions[1:]):
            assert e1 <= s2, "slab regions overlap"
        assert all(e <= self._tail for _s, e in regions)
        used_slots = sum(e - s for s, e in regions)
        assert self._tail - used_slots == self._garbage, (
            self._tail, used_slots, self._garbage
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"AdjacencyArena(slabs={len(self._slabs)}, "
            f"tail={self._tail}/{len(self._ids)}, garbage={self._garbage})"
        )
