"""Edge-event streams: the fully dynamic graph stream model of Section II.

A stream S = {s(1), s(2), ...} is a sequence of :class:`EdgeEvent`
values, each inserting (``op = +``) or deleting (``op = -``) one edge.
:class:`EdgeStream` is an immutable container with (de)serialisation to
a simple one-event-per-line text format::

    + 12 57
    - 12 57

:class:`EventBlock` is the columnar twin of :class:`EdgeStream`: the
same events as a struct of numpy arrays (``is_insert``, ``u``, ``v``),
which is what the samplers' batched fast loops and the process
executor's shared-memory transport consume. Blocks carry int64 vertex
labels only — streams with other label types stay on the
:class:`EdgeEvent` path.
"""

from __future__ import annotations

import io
import struct
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import StreamFormatError
from repro.graph.edges import Edge, Vertex, canonical_edge

__all__ = [
    "INSERT",
    "DELETE",
    "EdgeEvent",
    "EdgeStream",
    "EventBlock",
    "iter_stream_file",
]

INSERT = "+"
DELETE = "-"
_OPS = frozenset({INSERT, DELETE})


@dataclass(frozen=True, slots=True)
class EdgeEvent:
    """One stream element s(t) = (op, e_t).

    ``op`` is ``"+"`` (insertion) or ``"-"`` (deletion); ``edge`` is the
    canonical undirected edge.
    """

    op: str
    edge: Edge

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"op must be '+' or '-', got {self.op!r}")
        object.__setattr__(self, "edge", canonical_edge(*self.edge))

    @property
    def is_insertion(self) -> bool:
        return self.op == INSERT

    @property
    def is_deletion(self) -> bool:
        return self.op == DELETE

    @classmethod
    def insertion(cls, u: Vertex, v: Vertex) -> "EdgeEvent":
        """Construct an insertion event for edge ``{u, v}``."""
        return cls(INSERT, (u, v))

    @classmethod
    def deletion(cls, u: Vertex, v: Vertex) -> "EdgeEvent":
        """Construct a deletion event for edge ``{u, v}``."""
        return cls(DELETE, (u, v))


class EdgeStream(Sequence[EdgeEvent]):
    """An immutable sequence of edge events.

    Supports ``len``, indexing, slicing (returns a new
    :class:`EdgeStream`), iteration, equality, and round-trip text
    (de)serialisation.
    """

    def __init__(self, events: Iterable[EdgeEvent]) -> None:
        self._events: tuple[EdgeEvent, ...] = tuple(events)

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[EdgeEvent]:
        return iter(self._events)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return EdgeStream(self._events[index])
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeStream):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"EdgeStream(events={len(self)}, insertions={self.num_insertions},"
            f" deletions={self.num_deletions})"
        )

    # -- statistics --------------------------------------------------------

    @property
    def num_insertions(self) -> int:
        """|A|: number of insertion events."""
        return sum(1 for e in self._events if e.is_insertion)

    @property
    def num_deletions(self) -> int:
        """|D|: number of deletion events."""
        return len(self._events) - self.num_insertions

    def final_edge_count(self) -> int:
        """Number of edges alive after the whole stream is applied."""
        return self.num_insertions - self.num_deletions

    def distinct_edges(self) -> set[Edge]:
        """Set of edges that appear in at least one event."""
        return {e.edge for e in self._events}

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[Vertex, Vertex]]) -> "EdgeStream":
        """Build an insertion-only stream from an edge sequence."""
        return cls(EdgeEvent.insertion(u, v) for u, v in edges)

    def concat(self, other: "EdgeStream") -> "EdgeStream":
        """Return the concatenation of this stream and ``other``."""
        return EdgeStream(self._events + tuple(other))

    # -- text (de)serialisation ---------------------------------------------

    def dumps(self) -> str:
        """Serialise to the one-event-per-line text format."""
        out = io.StringIO()
        for event in self._events:
            u, v = event.edge
            out.write(f"{event.op} {u} {v}\n")
        return out.getvalue()

    def dump(self, path: str | Path) -> None:
        """Write the text serialisation to ``path``."""
        Path(path).write_text(self.dumps(), encoding="utf-8")

    @classmethod
    def loads(cls, text: str, vertex_type: type = int) -> "EdgeStream":
        """Parse the text format produced by :meth:`dumps`.

        Vertex tokens are converted with ``vertex_type`` (default
        ``int``). Blank lines and lines starting with ``#`` are skipped.
        """
        events = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] not in _OPS:
                raise StreamFormatError(
                    f"line {lineno}: expected '<op> <u> <v>', got {raw!r}"
                )
            try:
                u = vertex_type(parts[1])
                v = vertex_type(parts[2])
            except (TypeError, ValueError) as exc:
                raise StreamFormatError(
                    f"line {lineno}: bad vertex token in {raw!r}"
                ) from exc
            events.append(EdgeEvent(parts[0], (u, v)))
        return cls(events)

    @classmethod
    def load(cls, path: str | Path, vertex_type: type = int) -> "EdgeStream":
        """Read the text format from ``path``."""
        return cls.loads(Path(path).read_text(encoding="utf-8"), vertex_type)

    def to_block(self) -> "EventBlock":
        """Columnar view of this stream (int vertex labels required)."""
        return EventBlock.from_events(self._events)


#: Wire header of an encoded :class:`EventBlock`: magic + event count.
_BLOCK_MAGIC = b"EVB1"
_BLOCK_HEADER = struct.Struct("<4sQ")


class EventBlock:
    """A columnar batch of edge events (struct of numpy arrays).

    The arrays are parallel: event ``t`` is an insertion of edge
    ``(u[t], v[t])`` when ``is_insert[t]`` is true, a deletion
    otherwise. Edges are canonical (``u < v``) by construction — the
    constructor canonicalises vectorised unless told the input already
    is. Only int64 vertex labels are supported (the library convention;
    every built-in dataset and generator uses ints) — streams with
    other label types stay on the :class:`EdgeEvent` tuple path.

    Blocks are what the batched sampler kernels consume natively
    (``process_batch`` accepts either representation and produces
    bit-identical results for either under a fixed seed) and what the
    process executor's shared-memory transport ships between processes
    (:meth:`write_into` / :meth:`from_buffer`, no pickling involved).
    """

    __slots__ = ("is_insert", "u", "v")

    def __init__(self, is_insert, u, v, *, canonical: bool = False) -> None:
        is_insert = np.ascontiguousarray(is_insert, dtype=np.bool_)
        u = self._as_int64(u)
        v = self._as_int64(v)
        if not (len(is_insert) == len(u) == len(v)):
            raise ValueError(
                "column length mismatch: "
                f"{len(is_insert)}/{len(u)}/{len(v)}"
            )
        if len(u) and bool((u == v).any()):
            from repro.errors import SelfLoopError

            raise SelfLoopError("EventBlock contains a self-loop event")
        if not canonical and len(u):
            lo = np.minimum(u, v)
            hi = np.maximum(u, v)
            u, v = lo, hi
        self.is_insert = is_insert
        self.u = u
        self.v = v

    @staticmethod
    def _as_int64(column) -> np.ndarray:
        arr = np.asarray(column)
        if arr.dtype == np.int64:
            return np.ascontiguousarray(arr)
        if arr.size == 0:
            # An empty list coerces to float64; there is nothing to
            # lose in an empty cast.
            return np.empty(0, dtype=np.int64)
        try:
            return np.ascontiguousarray(arr.astype(np.int64, casting="safe"))
        except TypeError as exc:
            raise TypeError(
                "EventBlock requires int64-compatible vertex labels, got "
                f"dtype {arr.dtype}"
            ) from exc

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.is_insert)

    def __iter__(self) -> Iterator[EdgeEvent]:
        insert, delete = INSERT, DELETE
        for is_ins, u, v in zip(
            self.is_insert.tolist(), self.u.tolist(), self.v.tolist()
        ):
            yield EdgeEvent(insert if is_ins else delete, (u, v))

    def __getitem__(self, index):
        if isinstance(index, slice):
            return EventBlock(
                self.is_insert[index],
                self.u[index],
                self.v[index],
                canonical=True,
            )
        is_ins = bool(self.is_insert[index])
        return EdgeEvent(
            INSERT if is_ins else DELETE,
            (int(self.u[index]), int(self.v[index])),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventBlock):
            return NotImplemented
        return (
            np.array_equal(self.is_insert, other.is_insert)
            and np.array_equal(self.u, other.u)
            and np.array_equal(self.v, other.v)
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"EventBlock(events={len(self)}, "
            f"insertions={self.num_insertions})"
        )

    # -- statistics ---------------------------------------------------------

    @property
    def num_insertions(self) -> int:
        """|A|: number of insertion events (one C-level pass)."""
        return int(np.count_nonzero(self.is_insert))

    @property
    def num_deletions(self) -> int:
        """|D|: number of deletion events."""
        return len(self) - self.num_insertions

    # -- conversion ---------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[EdgeEvent]) -> "EventBlock":
        """Build a block from :class:`EdgeEvent` values (int labels)."""
        ops: list[bool] = []
        us: list = []
        vs: list = []
        op_insert = INSERT
        for event in events:
            ops.append(event.op == op_insert)
            u, v = event.edge
            us.append(u)
            vs.append(v)
        # One conversion per column; non-int labels surface as the
        # object/str/float dtypes _as_int64 rejects. Events are
        # canonical by EdgeEvent construction.
        return cls(
            ops, np.asarray(us), np.asarray(vs), canonical=True
        )

    @classmethod
    def from_triples(
        cls, triples: Iterable[tuple[bool, int, int]]
    ) -> "EventBlock":
        """Build a block from raw ``(is_insert, u, v)`` triples."""
        ops: list[bool] = []
        us: list[int] = []
        vs: list[int] = []
        for is_ins, u, v in triples:
            ops.append(is_ins)
            us.append(u)
            vs.append(v)
        return cls(ops, us, vs)

    def to_stream(self) -> EdgeStream:
        """Materialise the block as an :class:`EdgeStream`."""
        return EdgeStream(iter(self))

    def columns(self) -> tuple[list, list, list]:
        """The three columns as plain Python lists (one C-level pass
        each) — the form the batched mega-loops iterate."""
        return self.is_insert.tolist(), self.u.tolist(), self.v.tolist()

    def edges(self) -> list[Edge]:
        """The canonical edge tuples, one per event."""
        return list(zip(self.u.tolist(), self.v.tolist()))

    def concat(self, other: "EventBlock") -> "EventBlock":
        """Return the concatenation of this block and ``other``."""
        return EventBlock(
            np.concatenate([self.is_insert, other.is_insert]),
            np.concatenate([self.u, other.u]),
            np.concatenate([self.v, other.v]),
            canonical=True,
        )

    # -- wire format (shared-memory transport) ------------------------------

    @staticmethod
    def byte_size(num_events: int) -> int:
        """Encoded size in bytes of a block of ``num_events`` events."""
        return _BLOCK_HEADER.size + 17 * num_events

    @property
    def nbytes(self) -> int:
        """Encoded size of this block in bytes."""
        return self.byte_size(len(self))

    def write_into(self, buf) -> int:
        """Encode into a writable buffer; return the bytes written.

        The native-endianness layout is header, then the ``is_insert``
        bytes, then the ``u`` and ``v`` int64 columns — a straight
        memcpy per column, no pickling. Intended for same-machine
        transport (shared memory); :meth:`from_buffer` reverses it.
        """
        n = len(self)
        mv = memoryview(buf).cast("B")
        header = _BLOCK_HEADER.size
        mv[:header] = _BLOCK_HEADER.pack(_BLOCK_MAGIC, n)
        if n:
            mv[header:header + n] = self.is_insert.view(np.uint8).data
            offset = header + n
            mv[offset:offset + 8 * n] = self.u.view(np.uint8).data
            offset += 8 * n
            mv[offset:offset + 8 * n] = self.v.view(np.uint8).data
        return self.byte_size(n)

    def to_bytes(self) -> bytes:
        """Encode to a standalone bytes object."""
        out = bytearray(self.nbytes)
        self.write_into(out)
        return bytes(out)

    @classmethod
    def from_buffer(cls, buf, offset: int = 0) -> "EventBlock":
        """Decode a block written by :meth:`write_into` / :meth:`to_bytes`.

        The returned arrays own their memory (copied out of ``buf``),
        so the source buffer — e.g. a shared-memory slot — may be
        reused immediately.
        """
        mv = memoryview(buf).cast("B")
        header = _BLOCK_HEADER.size
        magic, n = _BLOCK_HEADER.unpack(mv[offset:offset + header])
        if magic != _BLOCK_MAGIC:
            raise StreamFormatError(
                f"bad EventBlock magic {magic!r} (corrupt payload)"
            )
        start = offset + header
        is_insert = np.frombuffer(mv, dtype=np.bool_, count=n, offset=start)
        u = np.frombuffer(mv, dtype=np.int64, count=n, offset=start + n)
        v = np.frombuffer(
            mv, dtype=np.int64, count=n, offset=start + 9 * n
        )
        return cls(is_insert.copy(), u.copy(), v.copy(), canonical=True)


def iter_stream_file(
    path: str | Path, vertex_type: type = int
) -> Iterator[EdgeEvent]:
    """Yield events from a stream file without materialising it.

    The samplers consume any iterable of events, so this is the
    constant-memory ingestion path for streams too large to hold as an
    :class:`EdgeStream` — the single-pass constraint of Section II made
    literal::

        sampler.process_stream(iter_stream_file("huge-stream.txt"))

    Uses the same one-event-per-line format as :meth:`EdgeStream.dumps`;
    blank lines and ``#`` comments are skipped.
    """
    with open(Path(path), "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] not in _OPS:
                raise StreamFormatError(
                    f"line {lineno}: expected '<op> <u> <v>', got {raw!r}"
                )
            try:
                u = vertex_type(parts[1])
                v = vertex_type(parts[2])
            except (TypeError, ValueError) as exc:
                raise StreamFormatError(
                    f"line {lineno}: bad vertex token in {raw!r}"
                ) from exc
            yield EdgeEvent(parts[0], (u, v))
