"""Edge-event streams: the fully dynamic graph stream model of Section II.

A stream S = {s(1), s(2), ...} is a sequence of :class:`EdgeEvent`
values, each inserting (``op = +``) or deleting (``op = -``) one edge.
:class:`EdgeStream` is an immutable container with (de)serialisation to
a simple one-event-per-line text format::

    + 12 57
    - 12 57
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StreamFormatError
from repro.graph.edges import Edge, Vertex, canonical_edge

__all__ = ["INSERT", "DELETE", "EdgeEvent", "EdgeStream", "iter_stream_file"]

INSERT = "+"
DELETE = "-"
_OPS = frozenset({INSERT, DELETE})


@dataclass(frozen=True, slots=True)
class EdgeEvent:
    """One stream element s(t) = (op, e_t).

    ``op`` is ``"+"`` (insertion) or ``"-"`` (deletion); ``edge`` is the
    canonical undirected edge.
    """

    op: str
    edge: Edge

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"op must be '+' or '-', got {self.op!r}")
        object.__setattr__(self, "edge", canonical_edge(*self.edge))

    @property
    def is_insertion(self) -> bool:
        return self.op == INSERT

    @property
    def is_deletion(self) -> bool:
        return self.op == DELETE

    @classmethod
    def insertion(cls, u: Vertex, v: Vertex) -> "EdgeEvent":
        """Construct an insertion event for edge ``{u, v}``."""
        return cls(INSERT, (u, v))

    @classmethod
    def deletion(cls, u: Vertex, v: Vertex) -> "EdgeEvent":
        """Construct a deletion event for edge ``{u, v}``."""
        return cls(DELETE, (u, v))


class EdgeStream(Sequence[EdgeEvent]):
    """An immutable sequence of edge events.

    Supports ``len``, indexing, slicing (returns a new
    :class:`EdgeStream`), iteration, equality, and round-trip text
    (de)serialisation.
    """

    def __init__(self, events: Iterable[EdgeEvent]) -> None:
        self._events: tuple[EdgeEvent, ...] = tuple(events)

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[EdgeEvent]:
        return iter(self._events)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return EdgeStream(self._events[index])
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeStream):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"EdgeStream(events={len(self)}, insertions={self.num_insertions},"
            f" deletions={self.num_deletions})"
        )

    # -- statistics --------------------------------------------------------

    @property
    def num_insertions(self) -> int:
        """|A|: number of insertion events."""
        return sum(1 for e in self._events if e.is_insertion)

    @property
    def num_deletions(self) -> int:
        """|D|: number of deletion events."""
        return len(self._events) - self.num_insertions

    def final_edge_count(self) -> int:
        """Number of edges alive after the whole stream is applied."""
        return self.num_insertions - self.num_deletions

    def distinct_edges(self) -> set[Edge]:
        """Set of edges that appear in at least one event."""
        return {e.edge for e in self._events}

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[Vertex, Vertex]]) -> "EdgeStream":
        """Build an insertion-only stream from an edge sequence."""
        return cls(EdgeEvent.insertion(u, v) for u, v in edges)

    def concat(self, other: "EdgeStream") -> "EdgeStream":
        """Return the concatenation of this stream and ``other``."""
        return EdgeStream(self._events + tuple(other))

    # -- text (de)serialisation ---------------------------------------------

    def dumps(self) -> str:
        """Serialise to the one-event-per-line text format."""
        out = io.StringIO()
        for event in self._events:
            u, v = event.edge
            out.write(f"{event.op} {u} {v}\n")
        return out.getvalue()

    def dump(self, path: str | Path) -> None:
        """Write the text serialisation to ``path``."""
        Path(path).write_text(self.dumps(), encoding="utf-8")

    @classmethod
    def loads(cls, text: str, vertex_type: type = int) -> "EdgeStream":
        """Parse the text format produced by :meth:`dumps`.

        Vertex tokens are converted with ``vertex_type`` (default
        ``int``). Blank lines and lines starting with ``#`` are skipped.
        """
        events = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] not in _OPS:
                raise StreamFormatError(
                    f"line {lineno}: expected '<op> <u> <v>', got {raw!r}"
                )
            try:
                u = vertex_type(parts[1])
                v = vertex_type(parts[2])
            except (TypeError, ValueError) as exc:
                raise StreamFormatError(
                    f"line {lineno}: bad vertex token in {raw!r}"
                ) from exc
            events.append(EdgeEvent(parts[0], (u, v)))
        return cls(events)

    @classmethod
    def load(cls, path: str | Path, vertex_type: type = int) -> "EdgeStream":
        """Read the text format from ``path``."""
        return cls.loads(Path(path).read_text(encoding="utf-8"), vertex_type)


def iter_stream_file(
    path: str | Path, vertex_type: type = int
) -> Iterator[EdgeEvent]:
    """Yield events from a stream file without materialising it.

    The samplers consume any iterable of events, so this is the
    constant-memory ingestion path for streams too large to hold as an
    :class:`EdgeStream` — the single-pass constraint of Section II made
    literal::

        sampler.process_stream(iter_stream_file("huge-stream.txt"))

    Uses the same one-event-per-line format as :meth:`EdgeStream.dumps`;
    blank lines and ``#`` comments are skipped.
    """
    with open(Path(path), "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] not in _OPS:
                raise StreamFormatError(
                    f"line {lineno}: expected '<op> <u> <v>', got {raw!r}"
                )
            try:
                u = vertex_type(parts[1])
                v = vertex_type(parts[2])
            except (TypeError, ValueError) as exc:
                raise StreamFormatError(
                    f"line {lineno}: bad vertex token in {raw!r}"
                ) from exc
            yield EdgeEvent(parts[0], (u, v))
