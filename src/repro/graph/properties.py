"""Structural graph statistics.

Used to validate that the synthetic dataset stand-ins exhibit the
structural and temporal properties the paper's real graphs have (heavy
tails, clustering, densification) — the properties the Forest Fire
section of the paper calls out explicitly — and generally useful when
characterising workloads.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.adjacency import DynamicAdjacency
from repro.graph.edges import Edge

__all__ = [
    "build_graph",
    "degree_histogram",
    "degree_gini",
    "global_clustering",
    "average_local_clustering",
    "densification_exponent",
]


def build_graph(edges: list[Edge]) -> DynamicAdjacency:
    """Materialise an edge list into a :class:`DynamicAdjacency`."""
    graph = DynamicAdjacency()
    for u, v in edges:
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def degree_histogram(graph: DynamicAdjacency) -> dict[int, int]:
    """Map degree -> number of vertices with that degree."""
    return dict(Counter(graph.degree(v) for v in graph.vertices()))


def degree_gini(graph: DynamicAdjacency) -> float:
    """Gini coefficient of the degree distribution (0 = uniform).

    Heavy-tailed graphs (social/web) have high Gini; the stand-ins are
    validated to exceed Erdős–Rényi levels.
    """
    degrees = np.sort(
        np.array([graph.degree(v) for v in graph.vertices()], dtype=float)
    )
    n = degrees.size
    if n == 0:
        raise ConfigurationError("empty graph has no degree distribution")
    total = degrees.sum()
    if total == 0.0:
        return 0.0
    index = np.arange(1, n + 1)
    return float((2.0 * (index * degrees).sum()) / (n * total) - (n + 1) / n)


def global_clustering(graph: DynamicAdjacency) -> float:
    """Transitivity: 3 * triangles / wedges (0 if no wedges)."""
    wedges = sum(
        d * (d - 1) // 2
        for d in (graph.degree(v) for v in graph.vertices())
    )
    if wedges == 0:
        return 0.0
    triangles = (
        sum(
            len(graph.common_neighbors(u, v)) for u, v in graph.edges()
        )
        // 3
    )
    return 3.0 * triangles / wedges


def average_local_clustering(graph: DynamicAdjacency) -> float:
    """Mean of per-vertex clustering coefficients (Watts–Strogatz)."""
    coefficients = []
    for v in graph.vertices():
        neighbours = list(graph.neighbors_view(v))
        d = len(neighbours)
        if d < 2:
            coefficients.append(0.0)
            continue
        links = 0
        for i, a in enumerate(neighbours):
            a_neighbours = graph.neighbors_view(a)
            for b in neighbours[i + 1:]:
                if b in a_neighbours:
                    links += 1
        coefficients.append(2.0 * links / (d * (d - 1)))
    if not coefficients:
        raise ConfigurationError("empty graph has no clustering coefficient")
    return float(np.mean(coefficients))


def densification_exponent(edges: list[Edge], samples: int = 10) -> float:
    """Fit e(t) ∝ n(t)^a over stream prefixes; return the exponent a.

    Densifying graphs (Leskovec et al.) have a > 1: edges grow
    super-linearly in vertices. Computed by sampling ``samples`` prefix
    points of the natural order and fitting a line in log-log space.
    """
    if len(edges) < samples or samples < 2:
        raise ConfigurationError(
            f"need at least {max(samples, 2)} edges, got {len(edges)}"
        )
    vertices: set = set()
    checkpoints = np.unique(
        np.linspace(len(edges) // samples, len(edges), samples, dtype=int)
    )
    log_n, log_e = [], []
    cursor = 0
    for checkpoint in checkpoints:
        while cursor < checkpoint:
            u, v = edges[cursor]
            vertices.add(u)
            vertices.add(v)
            cursor += 1
        if len(vertices) > 1 and cursor > 0:
            log_n.append(np.log(len(vertices)))
            log_e.append(np.log(cursor))
    slope, _ = np.polyfit(np.asarray(log_n), np.asarray(log_e), deg=1)
    return float(slope)
