"""Vertex interning: external labels → dense integer ids.

Vertex labels arriving on a stream are arbitrary hashable objects
(ints, strings, tuples...). The hot paths need two things labels cannot
provide cheaply:

* a **total order that agrees with identity** — the clique enumerators
  sort candidate vertices to emit each instance exactly once, and
  ordering by ``repr`` (the old scheme) both allocates a string per
  vertex per event and can disagree with equality for exotic types;
* **dense small ints** usable as array indices by future vectorised
  backends.

:class:`VertexInterner` assigns each label a dense id (0, 1, 2, ...) in
first-seen order and never recycles ids, so the order is stable for the
lifetime of the interner. :class:`~repro.graph.adjacency.DynamicAdjacency`
owns one and interns every vertex on first insertion.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.graph.edges import Vertex

__all__ = ["VertexInterner"]


class VertexInterner:
    """Bidirectional label ↔ dense-id mapping (ids are never recycled)."""

    __slots__ = ("_ids", "_labels")

    def __init__(self) -> None:
        self._ids: dict[Vertex, int] = {}
        self._labels: list[Vertex] = []

    def intern(self, label: Vertex) -> int:
        """Return the id for ``label``, assigning the next dense id if new."""
        ids = self._ids
        i = ids.get(label)
        if i is None:
            i = len(self._labels)
            ids[label] = i
            self._labels.append(label)
        return i

    def id_of(self, label: Vertex) -> int:
        """Return the id of an already-interned label (KeyError if unknown)."""
        return self._ids[label]

    def label(self, vertex_id: int) -> Vertex:
        """Return the label interned as ``vertex_id`` (IndexError if unknown)."""
        return self._labels[vertex_id]

    @property
    def sort_key(self) -> Callable[[Vertex], int]:
        """A ``key=`` callable ordering interned labels by id (O(1), no
        string allocation)."""
        return self._ids.__getitem__

    def sorted(self, labels: Iterable[Vertex]) -> list[Vertex]:
        """Return ``labels`` sorted by interned id (first-seen order)."""
        return sorted(labels, key=self._ids.__getitem__)

    def labels(self) -> list[Vertex]:
        """All interned labels in id order (index == id).

        This *is* the interner's full state: replaying the list through
        :meth:`intern` reproduces identical ids, which checkpoint
        restore relies on to keep id-ordered enumeration (and therefore
        float accumulation order) bit-identical.
        """
        return list(self._labels)

    def clear(self) -> None:
        """Forget all labels and restart ids from 0."""
        self._ids.clear()
        self._labels.clear()

    def __contains__(self, label: object) -> bool:
        return label in self._ids

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"VertexInterner(size={len(self._labels)})"
