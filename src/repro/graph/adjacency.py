"""Dynamic undirected graph adjacency structure.

:class:`DynamicAdjacency` is the in-memory graph substrate shared by the
samplers (for the *sampled* graph), the exact counters (for the *full*
graph during training / evaluation), and the pattern matchers. It
supports O(1) expected-time edge insertion/deletion/lookup and provides
the neighbourhood queries pattern enumeration needs (neighbours, common
neighbours, degree).

This class sits on the per-event hot path of every sampler, so it is
written for speed:

* ``neighbors_view`` / ``iter_neighbors`` expose the internal neighbour
  set without copying (the legacy ``neighbors`` still returns a
  defensive ``frozenset``);
* ``common_neighbors`` is a C-level set intersection;
* ``add_edge_canonical`` / ``remove_edge_canonical`` skip
  re-canonicalisation when the caller already holds a canonical edge
  (every sampler does — stream events are canonical by construction);
* every vertex is interned to a dense int id on first insertion
  (:class:`~repro.graph.interning.VertexInterner`), giving the pattern
  enumerators an allocation-free, identity-consistent sort order;
* an optional :class:`~repro.graph.arena.AdjacencyArena` mirrors the
  neighbourhoods of *high-degree* vertices as sorted int64 slabs with a
  parallel payload lane, so the common-neighbour queries behind the
  triangle / clique estimators vectorise (``searchsorted`` + gather)
  exactly where the per-element Python loop stops being cheapest. The
  dict-of-sets stays authoritative: a vertex earns a slab when its
  degree reaches ``slab_cutoff`` and loses it (hysteresis) when it
  falls below half the cutoff, so sparse graphs never touch numpy.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import (
    ConfigurationError,
    EdgeExistsError,
    EdgeNotFoundError,
)
from repro.graph.arena import AdjacencyArena
from repro.graph.edges import Edge, Vertex, canonical_edge
from repro.graph.interning import VertexInterner

__all__ = ["DynamicAdjacency", "DEFAULT_SLAB_CUTOFF"]

#: Shared immutable empty neighbourhood returned for unknown vertices.
_EMPTY: frozenset = frozenset()

#: Default degree at which a vertex earns an arena slab. Below the
#: crossover the C-level set intersection wins (numpy's ~µs-scale
#: per-call overhead dominates tiny neighbourhoods); above it the
#: vectorised slab intersection wins by growing multiples. Measured on
#: the recording box, the full event (query savings minus slab
#: maintenance under churn) breaks even around expected common
#: neighbourhoods of ~100, i.e. degrees of a couple hundred on the
#: graphs the samplers hold; 192 keeps every sub-break-even regime on
#: the pure set path (sparse graphs never pay a byte of maintenance)
#: while the dense regimes that profit are comfortably above it.
DEFAULT_SLAB_CUTOFF = 192


class DynamicAdjacency:
    """An undirected simple graph under edge insertions and deletions.

    Vertices are created implicitly by edge insertion and removed
    implicitly when their last incident edge is deleted (so
    ``num_vertices`` counts non-isolated vertices, matching the induced
    graph G(t) of Section II).
    """

    __slots__ = (
        "_adj", "_num_edges", "_interner",
        "_arena", "_slab_cutoff", "_slab_hyst",
        "_payload_fn", "_payload2_fn",
    )

    def __init__(self) -> None:
        self._adj: dict[Vertex, set[Vertex]] = {}
        self._num_edges = 0
        self._interner = VertexInterner()
        #: Optional sorted-slab mirror of the high-degree vertices.
        self._arena: AdjacencyArena | None = None
        self._slab_cutoff = DEFAULT_SLAB_CUTOFF
        self._slab_hyst = DEFAULT_SLAB_CUTOFF // 2
        self._payload_fn = None
        self._payload2_fn = None

    # -- mutation ---------------------------------------------------------

    def add_edge(self, u: Vertex, v: Vertex) -> Edge:
        """Insert the undirected edge ``{u, v}`` and return its canonical form.

        Raises :class:`~repro.errors.EdgeExistsError` if already present
        and :class:`~repro.errors.SelfLoopError` if ``u == v``.
        """
        edge = canonical_edge(u, v)
        self.add_edge_canonical(edge)
        return edge

    def add_edge_canonical(
        self, edge: Edge, payload: float = 1.0, payload2: float = 0.0
    ) -> None:
        """Insert an edge already in canonical form (no re-sorting).

        The caller guarantees ``edge`` came from
        :func:`~repro.graph.edges.canonical_edge` (stream events always
        do); only the duplicate-edge check is performed here.
        ``payload`` is the per-edge arena-lane value (edge weight,
        sample membership, ...) and ``payload2`` the second-lane value
        (per-edge arrival time) for arenas with that lane active; both
        are ignored unless an arena is enabled and an endpoint holds
        (or now earns) a slab.
        """
        a, b = edge
        adj = self._adj
        neighbours = adj.get(a)
        if neighbours is None:
            adj[a] = {b}
            self._interner.intern(a)
        elif b in neighbours:
            raise EdgeExistsError(f"edge {edge!r} already present")
        else:
            neighbours.add(b)
        other = adj.get(b)
        if other is None:
            adj[b] = {a}
            self._interner.intern(b)
        else:
            other.add(a)
        self._num_edges += 1
        arena = self._arena
        if arena is not None and (
            # ~ns gate: with no slab anywhere and both endpoints below
            # the cutoff, the arena provably has nothing to do.
            arena._slabs
            or (other is not None and len(other) >= self._slab_cutoff)
            or (
                neighbours is not None
                and len(neighbours) >= self._slab_cutoff
            )
        ):
            self._note_add(a, b, payload, payload2)

    def remove_edge(self, u: Vertex, v: Vertex) -> Edge:
        """Delete the undirected edge ``{u, v}`` and return its canonical form.

        Vertices left isolated are dropped. Raises
        :class:`~repro.errors.EdgeNotFoundError` if the edge is absent.
        """
        edge = canonical_edge(u, v)
        self.remove_edge_canonical(edge)
        return edge

    def remove_edge_canonical(self, edge: Edge) -> None:
        """Delete an edge already in canonical form (no re-sorting)."""
        a, b = edge
        adj = self._adj
        neighbours = adj.get(a)
        if neighbours is None or b not in neighbours:
            raise EdgeNotFoundError(f"edge {edge!r} not present")
        neighbours.remove(b)
        if not neighbours:
            del adj[a]
        other = adj[b]
        other.remove(a)
        if not other:
            del adj[b]
        self._num_edges -= 1
        arena = self._arena
        if arena is not None and arena._slabs:
            self._note_remove(a, b)

    def clear(self) -> None:
        """Remove all edges and vertices (and reset interned ids)."""
        self._adj.clear()
        self._num_edges = 0
        self._interner.clear()
        if self._arena is not None:
            self._arena.clear()

    # -- arena (sorted-slab mirror of the high-degree vertices) -----------

    def enable_arena(
        self,
        payload_fn=None,
        cutoff: int | None = None,
        payload2_fn=None,
    ) -> None:
        """Mirror high-degree neighbourhoods into sorted payload slabs.

        ``payload_fn(u, w) -> float`` supplies the lane value of an
        *existing* edge when a vertex's slab is first built (incremental
        inserts carry their payload through
        :meth:`add_edge_canonical`); ``None`` fills lanes with 1.0.
        ``payload2_fn(u, w) -> float``, when given, activates the
        arena's second payload lane (e.g. per-edge arrival time) and
        fills it the same way at slab build; incremental inserts carry
        their lane-2 value through ``add_edge_canonical``'s
        ``payload2``. ``cutoff`` is the slab-earning degree (default
        :data:`DEFAULT_SLAB_CUTOFF`); a slab is dropped again when its
        live degree falls below ``cutoff // 2`` (hysteresis, so a
        vertex oscillating at the boundary does not thrash
        build/drop). Slabs for already-qualifying vertices are built
        immediately, so enabling on a populated graph is valid.
        """
        if cutoff is not None:
            if cutoff < 2:
                raise ValueError(f"cutoff must be >= 2, got {cutoff}")
            self._slab_cutoff = int(cutoff)
            self._slab_hyst = max(1, int(cutoff) // 2)
        self._payload_fn = payload_fn
        self._payload2_fn = payload2_fn
        if self._arena is None:
            self._arena = AdjacencyArena()
        if payload2_fn is not None:
            self._arena.ensure_lane2()
        for v, neighbours in self._adj.items():
            if len(neighbours) >= self._slab_cutoff:
                i = self._interner.id_of(v)
                if i not in self._arena:
                    self._build_slab(v, i)

    @property
    def arena(self) -> AdjacencyArena | None:
        """The sorted-slab mirror, or ``None`` when not enabled."""
        return self._arena

    @property
    def slab_cutoff(self) -> int:
        """Degree at which a vertex earns an arena slab."""
        return self._slab_cutoff

    def slabbed_vertices(self) -> list[Vertex]:
        """Labels of the vertices currently holding an arena slab."""
        if self._arena is None:
            return []
        label = self._interner.label
        return [label(i) for i in self._arena.slab_ids()]

    def _build_slab(self, v: Vertex, vertex_id: int) -> None:
        """Install ``v``'s slab from the authoritative neighbour set."""
        idmap = self._interner._ids
        pairs = sorted((idmap[w], w) for w in self._adj[v])
        k = len(pairs)
        ids = np.fromiter((p[0] for p in pairs), np.int64, k)
        pf = self._payload_fn
        if pf is None:
            lane = np.ones(k, dtype=np.float64)
        else:
            lane = np.fromiter((pf(v, p[1]) for p in pairs), np.float64, k)
        pf2 = self._payload2_fn
        if pf2 is None:
            self._arena.build(vertex_id, ids, lane)
        else:
            lane2 = np.fromiter(
                (pf2(v, p[1]) for p in pairs), np.float64, k
            )
            self._arena.build(vertex_id, ids, lane, lane2)

    def _note_add(
        self, a: Vertex, b: Vertex, payload: float, payload2: float = 0.0
    ) -> None:
        """Arena maintenance after ``{a, b}`` entered the sets.

        Exposed (underscored) for the sampler mega-loops, which inline
        the dict/set mutations and call this at the same choke point
        ``add_edge_canonical`` does.
        """
        idmap = self._interner._ids
        arena = self._arena
        ia = idmap[a]
        ib = idmap[b]
        if ia in arena:
            arena.insert(ia, ib, payload, payload2)
        elif len(self._adj[a]) >= self._slab_cutoff:
            self._build_slab(a, ia)
        if ib in arena:
            arena.insert(ib, ia, payload, payload2)
        elif len(self._adj[b]) >= self._slab_cutoff:
            self._build_slab(b, ib)

    def _note_remove(self, a: Vertex, b: Vertex) -> None:
        """Arena maintenance after ``{a, b}`` left the sets."""
        idmap = self._interner._ids
        arena = self._arena
        hyst = self._slab_hyst
        ia = idmap[a]
        ib = idmap[b]
        if ia in arena:
            if arena.remove(ia, ib) < hyst:
                arena.drop(ia)
        if ib in arena:
            if arena.remove(ib, ia) < hyst:
                arena.drop(ib)

    def set_edge_payload(self, edge: Edge, payload: float) -> None:
        """Update the arena-lane value of a live edge (both directions).

        No-op for endpoints without a slab (their lanes materialise
        from ``payload_fn`` if a slab is built later) and when no arena
        is enabled.
        """
        arena = self._arena
        if arena is None or not arena._slabs:
            return
        a, b = edge
        idmap = self._interner._ids
        ia = idmap.get(a)
        if ia is None:
            return
        ib = idmap.get(b)
        if ib is None:
            return
        if ia in arena:
            arena.set_payload(ia, ib, payload)
        if ib in arena:
            arena.set_payload(ib, ia, payload)

    def sync_arena_slabs(self, labels: Iterable[Vertex]) -> None:
        """Force the slabbed-vertex set to exactly ``labels``.

        Checkpoint restore uses this: which vertices hold slabs is
        *history-dependent* (hysteresis keeps a slab down to half the
        cutoff), so rebuilding a graph from its surviving edges alone
        can under-slab it; the v3 checkpoint records the exact set and
        replays it here so the restored sampler's adaptive query
        routing — and therefore its float accumulation order — matches
        the uninterrupted run's.
        """
        if self._arena is None:
            raise ConfigurationError("no arena enabled on this graph")
        want: set[int] = set()
        idmap = self._interner._ids
        for v in labels:
            i = idmap[v]
            want.add(i)
            if i not in self._arena and v in self._adj:
                self._build_slab(v, i)
        for i in self._arena.slab_ids():
            if i not in want:
                self._arena.drop(i)

    # -- queries ----------------------------------------------------------

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return whether the undirected edge ``{u, v}`` is present."""
        if u == v:
            return False
        neighbours = self._adj.get(u)
        return neighbours is not None and v in neighbours

    def neighbors(self, v: Vertex) -> frozenset[Vertex]:
        """Return a defensive copy of the neighbour set of ``v``.

        Public-boundary API only: it copies on every call (unknown
        vertices share one empty frozenset instead of allocating).
        Every internal caller goes through :meth:`neighbors_view` /
        :meth:`iter_neighbors` (zero-copy) or the arena-backed
        intersection helpers; keep it that way.
        """
        neighbours = self._adj.get(v)
        if not neighbours:
            return _EMPTY
        return frozenset(neighbours)

    def neighbors_view(self, v: Vertex):
        """Return the *live* neighbour set of ``v`` without copying.

        The returned set is the internal adjacency entry: it must not be
        mutated, and it changes underneath the caller on subsequent
        ``add_edge`` / ``remove_edge`` calls (iterate before mutating).
        Unknown vertices yield a shared empty frozenset.
        """
        return self._adj.get(v, _EMPTY)

    def iter_neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate the neighbours of ``v`` without copying."""
        return iter(self._adj.get(v, ()))

    def degree(self, v: Vertex) -> int:
        """Return the degree of ``v`` (0 if ``v`` is unknown)."""
        return len(self._adj.get(v, ()))

    def common_neighbors(self, u: Vertex, v: Vertex) -> set[Vertex]:
        """Return vertices adjacent to both ``u`` and ``v``.

        This is the γ(M) primitive of Theorems 3/5: for triangle
        counting the per-event work is exactly this intersection (done
        at C level; Python's set intersection iterates the smaller
        operand).
        """
        nu = self._adj.get(u)
        if not nu:
            return set()
        nv = self._adj.get(v)
        if not nv:
            return set()
        return nu & nv

    def count_common(self, u: Vertex, v: Vertex) -> int:
        """|N(u) ∩ N(v)| — the γ(M) count without materialising the set.

        Routes through the arena slabs when both endpoints hold one
        (one ``searchsorted`` + mask instead of a set allocation);
        falls back to the C-level set intersection otherwise. The
        result is an exact integer either way, so callers need no
        routing-dependent tolerance.
        """
        nu = self._adj.get(u)
        if not nu:
            return 0
        nv = self._adj.get(v)
        if not nv:
            return 0
        arena = self._arena
        if (
            arena is not None
            and arena._slabs
            and len(nu) >= self._slab_hyst
            and len(nv) >= self._slab_hyst
        ):
            idmap = self._interner._ids
            iu = idmap[u]
            if iu in arena:
                iv = idmap[v]
                if iv in arena:
                    return arena.common_count(iu, iv)
        if nu.isdisjoint(nv):
            return 0
        return len(nu & nv)

    def common_payloads(self, u: Vertex, v: Vertex):
        """Payload-lane pairs over N(u) ∩ N(v), or ``None``.

        Returns ``(pa, pb)`` float arrays — the two per-edge payloads
        of each common neighbour, in ascending dense-id order — when
        *both* endpoints hold an arena slab; ``None`` when the
        vectorised path does not apply (no arena, either endpoint
        unslabbed, or a vertex unknown), in which case the caller runs
        its scalar loop. The two sides are symmetric (no guarantee
        which endpoint is first).
        """
        arena = self._arena
        if arena is None or not arena._slabs:
            return None
        nu = self._adj.get(u)
        if nu is None or len(nu) < self._slab_hyst:
            return None
        nv = self._adj.get(v)
        if nv is None or len(nv) < self._slab_hyst:
            return None
        idmap = self._interner._ids
        iu = idmap[u]
        if iu not in arena:
            return None
        iv = idmap[v]
        if iv not in arena:
            return None
        return arena.common_payloads(iu, iv)

    def common_payloads2(self, u: Vertex, v: Vertex):
        """Both payload lanes over N(u) ∩ N(v), or ``None``.

        Like :meth:`common_payloads` but returns ``(pa, pb, qa, qb)``
        with the second-lane values of the same slots (requires an
        arena enabled with ``payload2_fn``). ``None`` under the same
        conditions — the caller then runs its scalar loop.
        """
        arena = self._arena
        if arena is None or not arena._slabs:
            return None
        nu = self._adj.get(u)
        if nu is None or len(nu) < self._slab_hyst:
            return None
        nv = self._adj.get(v)
        if nv is None or len(nv) < self._slab_hyst:
            return None
        idmap = self._interner._ids
        iu = idmap[u]
        if iu not in arena:
            return None
        iv = idmap[v]
        if iv not in arena:
            return None
        return arena.common_payloads2(iu, iv)

    def arena_common_neighbors(self, u: Vertex, v: Vertex):
        """Common neighbours as a label set via the slabs, or ``None``.

        ``None`` means the vectorised path does not apply (no arena, no
        slabs yet, or either endpoint unslabbed) and the caller should
        use :meth:`common_neighbors`; the sub-µs guard chain makes this
        safe to call unconditionally on sparse hot paths.
        """
        arena = self._arena
        if arena is None or not arena._slabs:
            return None
        nu = self._adj.get(u)
        if nu is None or len(nu) < self._slab_hyst:
            return None
        nv = self._adj.get(v)
        if nv is None or len(nv) < self._slab_hyst:
            return None
        idmap = self._interner._ids
        iu = idmap[u]
        if iu not in arena:
            return None
        iv = idmap[v]
        if iv not in arena:
            return None
        label = self._interner._labels.__getitem__
        return {label(i) for i in arena.common_ids(iu, iv).tolist()}

    # -- interning ---------------------------------------------------------

    @property
    def interner(self) -> VertexInterner:
        """The label ↔ dense-id mapping for every vertex ever inserted."""
        return self._interner

    def vertex_id(self, v: Vertex) -> int:
        """Dense int id of ``v`` (KeyError if ``v`` was never inserted).

        Ids are assigned in first-insertion order and survive vertex
        removal, so they provide a stable, identity-consistent total
        order over all vertices seen so far.
        """
        return self._interner.id_of(v)

    def sort_by_id(self, vertices: Iterable[Vertex]) -> list[Vertex]:
        """Sort ``vertices`` by interned id — the allocation-free
        replacement for ``sorted(..., key=repr)`` in the enumerators."""
        return self._interner.sorted(vertices)

    @property
    def num_edges(self) -> int:
        """Number of edges currently alive."""
        return self._num_edges

    @property
    def num_vertices(self) -> int:
        """Number of non-isolated vertices."""
        return len(self._adj)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over the non-isolated vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in canonical form (each edge once)."""
        for u, neighbours in self._adj.items():
            for v in neighbours:
                edge = canonical_edge(u, v)
                if edge[0] == u:
                    yield edge

    def __contains__(self, edge: Edge) -> bool:
        u, v = edge
        return self.has_edge(u, v)

    def __len__(self) -> int:
        return self._num_edges

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DynamicAdjacency(vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )
