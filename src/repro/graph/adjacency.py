"""Dynamic undirected graph adjacency structure.

:class:`DynamicAdjacency` is the in-memory graph substrate shared by the
samplers (for the *sampled* graph), the exact counters (for the *full*
graph during training / evaluation), and the pattern matchers. It
supports O(1) expected-time edge insertion/deletion/lookup and provides
the neighbourhood queries pattern enumeration needs (neighbours, common
neighbours, degree).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import EdgeExistsError, EdgeNotFoundError
from repro.graph.edges import Edge, Vertex, canonical_edge

__all__ = ["DynamicAdjacency"]


class DynamicAdjacency:
    """An undirected simple graph under edge insertions and deletions.

    Vertices are created implicitly by edge insertion and removed
    implicitly when their last incident edge is deleted (so
    ``num_vertices`` counts non-isolated vertices, matching the induced
    graph G(t) of Section II).
    """

    def __init__(self) -> None:
        self._adj: dict[Vertex, set[Vertex]] = {}
        self._num_edges = 0

    # -- mutation ---------------------------------------------------------

    def add_edge(self, u: Vertex, v: Vertex) -> Edge:
        """Insert the undirected edge ``{u, v}`` and return its canonical form.

        Raises :class:`~repro.errors.EdgeExistsError` if already present
        and :class:`~repro.errors.SelfLoopError` if ``u == v``.
        """
        edge = canonical_edge(u, v)
        a, b = edge
        neighbours = self._adj.setdefault(a, set())
        if b in neighbours:
            raise EdgeExistsError(f"edge {edge!r} already present")
        neighbours.add(b)
        self._adj.setdefault(b, set()).add(a)
        self._num_edges += 1
        return edge

    def remove_edge(self, u: Vertex, v: Vertex) -> Edge:
        """Delete the undirected edge ``{u, v}`` and return its canonical form.

        Vertices left isolated are dropped. Raises
        :class:`~repro.errors.EdgeNotFoundError` if the edge is absent.
        """
        edge = canonical_edge(u, v)
        a, b = edge
        neighbours = self._adj.get(a)
        if neighbours is None or b not in neighbours:
            raise EdgeNotFoundError(f"edge {edge!r} not present")
        neighbours.discard(b)
        if not neighbours:
            del self._adj[a]
        other = self._adj[b]
        other.discard(a)
        if not other:
            del self._adj[b]
        self._num_edges -= 1
        return edge

    def clear(self) -> None:
        """Remove all edges and vertices."""
        self._adj.clear()
        self._num_edges = 0

    # -- queries ----------------------------------------------------------

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return whether the undirected edge ``{u, v}`` is present."""
        if u == v:
            return False
        neighbours = self._adj.get(u)
        return neighbours is not None and v in neighbours

    def neighbors(self, v: Vertex) -> frozenset[Vertex]:
        """Return the neighbour set of ``v`` (empty if ``v`` is unknown)."""
        return frozenset(self._adj.get(v, ()))

    def degree(self, v: Vertex) -> int:
        """Return the degree of ``v`` (0 if ``v`` is unknown)."""
        return len(self._adj.get(v, ()))

    def common_neighbors(self, u: Vertex, v: Vertex) -> set[Vertex]:
        """Return vertices adjacent to both ``u`` and ``v``.

        This is the γ(M) primitive of Theorems 3/5: for triangle
        counting the per-event work is exactly this intersection.
        """
        nu = self._adj.get(u)
        nv = self._adj.get(v)
        if not nu or not nv:
            return set()
        if len(nu) > len(nv):
            nu, nv = nv, nu
        return {w for w in nu if w in nv}

    @property
    def num_edges(self) -> int:
        """Number of edges currently alive."""
        return self._num_edges

    @property
    def num_vertices(self) -> int:
        """Number of non-isolated vertices."""
        return len(self._adj)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over the non-isolated vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in canonical form (each edge once)."""
        for u, neighbours in self._adj.items():
            for v in neighbours:
                edge = canonical_edge(u, v)
                if edge[0] == u:
                    yield edge

    def __contains__(self, edge: Edge) -> bool:
        u, v = edge
        return self.has_edge(u, v)

    def __len__(self) -> int:
        return self._num_edges

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DynamicAdjacency(vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )
