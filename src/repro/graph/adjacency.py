"""Dynamic undirected graph adjacency structure.

:class:`DynamicAdjacency` is the in-memory graph substrate shared by the
samplers (for the *sampled* graph), the exact counters (for the *full*
graph during training / evaluation), and the pattern matchers. It
supports O(1) expected-time edge insertion/deletion/lookup and provides
the neighbourhood queries pattern enumeration needs (neighbours, common
neighbours, degree).

This class sits on the per-event hot path of every sampler, so it is
written for speed:

* ``neighbors_view`` / ``iter_neighbors`` expose the internal neighbour
  set without copying (the legacy ``neighbors`` still returns a
  defensive ``frozenset``);
* ``common_neighbors`` is a C-level set intersection;
* ``add_edge_canonical`` / ``remove_edge_canonical`` skip
  re-canonicalisation when the caller already holds a canonical edge
  (every sampler does — stream events are canonical by construction);
* every vertex is interned to a dense int id on first insertion
  (:class:`~repro.graph.interning.VertexInterner`), giving the pattern
  enumerators an allocation-free, identity-consistent sort order.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import EdgeExistsError, EdgeNotFoundError
from repro.graph.edges import Edge, Vertex, canonical_edge
from repro.graph.interning import VertexInterner

__all__ = ["DynamicAdjacency"]

#: Shared immutable empty neighbourhood returned for unknown vertices.
_EMPTY: frozenset = frozenset()


class DynamicAdjacency:
    """An undirected simple graph under edge insertions and deletions.

    Vertices are created implicitly by edge insertion and removed
    implicitly when their last incident edge is deleted (so
    ``num_vertices`` counts non-isolated vertices, matching the induced
    graph G(t) of Section II).
    """

    __slots__ = ("_adj", "_num_edges", "_interner")

    def __init__(self) -> None:
        self._adj: dict[Vertex, set[Vertex]] = {}
        self._num_edges = 0
        self._interner = VertexInterner()

    # -- mutation ---------------------------------------------------------

    def add_edge(self, u: Vertex, v: Vertex) -> Edge:
        """Insert the undirected edge ``{u, v}`` and return its canonical form.

        Raises :class:`~repro.errors.EdgeExistsError` if already present
        and :class:`~repro.errors.SelfLoopError` if ``u == v``.
        """
        edge = canonical_edge(u, v)
        self.add_edge_canonical(edge)
        return edge

    def add_edge_canonical(self, edge: Edge) -> None:
        """Insert an edge already in canonical form (no re-sorting).

        The caller guarantees ``edge`` came from
        :func:`~repro.graph.edges.canonical_edge` (stream events always
        do); only the duplicate-edge check is performed here.
        """
        a, b = edge
        adj = self._adj
        neighbours = adj.get(a)
        if neighbours is None:
            adj[a] = {b}
            self._interner.intern(a)
        elif b in neighbours:
            raise EdgeExistsError(f"edge {edge!r} already present")
        else:
            neighbours.add(b)
        other = adj.get(b)
        if other is None:
            adj[b] = {a}
            self._interner.intern(b)
        else:
            other.add(a)
        self._num_edges += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> Edge:
        """Delete the undirected edge ``{u, v}`` and return its canonical form.

        Vertices left isolated are dropped. Raises
        :class:`~repro.errors.EdgeNotFoundError` if the edge is absent.
        """
        edge = canonical_edge(u, v)
        self.remove_edge_canonical(edge)
        return edge

    def remove_edge_canonical(self, edge: Edge) -> None:
        """Delete an edge already in canonical form (no re-sorting)."""
        a, b = edge
        adj = self._adj
        neighbours = adj.get(a)
        if neighbours is None or b not in neighbours:
            raise EdgeNotFoundError(f"edge {edge!r} not present")
        neighbours.remove(b)
        if not neighbours:
            del adj[a]
        other = adj[b]
        other.remove(a)
        if not other:
            del adj[b]
        self._num_edges -= 1

    def clear(self) -> None:
        """Remove all edges and vertices (and reset interned ids)."""
        self._adj.clear()
        self._num_edges = 0
        self._interner.clear()

    # -- queries ----------------------------------------------------------

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return whether the undirected edge ``{u, v}`` is present."""
        if u == v:
            return False
        neighbours = self._adj.get(u)
        return neighbours is not None and v in neighbours

    def neighbors(self, v: Vertex) -> frozenset[Vertex]:
        """Return a defensive copy of the neighbour set of ``v``.

        Copies on every call; hot paths should use
        :meth:`neighbors_view` or :meth:`iter_neighbors` instead.
        """
        return frozenset(self._adj.get(v, ()))

    def neighbors_view(self, v: Vertex):
        """Return the *live* neighbour set of ``v`` without copying.

        The returned set is the internal adjacency entry: it must not be
        mutated, and it changes underneath the caller on subsequent
        ``add_edge`` / ``remove_edge`` calls (iterate before mutating).
        Unknown vertices yield a shared empty frozenset.
        """
        return self._adj.get(v, _EMPTY)

    def iter_neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate the neighbours of ``v`` without copying."""
        return iter(self._adj.get(v, ()))

    def degree(self, v: Vertex) -> int:
        """Return the degree of ``v`` (0 if ``v`` is unknown)."""
        return len(self._adj.get(v, ()))

    def common_neighbors(self, u: Vertex, v: Vertex) -> set[Vertex]:
        """Return vertices adjacent to both ``u`` and ``v``.

        This is the γ(M) primitive of Theorems 3/5: for triangle
        counting the per-event work is exactly this intersection (done
        at C level; Python's set intersection iterates the smaller
        operand).
        """
        nu = self._adj.get(u)
        if not nu:
            return set()
        nv = self._adj.get(v)
        if not nv:
            return set()
        return nu & nv

    # -- interning ---------------------------------------------------------

    @property
    def interner(self) -> VertexInterner:
        """The label ↔ dense-id mapping for every vertex ever inserted."""
        return self._interner

    def vertex_id(self, v: Vertex) -> int:
        """Dense int id of ``v`` (KeyError if ``v`` was never inserted).

        Ids are assigned in first-insertion order and survive vertex
        removal, so they provide a stable, identity-consistent total
        order over all vertices seen so far.
        """
        return self._interner.id_of(v)

    def sort_by_id(self, vertices: Iterable[Vertex]) -> list[Vertex]:
        """Sort ``vertices`` by interned id — the allocation-free
        replacement for ``sorted(..., key=repr)`` in the enumerators."""
        return self._interner.sorted(vertices)

    @property
    def num_edges(self) -> int:
        """Number of edges currently alive."""
        return self._num_edges

    @property
    def num_vertices(self) -> int:
        """Number of non-isolated vertices."""
        return len(self._adj)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over the non-isolated vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in canonical form (each edge once)."""
        for u, neighbours in self._adj.items():
            for v in neighbours:
                edge = canonical_edge(u, v)
                if edge[0] == u:
                    yield edge

    def __contains__(self, edge: Edge) -> bool:
        u, v = edge
        return self.has_edge(u, v)

    def __len__(self) -> int:
        return self._num_edges

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DynamicAdjacency(vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )
