"""Canonical undirected-edge representation.

Throughout the library an edge is a 2-tuple ``(u, v)`` of hashable
vertex identifiers with ``u < v`` (after normalisation), so that the
same undirected edge always hashes identically. The paper ignores
directions, weights and self-loops (Section V-A); this module enforces
those conventions at one choke point.
"""

from __future__ import annotations

from typing import Hashable, Tuple

from repro.errors import SelfLoopError

__all__ = ["Edge", "Vertex", "canonical_edge"]

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical (sorted) form of the undirected edge ``{u, v}``.

    Raises :class:`~repro.errors.SelfLoopError` if ``u == v``. Vertices
    of mixed types are ordered by ``(type name, value repr)`` so the
    canonical form is still deterministic.
    """
    if u == v:
        raise SelfLoopError(f"self-loop on vertex {u!r} is not allowed")
    try:
        return (u, v) if u < v else (v, u)  # type: ignore[operator]
    except TypeError:
        # Mixed vertex types (e.g. int and str): fall back to a stable
        # type-aware ordering so canonicalisation remains deterministic.
        key_u = (type(u).__name__, repr(u))
        key_v = (type(v).__name__, repr(v))
        return (u, v) if key_u < key_v else (v, u)
