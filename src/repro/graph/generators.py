"""Synthetic graph generators producing edges in natural (temporal) order.

The paper evaluates on four categories of real graphs plus synthetic
Forest-Fire graphs (Section V-A). With no network access, this module
provides from-scratch generators whose edge *order* is the generation
order, which mimics the "natural order" temporal semantics the paper
relies on (densification, recency locality):

* :func:`forest_fire` — Leskovec et al.'s Forest Fire model, used by the
  paper for all synthetic data (``G(n, p)``).
* :func:`barabasi_albert` — preferential attachment (social-network-like
  degree skew).
* :func:`powerlaw_cluster` — preferential attachment with triadic
  closure (high clustering, social-network stand-in).
* :func:`copying_model` — the web-graph copying model (web stand-in).
* :func:`planted_partition` — community-structured graphs (community
  stand-in).
* :func:`erdos_renyi` — G(n, m) baseline for tests.

All generators return ``list[Edge]`` with canonical edges, no
duplicates, no self-loops, and accept a ``rng`` seed for repeatability.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.edges import Edge, canonical_edge
from repro.utils.rng import ensure_rng

__all__ = [
    "forest_fire",
    "barabasi_albert",
    "powerlaw_cluster",
    "copying_model",
    "planted_partition",
    "erdos_renyi",
]


def _check_positive(name: str, value: int) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


def forest_fire(
    n: int,
    p: float = 0.5,
    backward_ratio: float = 0.32,
    rng: np.random.Generator | int | None = None,
) -> list[Edge]:
    """Generate a Forest Fire graph with ``n`` vertices.

    Vertices arrive one at a time (vertex ``t`` at step ``t``). Each new
    vertex picks a uniformly random ambassador among the earlier
    vertices, links to it, and then "burns" outward: from each burning
    vertex it links to ``x ~ Geometric(1-p)`` of its not-yet-burned
    neighbours (and ``x * backward_ratio`` extra ones, approximating the
    backward-burning of the directed model on our undirected graphs),
    recursively. ``p`` is the forward burning probability — exactly the
    density knob the paper calls ``p`` in ``G(n, p)``.

    Returns edges in creation order, which densifies over time and has
    strong recency locality — the temporal properties the paper's
    WSD-L exploits.
    """
    _check_positive("n", n)
    _check_probability("p", p)
    gen = ensure_rng(rng)
    adj: list[set[int]] = [set() for _ in range(n)]
    edges: list[Edge] = []
    # Geometric mean number of links per burned vertex; p -> 1 blows up,
    # so cap the per-vertex burn to keep generation near-linear.
    burn_cap = 64

    def add_edge(u: int, v: int) -> None:
        if u != v and v not in adj[u]:
            adj[u].add(v)
            adj[v].add(u)
            edges.append(canonical_edge(u, v))

    for t in range(1, n):
        ambassador = int(gen.integers(0, t))
        add_edge(t, ambassador)
        visited = {t, ambassador}
        frontier = [ambassador]
        burned = 0
        while frontier and burned < burn_cap:
            w = frontier.pop()
            candidates = [x for x in adj[w] if x not in visited]
            if not candidates:
                continue
            # x ~ Geometric(1 - p): number of forward links to burn.
            mean_links = p / (1.0 - p) if p < 1.0 else burn_cap
            k = int(gen.geometric(1.0 - p)) - 1 if p < 1.0 else burn_cap
            k += int(round(mean_links * backward_ratio))
            k = min(k, len(candidates), burn_cap - burned)
            if k <= 0:
                continue
            picks = gen.choice(len(candidates), size=k, replace=False)
            for idx in picks:
                x = candidates[int(idx)]
                add_edge(t, x)
                visited.add(x)
                frontier.append(x)
                burned += 1
    return edges


def barabasi_albert(
    n: int,
    m: int = 3,
    rng: np.random.Generator | int | None = None,
) -> list[Edge]:
    """Generate a Barabási–Albert preferential-attachment graph.

    Each arriving vertex attaches to ``m`` distinct existing vertices
    chosen proportionally to degree (implemented with the standard
    repeated-endpoints trick). Edges are returned in creation order.
    """
    _check_positive("n", n)
    _check_positive("m", m)
    if n <= m:
        raise ConfigurationError(f"n must exceed m, got n={n}, m={m}")
    gen = ensure_rng(rng)
    edges: list[Edge] = []
    # Seed: a star on vertices 0..m keeps early degrees non-degenerate.
    repeated: list[int] = []
    for v in range(1, m + 1):
        edges.append(canonical_edge(0, v))
        repeated.extend((0, v))
    for t in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(repeated[int(gen.integers(0, len(repeated)))])
        for target in targets:
            edges.append(canonical_edge(t, target))
            repeated.extend((t, target))
    return edges


def powerlaw_cluster(
    n: int,
    m: int = 3,
    triangle_probability: float = 0.6,
    rng: np.random.Generator | int | None = None,
) -> list[Edge]:
    """Generate a Holme–Kim power-law graph with tunable clustering.

    Like :func:`barabasi_albert`, but after each preferential link the
    next link closes a triangle (connects to a random neighbour of the
    previous target) with probability ``triangle_probability``. High
    clustering makes it a good stand-in for online social networks,
    where the paper's motivating triangle structure is dense.
    """
    _check_positive("n", n)
    _check_positive("m", m)
    _check_probability("triangle_probability", triangle_probability)
    if n <= m:
        raise ConfigurationError(f"n must exceed m, got n={n}, m={m}")
    gen = ensure_rng(rng)
    edges: list[Edge] = []
    adj: dict[int, set[int]] = {v: set() for v in range(n)}
    repeated: list[int] = []

    def add_edge(u: int, v: int) -> bool:
        if u == v or v in adj[u]:
            return False
        adj[u].add(v)
        adj[v].add(u)
        edges.append(canonical_edge(u, v))
        repeated.extend((u, v))
        return True

    for v in range(1, m + 1):
        add_edge(0, v)
    for t in range(m + 1, n):
        added = 0
        last_target: int | None = None
        guard = 0
        while added < m and guard < 50 * m:
            guard += 1
            close = (
                last_target is not None
                and adj[last_target]
                and gen.random() < triangle_probability
            )
            if close:
                neighbours = tuple(adj[last_target])
                candidate = neighbours[int(gen.integers(0, len(neighbours)))]
            else:
                candidate = repeated[int(gen.integers(0, len(repeated)))]
            if add_edge(t, candidate):
                added += 1
                last_target = candidate
    return edges


def copying_model(
    n: int,
    out_degree: int = 4,
    copy_probability: float = 0.7,
    rng: np.random.Generator | int | None = None,
) -> list[Edge]:
    """Generate a web-like graph via the Kleinberg copying model.

    Each new page picks a random earlier "prototype" page, links to it,
    and then links to ``out_degree`` further targets; each target is,
    with probability ``copy_probability``, copied from the prototype's
    link list, otherwise chosen uniformly. Copying the prototype's
    links while also linking the prototype yields the heavy-tailed
    in-degrees, dense bipartite cores and abundant triangles typical of
    web graphs — our stand-in for web-Stanford / web-google.
    """
    _check_positive("n", n)
    _check_positive("out_degree", out_degree)
    _check_probability("copy_probability", copy_probability)
    gen = ensure_rng(rng)
    edges: list[Edge] = []
    out_links: list[list[int]] = [[] for _ in range(n)]
    seen: set[Edge] = set()
    start = out_degree + 1

    def add_edge(u: int, v: int) -> None:
        if u == v:
            return
        edge = canonical_edge(u, v)
        if edge in seen:
            return
        seen.add(edge)
        edges.append(edge)
        out_links[u].append(v)

    for v in range(1, start):
        add_edge(v, v - 1)
    for t in range(start, n):
        prototype = int(gen.integers(0, t))
        add_edge(t, prototype)
        proto_links = out_links[prototype]
        for j in range(out_degree):
            if proto_links and gen.random() < copy_probability:
                target = proto_links[int(gen.integers(0, len(proto_links)))]
            else:
                target = int(gen.integers(0, t))
            add_edge(t, target)
    return edges


def planted_partition(
    n: int,
    communities: int = 8,
    p_in: float = 0.08,
    p_out: float = 0.002,
    rng: np.random.Generator | int | None = None,
) -> list[Edge]:
    """Generate a community-structured (planted partition) graph.

    Vertices are split into ``communities`` equal blocks; each
    intra-block pair is an edge with probability ``p_in`` and each
    inter-block pair with probability ``p_out``. Edges are emitted
    block by block then shuffled within a sliding window, giving a
    natural order with community-burst locality — our stand-in for
    com-DBLP / com-youtube.
    """
    _check_positive("n", n)
    _check_positive("communities", communities)
    _check_probability("p_in", p_in)
    _check_probability("p_out", p_out)
    gen = ensure_rng(rng)
    block = np.arange(n) % communities
    edges: list[Edge] = []
    # Sample intra-community edges per block with vectorised coin flips.
    for c in range(communities):
        members = np.flatnonzero(block == c)
        k = len(members)
        if k >= 2:
            iu, iv = np.triu_indices(k, k=1)
            mask = gen.random(len(iu)) < p_in
            for a, b in zip(members[iu[mask]], members[iv[mask]]):
                edges.append(canonical_edge(int(a), int(b)))
    # Sparse inter-community edges: sample the expected number of pairs.
    total_pairs = n * (n - 1) // 2
    expected_out = int(p_out * total_pairs)
    attempts = 0
    seen = set(edges)
    while expected_out > 0 and attempts < 20 * expected_out:
        attempts += 1
        u = int(gen.integers(0, n))
        v = int(gen.integers(0, n))
        if u == v or block[u] == block[v]:
            continue
        edge = canonical_edge(u, v)
        if edge in seen:
            continue
        seen.add(edge)
        edges.append(edge)
        expected_out -= 1
    # Locality-preserving shuffle: permute within windows so community
    # bursts remain but exact generation order is randomised.
    window = max(16, len(edges) // 50)
    for lo in range(0, len(edges), window):
        hi = min(lo + window, len(edges))
        perm = gen.permutation(hi - lo)
        edges[lo:hi] = [edges[lo + int(i)] for i in perm]
    return edges


def erdos_renyi(
    n: int,
    num_edges: int,
    rng: np.random.Generator | int | None = None,
) -> list[Edge]:
    """Generate a uniform G(n, m) random graph with exactly ``num_edges`` edges.

    Used mainly in tests; real and paper-like workloads should prefer
    the skewed generators above.
    """
    _check_positive("n", n)
    max_edges = n * (n - 1) // 2
    if not 0 <= num_edges <= max_edges:
        raise ConfigurationError(
            f"num_edges must be in [0, {max_edges}], got {num_edges}"
        )
    gen = ensure_rng(rng)
    seen: set[Edge] = set()
    edges: list[Edge] = []
    while len(edges) < num_edges:
        u = int(gen.integers(0, n))
        v = int(gen.integers(0, n))
        if u == v:
            continue
        edge = canonical_edge(u, v)
        if edge in seen:
            continue
        seen.add(edge)
        edges.append(edge)
    return edges
