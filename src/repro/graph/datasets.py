"""Dataset registry: seeded stand-ins for the paper's evaluation graphs.

The paper evaluates on eight real graphs from the Network Repository
(Table I) grouped in four categories, with a train/test graph per
category, plus Forest-Fire synthetic graphs. Those files are not
available offline, so this registry generates *stand-ins*: for each
dataset name, a deterministic synthetic graph from the generator whose
mechanism matches the category (see DESIGN.md §2). Sizes are scaled to
laptop scale but preserve the train < test size relationship of
Table I.

Usage::

    edges = load_dataset("cit-PT")                # default scale
    edges = load_dataset("com-YT", scale=2.0)     # 2x edges
    info = DATASETS["web-GL"]

Loading a real edge-list file instead is supported through
:func:`load_edge_list`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import DatasetError
from repro.graph.edges import Edge, canonical_edge
from repro.graph import generators
from repro.utils.rng import derive_seed

__all__ = [
    "DatasetInfo",
    "DATASETS",
    "TRAIN_TEST_PAIRS",
    "load_dataset",
    "load_edge_list",
    "dataset_names",
]


@dataclass(frozen=True)
class DatasetInfo:
    """Metadata for one registry entry.

    ``base_vertices`` controls the default generated size; ``category``
    matches the paper's grouping (citation / community / social / web /
    synthetic); ``role`` is ``"train"`` or ``"test"`` per Table I.
    """

    name: str
    category: str
    role: str
    base_vertices: int
    factory: Callable[[int, np.random.Generator], list[Edge]]
    paper_edges: str

    def generate(self, scale: float = 1.0, seed: int = 0) -> list[Edge]:
        """Generate the stand-in edge list at ``scale`` times default size."""
        n = max(8, int(self.base_vertices * scale))
        rng = np.random.default_rng(derive_seed(seed, f"dataset:{self.name}"))
        return self.factory(n, rng)


def _citation(n: int, rng: np.random.Generator) -> list[Edge]:
    # Citation graphs: Forest Fire was designed to model them.
    return generators.forest_fire(n, p=0.48, backward_ratio=0.4, rng=rng)


def _community(n: int, rng: np.random.Generator) -> list[Edge]:
    communities = max(4, n // 250)
    return generators.planted_partition(
        n, communities=communities, p_in=min(0.25, 40.0 / max(n // communities, 2)),
        p_out=min(0.01, 2.0 / n), rng=rng,
    )


def _social(n: int, rng: np.random.Generator) -> list[Edge]:
    return generators.powerlaw_cluster(n, m=8, triangle_probability=0.85, rng=rng)


def _web(n: int, rng: np.random.Generator) -> list[Edge]:
    return generators.copying_model(n, out_degree=6, copy_probability=0.85, rng=rng)


def _synthetic(n: int, rng: np.random.Generator) -> list[Edge]:
    # The paper's synthetic data: Forest Fire G(n, p=0.5).
    return generators.forest_fire(n, p=0.5, rng=rng)


def _entry(
    name: str,
    category: str,
    role: str,
    base_vertices: int,
    factory: Callable[[int, np.random.Generator], list[Edge]],
    paper_edges: str,
) -> tuple[str, DatasetInfo]:
    return name, DatasetInfo(name, category, role, base_vertices, factory,
                             paper_edges)


#: Registry keyed by the paper's dataset abbreviations (Table I).
DATASETS: dict[str, DatasetInfo] = dict(
    [
        _entry("cit-HE", "citation", "train", 1200, _citation, "2.67M"),
        _entry("cit-PT", "citation", "test", 3000, _citation, "16.5M"),
        _entry("com-DB", "community", "train", 1500, _community, "1.04M"),
        _entry("com-YT", "community", "test", 3000, _community, "2.99M"),
        _entry("soc-TX", "social", "train", 800, _social, "1.59M"),
        _entry("soc-TW", "social", "test", 2500, _social, "265M"),
        _entry("web-SF", "web", "train", 1000, _web, "2.31M"),
        _entry("web-GL", "web", "test", 2500, _web, "5.10M"),
        _entry("synthetic", "synthetic", "test", 2000, _synthetic, "~5M"),
        _entry("synthetic-train", "synthetic", "train", 1000, _synthetic, "-"),
    ]
)

#: (train, test) dataset names per category, mirroring Table I.
TRAIN_TEST_PAIRS: dict[str, tuple[str, str]] = {
    "citation": ("cit-HE", "cit-PT"),
    "community": ("com-DB", "com-YT"),
    "social": ("soc-TX", "soc-TW"),
    "web": ("web-SF", "web-GL"),
    "synthetic": ("synthetic-train", "synthetic"),
}


def dataset_names(role: str | None = None) -> list[str]:
    """Return registry names, optionally filtered by role (train/test)."""
    return [
        name
        for name, info in DATASETS.items()
        if role is None or info.role == role
    ]


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> list[Edge]:
    """Generate the stand-in edge list for dataset ``name``.

    ``scale`` multiplies the default vertex count; ``seed`` selects the
    deterministic instance (the same ``(name, scale, seed)`` always
    produces the same edges).
    """
    info = DATASETS.get(name)
    if info is None:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {sorted(DATASETS)}"
        )
    return info.generate(scale=scale, seed=seed)


def load_edge_list(path: str | Path, vertex_type: type = int) -> list[Edge]:
    """Load an edge list from a whitespace-separated text file.

    Each non-comment line must contain at least two tokens ``u v``;
    directions, duplicate edges and self-loops are dropped, matching the
    paper's preprocessing (Section V-A).
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"edge list file not found: {path}")
    edges: list[Edge] = []
    seen: set[Edge] = set()
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith(("#", "%")):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise DatasetError(f"malformed edge line: {raw!r}")
        u, v = vertex_type(parts[0]), vertex_type(parts[1])
        if u == v:
            continue
        edge = canonical_edge(u, v)
        if edge in seen:
            continue
        seen.add(edge)
        edges.append(edge)
    return edges
