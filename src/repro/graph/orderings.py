"""Stream orderings: natural, uniform-at-random, and random-BFS.

Experiment (3) of the paper (Figures 2a/4a) measures robustness of the
samplers to the *ordering* of edge insertions. Following [Triest], three
orderings are used:

* **natural** — the order edges were generated/collected (identity).
* **UAR** — a uniformly random permutation of the natural order.
* **RBFS** — start a breadth-first search from a random vertex of the
  final graph and emit edges in the order BFS discovers them (a model of
  a celebrity joining a platform and followers linking in a burst).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.edges import Edge, canonical_edge
from repro.utils.rng import ensure_rng

__all__ = ["ORDERINGS", "order_edges", "natural_order", "uar_order", "rbfs_order"]


def natural_order(edges: list[Edge]) -> list[Edge]:
    """Return the edges unchanged (the natural ordering)."""
    return list(edges)


def uar_order(
    edges: list[Edge], rng: np.random.Generator | int | None = None
) -> list[Edge]:
    """Return a uniformly random permutation of ``edges``."""
    gen = ensure_rng(rng)
    perm = gen.permutation(len(edges))
    return [edges[int(i)] for i in perm]


def rbfs_order(
    edges: list[Edge], rng: np.random.Generator | int | None = None
) -> list[Edge]:
    """Return edges in random-BFS discovery order.

    BFS starts from a random vertex; when a vertex is dequeued, all its
    incident edges to not-yet-emitted endpoints are emitted in random
    order. Components not reached from the first root get fresh random
    roots until every edge is emitted.
    """
    gen = ensure_rng(rng)
    adj: dict[object, list[object]] = {}
    for u, v in edges:
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, []).append(u)
    vertices = list(adj)
    emitted: set[Edge] = set()
    visited: set[object] = set()
    result: list[Edge] = []

    def bfs(root: object) -> None:
        queue: deque[object] = deque([root])
        visited.add(root)
        while queue:
            u = queue.popleft()
            neighbours = list(adj[u])
            gen.shuffle(neighbours)
            for v in neighbours:
                edge = canonical_edge(u, v)
                if edge not in emitted:
                    emitted.add(edge)
                    result.append(edge)
                if v not in visited:
                    visited.add(v)
                    queue.append(v)

    order = gen.permutation(len(vertices))
    for idx in order:
        root = vertices[int(idx)]
        if root not in visited:
            bfs(root)
    return result


ORDERINGS = {
    "natural": natural_order,
    "uar": uar_order,
    "rbfs": rbfs_order,
}


def order_edges(
    edges: list[Edge],
    ordering: str,
    rng: np.random.Generator | int | None = None,
) -> list[Edge]:
    """Reorder ``edges`` with the named ordering (``natural``/``uar``/``rbfs``)."""
    key = ordering.lower()
    if key not in ORDERINGS:
        raise ConfigurationError(
            f"unknown ordering {ordering!r}; choose from {sorted(ORDERINGS)}"
        )
    if key == "natural":
        return natural_order(edges)
    return ORDERINGS[key](edges, rng)
