"""Algorithm factory and the WSD-L policy store.

Maps the paper's algorithm names (Table II columns) to sampler
instances. WSD-L needs a trained policy per (training dataset, pattern,
scenario); :class:`PolicyStore` trains them lazily (mirroring the
paper's offline-training / online-deployment split) and caches them in
memory and optionally on disk.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.config import ScenarioConfig
from repro.graph.datasets import DATASETS, TRAIN_TEST_PAIRS, load_dataset
from repro.rl.policy import Policy
from repro.rl.training import (
    TrainingConfig,
    make_training_streams,
    train_weight_policy,
)
from repro.samplers.base import SubgraphCountingSampler
from repro.samplers.gps import GPS
from repro.samplers.gps_a import GPSA
from repro.samplers.thinkd import ThinkD
from repro.samplers.triest import Triest
from repro.samplers.wrs import WRS
from repro.samplers.wsd import WSD
from repro.utils.timer import Timer
from repro.weights.heuristic import GPSHeuristicWeight, UniformWeight
from repro.weights.learned import LearnedWeight

__all__ = [
    "ALGORITHMS",
    "DYNAMIC_ALGORITHMS",
    "make_sampler",
    "PolicyStore",
    "training_dataset_for",
]

#: Algorithm names in the paper's table column order.
DYNAMIC_ALGORITHMS = ("WSD-L", "WSD-H", "GPS-A", "Triest", "ThinkD", "WRS")
ALGORITHMS = DYNAMIC_ALGORITHMS + ("GPS", "WSD-U")


def training_dataset_for(test_dataset: str) -> str:
    """Return the same-category training graph for a test graph (Table I)."""
    info = DATASETS.get(test_dataset)
    if info is None:
        raise ConfigurationError(f"unknown dataset {test_dataset!r}")
    train, _ = TRAIN_TEST_PAIRS[info.category]
    return train


def make_sampler(
    name: str,
    pattern: str,
    budget: int,
    rng: np.random.Generator | int | None = None,
    policy: Policy | None = None,
    temporal_aggregation: str = "max",
) -> SubgraphCountingSampler:
    """Instantiate an algorithm by its paper name.

    ``policy`` is required for WSD-L; ``temporal_aggregation`` threads
    through to its state features (Table XIII ablation).
    """
    key = name.upper().replace("_", "-")
    if key == "WSD-L":
        if policy is None:
            raise ConfigurationError("WSD-L requires a trained policy")
        weight_fn = LearnedWeight(
            policy, temporal_aggregation=temporal_aggregation
        )
        return WSD(pattern, budget, weight_fn, rng=rng)
    if key == "WSD-H":
        return WSD(pattern, budget, GPSHeuristicWeight(), rng=rng)
    if key == "WSD-U":
        return WSD(pattern, budget, UniformWeight(), rng=rng)
    if key == "GPS-A":
        return GPSA(pattern, budget, GPSHeuristicWeight(), rng=rng)
    if key == "GPS":
        return GPS(pattern, budget, GPSHeuristicWeight(), rng=rng)
    if key == "TRIEST":
        return Triest(pattern, budget, rng=rng)
    if key == "THINKD":
        return ThinkD(pattern, budget, rng=rng)
    if key == "WRS":
        return WRS(pattern, budget, rng=rng)
    raise ConfigurationError(
        f"unknown algorithm {name!r}; known: {sorted(ALGORITHMS)}"
    )


class PolicyStore:
    """Lazy, cached WSD-L policy trainer.

    Policies are keyed by (training dataset, pattern, scenario name,
    temporal aggregation). Training follows the paper: streams are
    generated from the *training* graph with the same scenario
    parameters as the evaluation, and the learned actor is frozen into a
    :class:`~repro.rl.policy.Policy`.
    """

    def __init__(
        self,
        iterations: int = 300,
        num_streams: int = 4,
        dataset_scale: float = 1.0,
        cache_dir: str | Path | None = None,
        seed: int = 7,
    ) -> None:
        self.iterations = iterations
        self.num_streams = num_streams
        self.dataset_scale = dataset_scale
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.seed = seed
        self._cache: dict[tuple, Policy] = {}
        #: Wall-clock training seconds per key (Tables IV/XI).
        self.training_seconds: dict[tuple, float] = {}

    def _key(
        self,
        train_dataset: str,
        pattern: str,
        scenario: ScenarioConfig,
        temporal_aggregation: str,
    ) -> tuple:
        return (
            train_dataset,
            pattern,
            scenario.name,
            round(scenario.effective_beta, 4),
            temporal_aggregation,
        )

    def _cache_path(self, key: tuple) -> Path | None:
        if self.cache_dir is None:
            return None
        fname = "policy-" + "-".join(str(part) for part in key) + ".npz"
        return self.cache_dir / fname.replace("/", "_")

    def get(
        self,
        train_dataset: str,
        pattern: str,
        scenario: ScenarioConfig,
        temporal_aggregation: str = "max",
        budget: int | None = None,
    ) -> Policy:
        """Return (training if necessary) the policy for this key."""
        key = self._key(train_dataset, pattern, scenario, temporal_aggregation)
        if key in self._cache:
            return self._cache[key]
        path = self._cache_path(key)
        if path is not None and path.exists():
            policy = Policy.load(path)
            self._cache[key] = policy
            self.training_seconds.setdefault(
                key, float(policy.metadata.get("training_seconds", 0.0))
            )
            return policy

        edges = load_dataset(
            train_dataset, scale=self.dataset_scale, seed=self.seed
        )
        streams = make_training_streams(
            edges,
            scenario.name if scenario.name != "insertion-only" else "insertion-only",
            num_streams=self.num_streams,
            alpha=(
                min(1.0, scenario.alpha / max(len(edges), 1))
                if scenario.name == "massive"
                else None
            ),
            beta=scenario.effective_beta
            if scenario.name != "insertion-only"
            else None,
            seed=self.seed,
        )
        if budget is None:
            budget = max(8, int(len(edges) * 0.04))
        config = TrainingConfig(
            iterations=self.iterations,
            num_streams=self.num_streams,
            temporal_aggregation=temporal_aggregation,
        )
        with Timer() as timer:
            result = train_weight_policy(
                streams, pattern, budget, config=config, seed=self.seed
            )
        policy = result.policy
        policy.metadata["training_seconds"] = timer.seconds
        policy.metadata["train_dataset"] = train_dataset
        self.training_seconds[key] = timer.seconds
        self._cache[key] = policy
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            policy.save(path)
        return policy
