"""Compile benchmark artefacts into a single markdown report.

``pytest benchmarks/ --benchmark-only`` writes one text artefact per
paper table/figure into ``benchmarks/results/``. This module stitches
them into one markdown document (the measured side of EXPERIMENTS.md),
so reruns can be diffed and shared as a single file::

    python -m repro.experiments.report benchmarks/results report.md
"""

from __future__ import annotations

import sys
from collections.abc import Sequence
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = ["ARTEFACT_ORDER", "compile_report", "main"]

#: Canonical artefact order: paper tables first, figures, extensions.
ARTEFACT_ORDER = (
    "table02_wedges_massive",
    "table03_triangles_massive",
    "table04_training_time_massive",
    "table05_transferability_massive",
    "table06_insertion_only",
    "table07_4cliques_massive",
    "table08_wedges_light",
    "table09_triangles_light",
    "table10_4cliques_light",
    "table11_training_time_light",
    "table12_transferability_light",
    "table13_ablation",
    "fig1_scalability_massive",
    "fig2a_ordering_massive",
    "fig2b_reservoir_size_massive",
    "fig2c_training_size_massive",
    "fig2d_weight_relationship_massive",
    "fig3_scalability_light",
    "fig4a_ordering_light",
    "fig4b_reservoir_size_light",
    "fig4c_training_size_light",
    "fig4d_weight_relationship_light",
    "fig5_beta_sweep",
    "ablation_rank_functions",
    "extension_three_path",
)

_TITLES = {
    "table02_wedges_massive": "Table II — wedges, massive deletion",
    "table03_triangles_massive": "Table III — triangles, massive deletion",
    "table04_training_time_massive": "Table IV — training time, massive",
    "table05_transferability_massive": "Table V — transferability, massive",
    "table06_insertion_only": "Table VI — insertion-only scenario",
    "table07_4cliques_massive": "Table VII — 4-cliques, massive deletion",
    "table08_wedges_light": "Table VIII — wedges, light deletion",
    "table09_triangles_light": "Table IX — triangles, light deletion",
    "table10_4cliques_light": "Table X — 4-cliques, light deletion",
    "table11_training_time_light": "Table XI — training time, light",
    "table12_transferability_light": "Table XII — transferability, light",
    "table13_ablation": "Table XIII — temporal aggregation ablation",
    "fig1_scalability_massive": "Figure 1 — scalability, massive",
    "fig2a_ordering_massive": "Figure 2(a) — stream ordering, massive",
    "fig2b_reservoir_size_massive": "Figure 2(b) — reservoir size, massive",
    "fig2c_training_size_massive": "Figure 2(c) — training size, massive",
    "fig2d_weight_relationship_massive": "Figure 2(d) — weight vs count, massive",
    "fig3_scalability_light": "Figure 3 — scalability, light",
    "fig4a_ordering_light": "Figure 4(a) — stream ordering, light",
    "fig4b_reservoir_size_light": "Figure 4(b) — reservoir size, light",
    "fig4c_training_size_light": "Figure 4(c) — training size, light",
    "fig4d_weight_relationship_light": "Figure 4(d) — weight vs count, light",
    "fig5_beta_sweep": "Figure 5 — beta sweeps",
    "ablation_rank_functions": "Extension — rank-family ablation",
    "extension_three_path": "Extension — 3-path counting",
}


def compile_report(results_dir: str | Path) -> str:
    """Render every present artefact as a markdown section.

    Missing artefacts are listed at the top so partial runs are visible
    at a glance; unknown extra files are appended at the end.
    """
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise ConfigurationError(f"results directory not found: {results_dir}")
    present = {p.stem: p for p in sorted(results_dir.glob("*.txt"))}
    missing = [name for name in ARTEFACT_ORDER if name not in present]
    extras = [name for name in present if name not in ARTEFACT_ORDER]

    lines = ["# WSD reproduction — measured results", ""]
    if missing:
        lines.append(
            "Missing artefacts (bench not yet run): " + ", ".join(missing)
        )
        lines.append("")
    for name in ARTEFACT_ORDER:
        path = present.get(name)
        if path is None:
            continue
        lines.append(f"## {_TITLES.get(name, name)}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text(encoding="utf-8").rstrip())
        lines.append("```")
        lines.append("")
    for name in extras:
        lines.append(f"## {name}")
        lines.append("")
        lines.append("```")
        lines.append(present[name].read_text(encoding="utf-8").rstrip())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not 1 <= len(args) <= 2:
        print(
            "usage: python -m repro.experiments.report "
            "<results_dir> [output.md]",
            file=sys.stderr,
        )
        return 2
    report = compile_report(args[0])
    if len(args) == 2:
        Path(args[1]).write_text(report, encoding="utf-8")
        print(f"wrote {args[1]}")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
