"""Regenerate every figure of the paper's evaluation as data series.

Figures are reproduced as numeric series (x, y) per curve — the same
data the paper plots — rendered as aligned text by
:meth:`FigureResult.format`. The mapping to paper figures:

* :func:`figure_scalability` — Figures 1 (massive) and 3 (light):
  ARE and running time of WSD-L/WSD-H vs stream size.
* :func:`figure_ordering` — Figures 2(a)/4(a): ARE per stream ordering.
* :func:`figure_reservoir_size` — Figures 2(b)/4(b): ARE vs M.
* :func:`figure_training_size` — Figures 2(c)/4(c): training time and
  ARE vs training-graph size.
* :func:`figure_weight_relationship` — Figures 2(d)/4(d): learned edge
  weight vs the edge's triangle count.
* :func:`figure_beta_sweep` — Figure 5: ARE vs β_m / β_l.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.algorithms import (
    DYNAMIC_ALGORITHMS,
    PolicyStore,
    make_sampler,
    training_dataset_for,
)
from repro.experiments.config import ExperimentConfig, ScenarioConfig
from repro.experiments.runner import compute_ground_truth, run_algorithm
from repro.experiments.tables import scenario_by_name
from repro.graph.generators import forest_fire
from repro.patterns.exact import ExactCounter
from repro.rl.training import (
    TrainingConfig,
    make_training_streams,
    train_weight_policy,
)
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table
from repro.utils.timer import Timer

__all__ = [
    "FigureResult",
    "figure_scalability",
    "figure_ordering",
    "figure_reservoir_size",
    "figure_training_size",
    "figure_weight_relationship",
    "figure_beta_sweep",
]


@dataclass
class FigureResult:
    """Named (x, y) series reproducing one paper figure."""

    title: str
    x_label: str
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)

    def format(self, precision: int = 4) -> str:
        xs = sorted({x for points in self.series.values() for x, _ in points})
        headers = [self.x_label] + list(self.series)
        lookup = {
            name: dict(points) for name, points in self.series.items()
        }
        rows = [
            [x] + [lookup[name].get(x, float("nan")) for name in self.series]
            for x in xs
        ]
        return format_table(headers, rows, title=self.title,
                            precision=precision)

    def ys(self, name: str) -> list[float]:
        """The y-values of one series, in x order."""
        return [y for _, y in sorted(self.series[name])]


def figure_scalability(
    scenario: str | ScenarioConfig = "massive",
    sizes: tuple[int, ...] = (1_000, 2_000, 4_000, 8_000, 16_000),
    pattern: str = "triangle",
    budget: int = 1_200,
    trials: int = 3,
    forest_fire_p: float = 0.5,
    seed: int = 0,
    policy_store: PolicyStore | None = None,
) -> FigureResult:
    """Figures 1 / 3: ARE and time of WSD-L/WSD-H vs stream size.

    Graphs come from Forest Fire G(n, p) as in the paper; ``sizes`` are
    vertex counts (the paper's 10M–5B *event* sweep scaled down), and
    the sample budget M is fixed across sizes so the sampled fraction
    shrinks as streams grow — reproducing the rising-ARE shape.
    """
    scenario_cfg = (
        scenario_by_name(scenario) if isinstance(scenario, str) else scenario
    )
    store = policy_store if policy_store is not None else PolicyStore()
    policy = store.get("synthetic-train", pattern, scenario_cfg)
    factory = RngFactory(seed)
    result = FigureResult(
        title=f"Scalability ({scenario_cfg.name} scenario)",
        x_label="events",
    )
    for algorithm in ("WSD-L", "WSD-H"):
        result.series[f"{algorithm} ARE (%)"] = []
        result.series[f"{algorithm} time (s)"] = []
    for n in sizes:
        edges = forest_fire(
            n, p=forest_fire_p, rng=factory.generator(f"graph-{n}")
        )
        config = ExperimentConfig(
            pattern=pattern, scenario=scenario_cfg, budget=budget,
            trials=trials, seed=seed,
        )
        stream = scenario_cfg.build(edges, factory.generator(f"scenario-{n}"))
        truth = compute_ground_truth(stream, pattern, config.checkpoints)
        for algorithm in ("WSD-L", "WSD-H"):
            run = run_algorithm(
                algorithm, stream, truth, pattern,
                min(budget, max(8, stream.num_insertions)),
                trials=trials, seed=seed,
                policy=policy if algorithm == "WSD-L" else None,
            )
            result.series[f"{algorithm} ARE (%)"].append(
                (float(len(stream)), run.mean_are)
            )
            result.series[f"{algorithm} time (s)"].append(
                (float(len(stream)), run.mean_seconds)
            )
    return result


def figure_ordering(
    scenario: str | ScenarioConfig = "massive",
    dataset: str = "cit-PT",
    pattern: str = "triangle",
    orderings: tuple[str, ...] = ("natural", "uar", "rbfs"),
    algorithms: tuple[str, ...] = DYNAMIC_ALGORITHMS,
    trials: int = 5,
    budget_fraction: float = 0.04,
    seed: int = 0,
    policy_store: PolicyStore | None = None,
) -> FigureResult:
    """Figures 2(a) / 4(a): ARE under natural / UAR / RBFS orderings."""
    scenario_cfg = (
        scenario_by_name(scenario) if isinstance(scenario, str) else scenario
    )
    store = policy_store if policy_store is not None else PolicyStore()
    policy = store.get(training_dataset_for(dataset), pattern, scenario_cfg)
    result = FigureResult(
        title=(
            f"ARE (%) vs stream ordering on {dataset} "
            f"({scenario_cfg.name} scenario)"
        ),
        x_label="ordering#",
    )
    for algorithm in algorithms:
        result.series[algorithm] = []
    for i, ordering in enumerate(orderings):
        config = ExperimentConfig(
            dataset=dataset, pattern=pattern, scenario=scenario_cfg,
            budget_fraction=budget_fraction, trials=trials,
            ordering=ordering, seed=seed,
        )
        stream = config.build_stream()
        truth = compute_ground_truth(stream, pattern, config.checkpoints)
        budget = config.effective_budget(stream)
        for algorithm in algorithms:
            run = run_algorithm(
                algorithm, stream, truth, pattern, budget,
                trials=trials, seed=seed,
                policy=policy if algorithm == "WSD-L" else None,
            )
            result.series[algorithm].append((float(i), run.mean_are))
    result.title += f" [x: {', '.join(f'{i}={o}' for i, o in enumerate(orderings))}]"
    return result


def figure_reservoir_size(
    scenario: str | ScenarioConfig = "massive",
    dataset: str = "cit-PT",
    pattern: str = "triangle",
    fractions: tuple[float, ...] = (0.01, 0.02, 0.03, 0.04, 0.05),
    algorithms: tuple[str, ...] = DYNAMIC_ALGORITHMS,
    trials: int = 5,
    seed: int = 0,
    policy_store: PolicyStore | None = None,
) -> FigureResult:
    """Figures 2(b) / 4(b): ARE vs the reservoir budget M (1–5% of |E|)."""
    scenario_cfg = (
        scenario_by_name(scenario) if isinstance(scenario, str) else scenario
    )
    store = policy_store if policy_store is not None else PolicyStore()
    policy = store.get(training_dataset_for(dataset), pattern, scenario_cfg)
    config = ExperimentConfig(
        dataset=dataset, pattern=pattern, scenario=scenario_cfg,
        trials=trials, seed=seed,
    )
    stream = config.build_stream()
    truth = compute_ground_truth(stream, pattern, config.checkpoints)
    result = FigureResult(
        title=(
            f"ARE (%) vs reservoir size on {dataset} "
            f"({scenario_cfg.name} scenario)"
        ),
        x_label="M (% of |E|)",
    )
    for algorithm in algorithms:
        result.series[algorithm] = []
    for fraction in fractions:
        budget = max(8, int(stream.num_insertions * fraction))
        for algorithm in algorithms:
            run = run_algorithm(
                algorithm, stream, truth, pattern, budget,
                trials=trials, seed=seed,
                policy=policy if algorithm == "WSD-L" else None,
            )
            result.series[algorithm].append(
                (fraction * 100.0, run.mean_are)
            )
    return result


def figure_training_size(
    scenario: str | ScenarioConfig = "massive",
    train_sizes: tuple[int, ...] = (250, 500, 1_000, 2_000),
    test_size: int = 4_000,
    pattern: str = "triangle",
    iterations: int = 300,
    trials: int = 3,
    budget_fraction: float = 0.04,
    seed: int = 0,
) -> FigureResult:
    """Figures 2(c) / 4(c): training time and test ARE vs training size.

    Forest-Fire training graphs of growing size train policies that are
    all evaluated on one larger Forest-Fire test stream — reproducing
    the paper's "training cost grows much faster than accuracy" curve.
    """
    scenario_cfg = (
        scenario_by_name(scenario) if isinstance(scenario, str) else scenario
    )
    factory = RngFactory(seed)
    test_edges = forest_fire(test_size, p=0.5, rng=factory.generator("test"))
    stream = scenario_cfg.build(test_edges, factory.generator("test-scn"))
    truth = compute_ground_truth(stream, pattern, 40)
    budget = max(8, int(stream.num_insertions * budget_fraction))
    result = FigureResult(
        title=f"Training size sweep ({scenario_cfg.name} scenario)",
        x_label="train vertices",
    )
    result.series["train time (s)"] = []
    result.series["ARE (%)"] = []
    for n in train_sizes:
        edges = forest_fire(n, p=0.5, rng=factory.generator(f"train-{n}"))
        streams = make_training_streams(
            edges,
            scenario_cfg.name,
            num_streams=3,
            alpha=(
                min(1.0, scenario_cfg.alpha / max(len(edges), 1))
                if scenario_cfg.name == "massive"
                else None
            ),
            beta=scenario_cfg.effective_beta,
            seed=seed,
        )
        with Timer() as timer:
            trained = train_weight_policy(
                streams, pattern, max(8, int(len(edges) * budget_fraction)),
                config=TrainingConfig(iterations=iterations, num_streams=3),
                seed=seed,
            )
        run = run_algorithm(
            "WSD-L", stream, truth, pattern, budget,
            trials=trials, seed=seed, policy=trained.policy,
        )
        result.series["train time (s)"].append((float(n), timer.seconds))
        result.series["ARE (%)"].append((float(n), run.mean_are))
    return result


def figure_weight_relationship(
    scenario: str | ScenarioConfig = "massive",
    dataset: str = "cit-PT",
    pattern: str = "triangle",
    runs: int = 10,
    budget_fraction: float = 0.04,
    max_bins: int = 8,
    seed: int = 0,
    policy_store: PolicyStore | None = None,
) -> FigureResult:
    """Figures 2(d) / 4(d): learned weight vs per-edge triangle count.

    Runs WSD-L several times, averaging each edge's assigned weight,
    then buckets edges by the number of pattern instances they belong to
    in the final graph. The paper's observation — heavier edges sit in
    more triangles — shows as a monotone series.
    """
    if runs < 1:
        raise ConfigurationError("runs must be >= 1")
    scenario_cfg = (
        scenario_by_name(scenario) if isinstance(scenario, str) else scenario
    )
    store = policy_store if policy_store is not None else PolicyStore()
    policy = store.get(training_dataset_for(dataset), pattern, scenario_cfg)
    config = ExperimentConfig(
        dataset=dataset, pattern=pattern, scenario=scenario_cfg, seed=seed,
    )
    stream = config.build_stream()
    budget = config.effective_budget(stream)
    factory = RngFactory(seed)

    # Mean learned weight per edge over repeated runs.
    weight_sum: dict[tuple, float] = {}
    weight_count: dict[tuple, int] = {}
    for run_idx in range(runs):
        sampler = make_sampler(
            "WSD-L", pattern, budget,
            rng=factory.generator(f"run-{run_idx}"), policy=policy,
        )
        for event in stream:
            sampler.process(event)
            if event.is_insertion and sampler.last_weight is not None:
                weight_sum[event.edge] = (
                    weight_sum.get(event.edge, 0.0) + sampler.last_weight
                )
                weight_count[event.edge] = weight_count.get(event.edge, 0) + 1

    # Per-edge instance membership in the final graph.
    exact = ExactCounter(pattern)
    exact.process_stream(stream)
    graph = exact.graph
    per_edge_instances: dict[tuple, int] = {}
    pat = exact.pattern
    for edge in list(graph.edges()):
        u, v = edge
        # Count instances containing this edge: remove it, count the
        # instances it completes, and re-add.
        graph.remove_edge(u, v)
        per_edge_instances[edge] = pat.count_completed(graph, u, v)
        graph.add_edge(u, v)

    counts = sorted({per_edge_instances.get(e, 0) for e in weight_sum})
    # Bucket counts into at most max_bins groups for a readable series.
    if len(counts) > max_bins:
        edges_arr = np.array_split(np.asarray(counts), max_bins)
        buckets = [(int(chunk[0]), int(chunk[-1])) for chunk in edges_arr if len(chunk)]
    else:
        buckets = [(c, c) for c in counts]
    series: list[tuple[float, float]] = []
    for lo, hi in buckets:
        weights = [
            weight_sum[e] / weight_count[e]
            for e in weight_sum
            if lo <= per_edge_instances.get(e, 0) <= hi
        ]
        if weights:
            series.append((float((lo + hi) / 2.0), float(np.mean(weights))))
    result = FigureResult(
        title=(
            f"Mean learned weight vs per-edge {pattern} count on "
            f"{dataset} ({scenario_cfg.name} scenario)"
        ),
        x_label=f"{pattern}s containing edge",
    )
    result.series["mean weight"] = series
    return result


def figure_beta_sweep(
    dataset: str = "cit-PT",
    pattern: str = "triangle",
    betas: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8),
    algorithms: tuple[str, ...] = DYNAMIC_ALGORITHMS,
    trials: int = 5,
    budget_fraction: float = 0.04,
    seed: int = 0,
    policy_store: PolicyStore | None = None,
) -> dict[str, FigureResult]:
    """Figure 5: ARE vs β_m (massive) and β_l (light) on cit-PT.

    Per the paper, the WSD-L policy is retrained for each β (the policy
    store keys include β). β = 0 degenerates both scenarios to
    insertion-only streams.
    """
    store = policy_store if policy_store is not None else PolicyStore()
    results: dict[str, FigureResult] = {}
    for scenario_name in ("massive", "light"):
        figure = FigureResult(
            title=(
                f"ARE (%) vs beta on {dataset} ({scenario_name} scenario)"
            ),
            x_label="beta",
        )
        for algorithm in algorithms:
            figure.series[algorithm] = []
        for beta in betas:
            scenario_cfg = ScenarioConfig(
                scenario_name,
                alpha=scenario_by_name("massive").alpha,
                beta=beta,
            )
            config = ExperimentConfig(
                dataset=dataset, pattern=pattern, scenario=scenario_cfg,
                budget_fraction=budget_fraction, trials=trials, seed=seed,
            )
            stream = config.build_stream()
            truth = compute_ground_truth(stream, pattern, config.checkpoints)
            budget = config.effective_budget(stream)
            policy = store.get(
                training_dataset_for(dataset), pattern, scenario_cfg
            )
            for algorithm in algorithms:
                run = run_algorithm(
                    algorithm, stream, truth, pattern, budget,
                    trials=trials, seed=seed,
                    policy=policy if algorithm == "WSD-L" else None,
                )
                figure.series[algorithm].append((beta, run.mean_are))
        results[scenario_name] = figure
    return results
