"""Experiment harness: configs, runner, and table/figure regenerators."""

from repro.experiments.algorithms import (
    ALGORITHMS,
    DYNAMIC_ALGORITHMS,
    PolicyStore,
    make_sampler,
    training_dataset_for,
)
from repro.experiments.config import (
    INSERTION_ONLY,
    LIGHT,
    MASSIVE,
    ExperimentConfig,
    ScenarioConfig,
)
from repro.experiments.runner import (
    AlgorithmResult,
    GroundTruthTrace,
    compute_ground_truth,
    run_algorithm,
    run_cell,
    run_sampler_trial,
)

__all__ = [
    "ALGORITHMS",
    "DYNAMIC_ALGORITHMS",
    "PolicyStore",
    "make_sampler",
    "training_dataset_for",
    "ExperimentConfig",
    "ScenarioConfig",
    "MASSIVE",
    "LIGHT",
    "INSERTION_ONLY",
    "AlgorithmResult",
    "GroundTruthTrace",
    "compute_ground_truth",
    "run_algorithm",
    "run_cell",
    "run_sampler_trial",
]
