"""Regenerate every table of the paper's evaluation (Section V + App. C).

Each ``table_*`` function returns a :class:`TableResult` whose rows
mirror the paper's layout (same datasets, same algorithm columns, same
ARE / MARE / running-time sections) at this reproduction's scale.
``EXPERIMENTS.md`` records the paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.experiments.algorithms import (
    DYNAMIC_ALGORITHMS,
    PolicyStore,
    training_dataset_for,
)
from repro.experiments.config import (
    INSERTION_ONLY,
    LIGHT,
    MASSIVE,
    ExperimentConfig,
    ScenarioConfig,
)
from repro.experiments.runner import (
    compute_ground_truth,
    run_algorithm,
    run_cell,
)
from repro.utils.tables import format_sections

__all__ = [
    "TableResult",
    "scenario_by_name",
    "table_counts",
    "table_insertion_only",
    "table_transferability",
    "table_ablation",
    "table_training_time",
    "COUNT_TABLE_DATASETS",
    "FOUR_CLIQUE_DATASETS",
]

#: Test datasets of the count tables (Tables II/III/VIII/IX).
COUNT_TABLE_DATASETS = ("cit-PT", "com-YT", "soc-TW", "web-GL", "synthetic")
#: The 4-clique tables (VII/X) drop soc-TW, as in the paper.
FOUR_CLIQUE_DATASETS = ("cit-PT", "com-YT", "web-GL", "synthetic")


def scenario_by_name(name: str) -> ScenarioConfig:
    """Resolve 'massive' / 'light' / 'insertion-only' to its default config."""
    table = {
        "massive": MASSIVE,
        "light": LIGHT,
        "insertion-only": INSERTION_ONLY,
    }
    if name not in table:
        raise ConfigurationError(f"unknown scenario {name!r}")
    return table[name]


@dataclass
class TableResult:
    """A rendered paper table plus the raw values for assertions."""

    title: str
    headers: list[str]
    sections: list[tuple[str, list[list]]]
    #: raw[section][row_label][column_label] -> float
    raw: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)

    def format(self, precision: int = 3) -> str:
        return format_sections(
            self.headers, self.sections, title=self.title, precision=precision
        )

    def value(self, section: str, row: str, column: str) -> float:
        """Raw cell accessor, e.g. ``value('ARE (%)', 'cit-PT', 'WSD-L')``."""
        return self.raw[section][row][column]


def _default_store(store: PolicyStore | None) -> PolicyStore:
    return store if store is not None else PolicyStore()


def table_counts(
    pattern: str = "triangle",
    scenario: str | ScenarioConfig = "massive",
    datasets: tuple[str, ...] | None = None,
    algorithms: tuple[str, ...] = DYNAMIC_ALGORITHMS,
    trials: int = 5,
    budget_fraction: float = 0.04,
    dataset_scale: float = 1.0,
    seed: int = 0,
    policy_store: PolicyStore | None = None,
) -> TableResult:
    """Tables II, III, VII, VIII, IX, X: ARE/MARE/time per dataset.

    ``pattern`` × ``scenario`` select the specific table; datasets
    default to the paper's list for the pattern.
    """
    scenario_cfg = (
        scenario_by_name(scenario) if isinstance(scenario, str) else scenario
    )
    if datasets is None:
        datasets = (
            FOUR_CLIQUE_DATASETS if pattern == "4-clique" else COUNT_TABLE_DATASETS
        )
    store = _default_store(policy_store)
    sections = {"ARE (%)": [], "MARE (%)": [], "Time (s)": []}
    raw: dict[str, dict[str, dict[str, float]]] = {
        name: {} for name in sections
    }
    for dataset in datasets:
        config = ExperimentConfig(
            dataset=dataset,
            pattern=pattern,
            scenario=scenario_cfg,
            budget_fraction=budget_fraction,
            trials=trials,
            dataset_scale=dataset_scale,
            seed=seed,
        )
        policy = None
        if "WSD-L" in algorithms:
            policy = store.get(
                training_dataset_for(dataset), pattern, scenario_cfg
            )
        results = run_cell(config, algorithms, policy=policy)
        for section, attr in (
            ("ARE (%)", "mean_are"),
            ("MARE (%)", "mean_mare"),
            ("Time (s)", "mean_seconds"),
        ):
            row = [dataset] + [
                getattr(results[name], attr) for name in algorithms
            ]
            sections[section].append(row)
            raw[section][dataset] = {
                name: getattr(results[name], attr) for name in algorithms
            }
    scenario_label = scenario_cfg.name
    return TableResult(
        title=(
            f"Counting {pattern}s under the {scenario_label} deletion "
            f"scenario (trials={trials})"
        ),
        headers=["Graph", *algorithms],
        sections=[(name, rows) for name, rows in sections.items()],
        raw=raw,
    )


def table_insertion_only(
    dataset: str = "cit-PT",
    pattern: str = "triangle",
    algorithms: tuple[str, ...] = ("WSD-L", "GPS", "Triest", "ThinkD", "WRS"),
    trials: int = 5,
    budget_fraction: float = 0.04,
    dataset_scale: float = 1.0,
    seed: int = 0,
    policy_store: PolicyStore | None = None,
) -> TableResult:
    """Table VI: the insertion-only special case on cit-PT.

    Under insertion-only streams WSD-H and GPS-A degenerate to GPS
    (Section V-B(8)), so the column set is WSD-L + GPS + the uniform
    baselines.
    """
    store = _default_store(policy_store)
    config = ExperimentConfig(
        dataset=dataset,
        pattern=pattern,
        scenario=INSERTION_ONLY,
        budget_fraction=budget_fraction,
        trials=trials,
        dataset_scale=dataset_scale,
        seed=seed,
    )
    policy = None
    if "WSD-L" in algorithms:
        policy = store.get(
            training_dataset_for(dataset), pattern, INSERTION_ONLY
        )
    results = run_cell(config, algorithms, policy=policy)
    rows = {
        "ARE (%)": [["ARE (%)"] + [results[a].mean_are for a in algorithms]],
        "MARE (%)": [
            ["MARE (%)"] + [results[a].mean_mare for a in algorithms]
        ],
        "Time (s)": [
            ["Time (s)"] + [results[a].mean_seconds for a in algorithms]
        ],
    }
    raw = {
        section: {
            section: {
                a: rows[section][0][i + 1] for i, a in enumerate(algorithms)
            }
        }
        for section in rows
    }
    return TableResult(
        title=f"Counting {pattern}s on {dataset} (insertion-only scenario)",
        headers=["Metric", *algorithms],
        sections=[(name, r) for name, r in rows.items()],
        raw=raw,
    )


def table_transferability(
    scenario: str | ScenarioConfig = "massive",
    pattern: str = "triangle",
    test_datasets: tuple[str, ...] = ("cit-PT", "com-YT", "soc-TW", "web-GL"),
    train_datasets: tuple[str, ...] = (
        "cit-HE",
        "com-DB",
        "soc-TX",
        "web-SF",
        "synthetic-train",
    ),
    trials: int = 5,
    budget_fraction: float = 0.04,
    dataset_scale: float = 1.0,
    seed: int = 0,
    policy_store: PolicyStore | None = None,
) -> TableResult:
    """Tables V / XII: cross-category transfer of WSD-L policies.

    Rows are test graphs, columns are the training graph used for the
    policy plus a final WSD-H reference column. Cells are ARE (%).
    """
    scenario_cfg = (
        scenario_by_name(scenario) if isinstance(scenario, str) else scenario
    )
    store = _default_store(policy_store)
    columns = [*train_datasets, "WSD-H"]
    rows: list[list] = []
    raw: dict[str, dict[str, dict[str, float]]] = {"ARE (%)": {}}
    for test in test_datasets:
        config = ExperimentConfig(
            dataset=test,
            pattern=pattern,
            scenario=scenario_cfg,
            budget_fraction=budget_fraction,
            trials=trials,
            dataset_scale=dataset_scale,
            seed=seed,
        )
        stream = config.build_stream()
        truth = compute_ground_truth(stream, pattern, config.checkpoints)
        budget = config.effective_budget(stream)
        row: list = [test]
        raw_row: dict[str, float] = {}
        for train in train_datasets:
            policy = store.get(train, pattern, scenario_cfg)
            result = run_algorithm(
                "WSD-L", stream, truth, pattern, budget,
                trials=trials, seed=seed, policy=policy,
            )
            row.append(result.mean_are)
            raw_row[train] = result.mean_are
        heuristic = run_algorithm(
            "WSD-H", stream, truth, pattern, budget, trials=trials, seed=seed
        )
        row.append(heuristic.mean_are)
        raw_row["WSD-H"] = heuristic.mean_are
        rows.append(row)
        raw["ARE (%)"][test] = raw_row
    return TableResult(
        title=(
            f"Transferability of WSD-L ({scenario_cfg.name} scenario, "
            f"ARE % of counting {pattern}s)"
        ),
        headers=["Test \\ Train", *columns],
        sections=[("ARE (%)", rows)],
        raw=raw,
    )


def table_ablation(
    scenarios: tuple[str, ...] = ("massive", "light"),
    pattern: str = "triangle",
    datasets: tuple[str, ...] = ("cit-PT", "com-YT", "soc-TW", "web-GL"),
    trials: int = 5,
    budget_fraction: float = 0.04,
    dataset_scale: float = 1.0,
    seed: int = 0,
    policy_store: PolicyStore | None = None,
) -> TableResult:
    """Table XIII: WSD-L (Max) vs WSD-L (Avg) vs WSD-H (ARE %)."""
    store = _default_store(policy_store)
    columns = ("WSD-L (Max)", "WSD-L (Avg)", "WSD-H")
    sections: list[tuple[str, list[list]]] = []
    raw: dict[str, dict[str, dict[str, float]]] = {}
    for scenario in scenarios:
        scenario_cfg = scenario_by_name(scenario)
        rows: list[list] = []
        raw_section: dict[str, dict[str, float]] = {}
        for dataset in datasets:
            config = ExperimentConfig(
                dataset=dataset,
                pattern=pattern,
                scenario=scenario_cfg,
                budget_fraction=budget_fraction,
                trials=trials,
                dataset_scale=dataset_scale,
                seed=seed,
            )
            stream = config.build_stream()
            truth = compute_ground_truth(stream, pattern, config.checkpoints)
            budget = config.effective_budget(stream)
            train = training_dataset_for(dataset)
            cells: dict[str, float] = {}
            for aggregation, label in (("max", "WSD-L (Max)"), ("avg", "WSD-L (Avg)")):
                policy = store.get(
                    train, pattern, scenario_cfg,
                    temporal_aggregation=aggregation,
                )
                result = run_algorithm(
                    "WSD-L", stream, truth, pattern, budget,
                    trials=trials, seed=seed, policy=policy,
                    temporal_aggregation=aggregation,
                )
                cells[label] = result.mean_are
            heuristic = run_algorithm(
                "WSD-H", stream, truth, pattern, budget,
                trials=trials, seed=seed,
            )
            cells["WSD-H"] = heuristic.mean_are
            rows.append([dataset] + [cells[c] for c in columns])
            raw_section[dataset] = cells
        section_name = f"ARE (%) — {scenario} scenario"
        sections.append((section_name, rows))
        raw[section_name] = raw_section
    return TableResult(
        title="Ablation on the temporal state aggregation (Eq. 20)",
        headers=["Graph", *columns],
        sections=sections,
        raw=raw,
    )


def table_training_time(
    scenario: str | ScenarioConfig = "massive",
    patterns: tuple[str, ...] = ("triangle", "wedge"),
    train_datasets: tuple[str, ...] = ("cit-HE", "com-DB", "soc-TX", "web-SF"),
    dataset_scale: float = 1.0,
    iterations: int = 300,
    seed: int = 7,
) -> TableResult:
    """Tables IV / XI: wall-clock training time per graph × pattern.

    The paper reports hours on multi-million-edge graphs; this
    reproduction reports seconds on the scaled stand-ins — the *ratios*
    across datasets/patterns are the comparable part.
    """
    scenario_cfg = (
        scenario_by_name(scenario) if isinstance(scenario, str) else scenario
    )
    store = PolicyStore(
        iterations=iterations, dataset_scale=dataset_scale, seed=seed
    )
    rows: list[list] = []
    raw: dict[str, dict[str, dict[str, float]]] = {"Time (s)": {}}
    for dataset in train_datasets:
        row: list = [dataset]
        raw_row: dict[str, float] = {}
        for pattern in patterns:
            store.get(dataset, pattern, scenario_cfg)
            key = store._key(dataset, pattern, scenario_cfg, "max")
            seconds = store.training_seconds[key]
            row.append(seconds)
            raw_row[pattern] = seconds
        rows.append(row)
        raw["Time (s)"][dataset] = raw_row
    return TableResult(
        title=(
            f"Training time (seconds) under the {scenario_cfg.name} "
            "scenario"
        ),
        headers=["Graph", *patterns],
        sections=[("Time (s)", rows)],
        raw=raw,
    )
