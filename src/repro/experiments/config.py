"""Experiment configuration dataclasses.

The paper's evaluation (Section V) fixes a handful of knobs per
experiment: dataset, pattern, deletion scenario, reservoir budget M,
and the number of repetitions. :class:`ExperimentConfig` bundles them
with the scaling conventions of this reproduction:

* ``alpha`` for the massive scenario is expressed as the *expected
  number of massive-deletion events per stream* (the paper's
  α = 1/3,000,000 on ~15M-event streams ≈ 5 events); it is divided by
  the stream's insertion count at build time.
* ``budget_fraction`` expresses M as a fraction of the stream's
  insertion count (the paper's M = 200,000 on 2.9M–16.5M-edge graphs is
  roughly 1–7%; we default to 4%).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.datasets import load_dataset
from repro.graph.edges import Edge
from repro.graph.orderings import order_edges
from repro.graph.stream import EdgeStream
from repro.streams.executor import ExecutorOptions
from repro.streams.scenarios import build_stream
from repro.streams.supervisor import RecoveryPolicy
from repro.utils.rng import RngFactory

__all__ = ["ScenarioConfig", "ExperimentConfig", "MASSIVE", "LIGHT", "INSERTION_ONLY"]


@dataclass(frozen=True)
class ScenarioConfig:
    """A deletion scenario with its parameters.

    ``alpha`` is the expected number of massive-deletion events per
    stream (massive scenario only); ``beta`` is β_m (massive) or β_l
    (light).
    """

    name: str = "massive"
    alpha: float = 4.0
    beta: float | None = None

    def validate(self) -> None:
        if self.name not in {"massive", "light", "insertion-only"}:
            raise ConfigurationError(f"unknown scenario {self.name!r}")
        if self.alpha < 0:
            raise ConfigurationError("alpha must be >= 0")

    @property
    def effective_beta(self) -> float:
        if self.beta is not None:
            return self.beta
        return 0.8 if self.name == "massive" else 0.2

    def build(
        self, edges: list[Edge], rng: np.random.Generator
    ) -> EdgeStream:
        """Materialise the stream for an ordered edge list."""
        self.validate()
        if self.name == "insertion-only":
            return build_stream(edges, "insertion-only")
        if self.name == "massive":
            per_insertion = min(1.0, self.alpha / max(len(edges), 1))
            return build_stream(
                edges, "massive", alpha=per_insertion,
                beta=self.effective_beta, rng=rng,
            )
        return build_stream(
            edges, "light", beta=self.effective_beta, rng=rng
        )


#: The paper's default scenarios (Section V-A).
MASSIVE = ScenarioConfig("massive", alpha=4.0, beta=0.8)
LIGHT = ScenarioConfig("light", beta=0.2)
INSERTION_ONLY = ScenarioConfig("insertion-only")


@dataclass(frozen=True)
class ExperimentConfig:
    """One measurement cell: dataset × pattern × scenario × budget."""

    dataset: str = "cit-PT"
    pattern: str = "triangle"
    scenario: ScenarioConfig = field(default_factory=lambda: MASSIVE)
    budget_fraction: float = 0.04
    budget: int | None = None
    trials: int = 10
    checkpoints: int = 40
    ordering: str = "natural"
    dataset_scale: float = 1.0
    seed: int = 0
    #: Number of sampler replicas per trial. 1 runs the classic
    #: single-sampler path; > 1 drives a
    #: :class:`~repro.streams.executor.ShardedStreamExecutor`.
    shards: int = 1
    #: Executor mode when ``shards > 1``: ``"partition"`` hash-routes
    #: each event to one replica (throughput scale-out), ``"broadcast"``
    #: replicates the stream (variance scale-out).
    shard_mode: str = "partition"
    #: Executor backend when ``shards > 1``: ``"serial"`` drives the
    #: replicas inline, ``"process"`` runs each replica in a worker
    #: process, ``"remote"`` leases each replica onto a shard host
    #: agent from :attr:`executor_hosts` (all result-identical under
    #: fixed seeds; see
    #: :class:`~repro.streams.executor.ShardedStreamExecutor`).
    executor_backend: str = "serial"
    #: Worker transport for the process backend: ``"auto"`` ships
    #: columnar event blocks through shared memory (queue fallback per
    #: chunk), ``"shm"`` forces shared memory, ``"queue"`` forces the
    #: legacy pickled path. Result-identical either way.
    executor_transport: str = "auto"
    #: Shard host agent addresses (``"host:port"``) for the remote
    #: backend; required for, and only valid with,
    #: ``executor_backend="remote"``.
    executor_hosts: tuple[str, ...] = ()
    #: Liveness-poll granularity for blocked worker waits; ``None``
    #: keeps the library default (0.2s).
    executor_poll_seconds: float | None = None
    #: Liveness-poll granularity for shared-memory slot waits; ``None``
    #: keeps the library default (0.5ms).
    executor_slot_poll_seconds: float | None = None
    #: Timeout for a clean worker stop at teardown; ``None`` keeps the
    #: library default (10s).
    executor_stop_timeout: float | None = None
    #: Supervised-recovery policy for crashed shard workers
    #: (:class:`~repro.streams.supervisor.RecoveryPolicy`); ``None``
    #: leaves crash handling to the caller.
    executor_recovery: "RecoveryPolicy | None" = None
    #: Seconds between liveness heartbeats on remote shard transports;
    #: ``None`` sends none (the pre-liveness behaviour).
    executor_heartbeat_interval: float | None = None
    #: Idle bound advertised to hosted peers (host agents drop leases
    #: whose coordinator goes silent this long); ``None`` is patient.
    executor_heartbeat_timeout: float | None = None
    #: The execution knobs as one
    #: :class:`~repro.streams.executor.ExecutorOptions` value — the
    #: preferred spelling. The flat ``executor_*`` fields above are
    #: kept for backwards compatibility and may be deprecated in a
    #: future release; setting both is rejected by :meth:`validate`.
    executor: ExecutorOptions | None = None

    def validate(self) -> None:
        self.scenario.validate()
        if not 0.0 < self.budget_fraction <= 1.0:
            raise ConfigurationError("budget_fraction must be in (0, 1]")
        if self.budget is not None and self.budget < 1:
            raise ConfigurationError("budget must be >= 1")
        if self.trials < 1:
            raise ConfigurationError("trials must be >= 1")
        if self.checkpoints < 1:
            raise ConfigurationError("checkpoints must be >= 1")
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.shard_mode not in {"partition", "broadcast"}:
            raise ConfigurationError(
                "shard_mode must be 'partition' or 'broadcast', got "
                f"{self.shard_mode!r}"
            )
        if self.executor_backend not in {"serial", "process", "remote"}:
            raise ConfigurationError(
                "executor_backend must be 'serial', 'process' or "
                f"'remote', got {self.executor_backend!r}"
            )
        if self.executor_transport not in {"auto", "shm", "queue"}:
            raise ConfigurationError(
                "executor_transport must be 'auto', 'shm' or 'queue', "
                f"got {self.executor_transport!r}"
            )
        if self.executor is not None:
            flat_overrides = [
                name
                for name, value, default in (
                    ("executor_backend", self.executor_backend, "serial"),
                    ("executor_transport", self.executor_transport, "auto"),
                    ("executor_hosts", self.executor_hosts, ()),
                    ("executor_poll_seconds", self.executor_poll_seconds, None),
                    (
                        "executor_slot_poll_seconds",
                        self.executor_slot_poll_seconds,
                        None,
                    ),
                    ("executor_stop_timeout", self.executor_stop_timeout, None),
                    ("executor_recovery", self.executor_recovery, None),
                    (
                        "executor_heartbeat_interval",
                        self.executor_heartbeat_interval,
                        None,
                    ),
                    (
                        "executor_heartbeat_timeout",
                        self.executor_heartbeat_timeout,
                        None,
                    ),
                )
                if value != default
            ]
            if flat_overrides:
                raise ConfigurationError(
                    "set execution knobs either through executor= or the "
                    "flat executor_* fields, not both; flat fields also "
                    f"set: {flat_overrides}"
                )
            self.executor.validate()
            if self.executor.backend != "serial" and self.shards == 1:
                raise ConfigurationError(
                    f"executor backend {self.executor.backend!r} requires "
                    "shards > 1 (an unsharded cell runs a single "
                    "in-process sampler)"
                )
        if self.executor_backend != "serial" and self.shards == 1:
            # The unsharded trial path runs a bare in-process sampler;
            # silently ignoring the requested backend would be worse
            # than refusing.
            raise ConfigurationError(
                f"executor_backend={self.executor_backend!r} requires "
                "shards > 1 (an unsharded cell runs a single in-process "
                "sampler)"
            )
        if self.executor_backend == "remote" and not self.executor_hosts:
            raise ConfigurationError(
                "executor_backend='remote' requires executor_hosts "
                "(shard host agent addresses)"
            )
        if self.executor_hosts and self.executor_backend != "remote":
            raise ConfigurationError(
                "executor_hosts is only valid with "
                "executor_backend='remote'"
            )
        for knob, value in (
            ("executor_poll_seconds", self.executor_poll_seconds),
            ("executor_slot_poll_seconds", self.executor_slot_poll_seconds),
            ("executor_stop_timeout", self.executor_stop_timeout),
            ("executor_heartbeat_interval", self.executor_heartbeat_interval),
            ("executor_heartbeat_timeout", self.executor_heartbeat_timeout),
        ):
            if value is not None and not value > 0:
                raise ConfigurationError(f"{knob} must be > 0, got {value!r}")
        if self.executor_recovery is not None:
            self.executor_recovery.validate()

    def executor_options(self) -> ExecutorOptions:
        """The effective execution knobs as one value object.

        Returns :attr:`executor` when set; otherwise bundles the flat
        ``executor_*`` fields, so the runner consumes one form either
        way.
        """
        if self.executor is not None:
            return self.executor
        return ExecutorOptions(
            backend=self.executor_backend,
            transport=self.executor_transport,
            hosts=tuple(self.executor_hosts),
            poll_seconds=self.executor_poll_seconds,
            slot_poll_seconds=self.executor_slot_poll_seconds,
            stop_timeout=self.executor_stop_timeout,
            recovery_policy=self.executor_recovery,
            heartbeat_interval=self.executor_heartbeat_interval,
            heartbeat_timeout=self.executor_heartbeat_timeout,
        )

    def with_changes(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    # -- materialisation -------------------------------------------------------

    def load_edges(self) -> list[Edge]:
        """Load the (ordered) edge list for this cell."""
        factory = RngFactory(self.seed)
        edges = load_dataset(
            self.dataset, scale=self.dataset_scale, seed=self.seed
        )
        return order_edges(edges, self.ordering, factory.generator("ordering"))

    def build_stream(self, edges: list[Edge] | None = None) -> EdgeStream:
        """Build the deterministic stream for this cell."""
        self.validate()
        if edges is None:
            edges = self.load_edges()
        factory = RngFactory(self.seed)
        return self.scenario.build(edges, factory.generator("scenario"))

    def effective_budget(self, stream: EdgeStream) -> int:
        """Resolve M: explicit budget, or fraction of insertions."""
        if self.budget is not None:
            return self.budget
        return max(8, int(stream.num_insertions * self.budget_fraction))
