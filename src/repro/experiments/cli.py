"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro.experiments.cli --list
    python -m repro.experiments.cli table3
    python -m repro.experiments.cli table9 --trials 3 --seed 1
    python -m repro.experiments.cli fig2b --scenario light

Each target prints the reproduced table/figure as text to stdout.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence

from repro.experiments import figures, tables
from repro.experiments.algorithms import PolicyStore


def _targets(
    trials: int, seed: int, store: PolicyStore
) -> dict[str, tuple[str, Callable[[], object]]]:
    """Map CLI target names to (description, runner)."""
    t, s = trials, seed
    return {
        "table2": ("Wedges, massive deletion",
                   lambda: tables.table_counts("wedge", "massive", trials=t, seed=s, policy_store=store)),
        "table3": ("Triangles, massive deletion",
                   lambda: tables.table_counts("triangle", "massive", trials=t, seed=s, policy_store=store)),
        "table4": ("Training time, massive",
                   lambda: tables.table_training_time("massive", seed=s)),
        "table5": ("Transferability, massive",
                   lambda: tables.table_transferability("massive", trials=t, seed=s, policy_store=store)),
        "table6": ("Insertion-only, cit-PT",
                   lambda: tables.table_insertion_only(trials=t, seed=s, policy_store=store)),
        "table7": ("4-cliques, massive deletion",
                   lambda: tables.table_counts("4-clique", "massive", trials=t, seed=s, policy_store=store)),
        "table8": ("Wedges, light deletion",
                   lambda: tables.table_counts("wedge", "light", trials=t, seed=s, policy_store=store)),
        "table9": ("Triangles, light deletion",
                   lambda: tables.table_counts("triangle", "light", trials=t, seed=s, policy_store=store)),
        "table10": ("4-cliques, light deletion",
                    lambda: tables.table_counts("4-clique", "light", trials=t, seed=s, policy_store=store)),
        "table11": ("Training time, light",
                    lambda: tables.table_training_time("light", seed=s)),
        "table12": ("Transferability, light",
                    lambda: tables.table_transferability("light", trials=t, seed=s, policy_store=store)),
        "table13": ("Temporal aggregation ablation",
                    lambda: tables.table_ablation(trials=t, seed=s, policy_store=store)),
        "fig1": ("Scalability, massive",
                 lambda: figures.figure_scalability("massive", trials=max(1, t // 2), seed=s, policy_store=store)),
        "fig2a": ("Stream ordering, massive",
                  lambda: figures.figure_ordering("massive", trials=t, seed=s, policy_store=store)),
        "fig2b": ("Reservoir size, massive",
                  lambda: figures.figure_reservoir_size("massive", trials=t, seed=s, policy_store=store)),
        "fig2c": ("Training size, massive",
                  lambda: figures.figure_training_size("massive", seed=s)),
        "fig2d": ("Weight vs triangle count, massive",
                  lambda: figures.figure_weight_relationship("massive", seed=s, policy_store=store)),
        "fig3": ("Scalability, light",
                 lambda: figures.figure_scalability("light", trials=max(1, t // 2), seed=s, policy_store=store)),
        "fig4a": ("Stream ordering, light",
                  lambda: figures.figure_ordering("light", trials=t, seed=s, policy_store=store)),
        "fig4b": ("Reservoir size, light",
                  lambda: figures.figure_reservoir_size("light", trials=t, seed=s, policy_store=store)),
        "fig4c": ("Training size, light",
                  lambda: figures.figure_training_size("light", seed=s)),
        "fig4d": ("Weight vs triangle count, light",
                  lambda: figures.figure_weight_relationship("light", seed=s, policy_store=store)),
        "fig5": ("Beta sweeps",
                 lambda: figures.figure_beta_sweep(trials=t, seed=s, policy_store=store)),
    }


def _render(result: object) -> str:
    if isinstance(result, dict):
        return "\n\n".join(value.format() for value in result.values())
    return result.format()  # type: ignore[attr-defined]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.cli",
        description="Regenerate a table or figure from the WSD paper.",
    )
    parser.add_argument(
        "target", nargs="?",
        help="e.g. table3, fig2b, or 'all' for the whole evaluation",
    )
    parser.add_argument("--list", action="store_true", help="list targets")
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--train-iterations", type=int, default=300,
        help="DDPG updates when training WSD-L policies",
    )
    parser.add_argument(
        "--output", type=str, default=None,
        help="directory to also write <target>.txt artefacts into",
    )
    args = parser.parse_args(argv)

    store = PolicyStore(iterations=args.train_iterations)
    targets = _targets(args.trials, args.seed, store)
    if args.list or not args.target:
        for name, (description, _) in targets.items():
            print(f"{name:10s} {description}")
        return 0

    key = args.target.lower()
    if key == "all":
        selected = list(targets)
    elif key in targets:
        selected = [key]
    else:
        print(f"unknown target {args.target!r}; use --list", file=sys.stderr)
        return 2

    output_dir = None
    if args.output:
        from pathlib import Path

        output_dir = Path(args.output)
        output_dir.mkdir(parents=True, exist_ok=True)
    for name in selected:
        text = _render(targets[name][1]())
        print(text)
        print()
        if output_dir is not None:
            (output_dir / f"{name}.txt").write_text(
                text + "\n", encoding="utf-8"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
