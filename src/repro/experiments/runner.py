"""Experiment runner: repeated trials, shared ground truth, aggregation.

Running one table cell means: build the stream once (deterministic given
the config seed), compute the exact checkpoint trace once, then run N
independent sampler trials against the cached truth — timing only the
sampler — and aggregate ARE/MARE/time. The paper averages 100 sampling
repetitions per cell; the default here is smaller but configurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.estimators.metrics import (
    absolute_relative_error,
    mean_absolute_relative_error,
)
from repro.experiments.algorithms import make_sampler
from repro.experiments.config import ExperimentConfig
from repro.graph.stream import EdgeStream
from repro.patterns.exact import ExactCounter
from repro.patterns.matching import get_pattern
from repro.rl.policy import Policy
from repro.streams.executor import ExecutorOptions, ShardedStreamExecutor
from repro.utils.rng import RngFactory, derive_seed, spawn_generators
from repro.utils.timer import Stopwatch

__all__ = [
    "GroundTruthTrace",
    "TrialResult",
    "AlgorithmResult",
    "compute_ground_truth",
    "run_sampler_trial",
    "make_trial_sampler",
    "run_algorithm",
    "run_cell",
]


@dataclass(frozen=True)
class GroundTruthTrace:
    """Exact counts at checkpoint event indices (shared across trials)."""

    checkpoints: tuple[int, ...]
    truths: tuple[int, ...]

    @property
    def final_truth(self) -> int:
        return self.truths[-1]


@dataclass(frozen=True)
class TrialResult:
    """One sampler run against a cached ground-truth trace."""

    estimates: tuple[float, ...]
    seconds: float
    final_truth: int

    @property
    def final_estimate(self) -> float:
        return self.estimates[-1]


@dataclass
class AlgorithmResult:
    """Aggregated trials of one algorithm on one cell."""

    name: str
    ares: list[float] = field(default_factory=list)
    mares: list[float] = field(default_factory=list)
    seconds: list[float] = field(default_factory=list)

    @property
    def mean_are(self) -> float:
        return float(np.mean(self.ares))

    @property
    def mean_mare(self) -> float:
        return float(np.mean(self.mares))

    @property
    def mean_seconds(self) -> float:
        return float(np.mean(self.seconds))

    @property
    def std_are(self) -> float:
        return float(np.std(self.ares))


def compute_ground_truth(
    stream: EdgeStream, pattern: str, num_checkpoints: int
) -> GroundTruthTrace:
    """Exact counts of ``pattern`` at ``num_checkpoints`` even checkpoints."""
    if num_checkpoints < 1:
        raise ConfigurationError("num_checkpoints must be >= 1")
    counter = ExactCounter(pattern)
    n = len(stream)
    step = max(1, n // num_checkpoints)
    checkpoints: list[int] = []
    truths: list[int] = []
    for i, event in enumerate(stream, start=1):
        counter.process(event)
        if i % step == 0 or i == n:
            checkpoints.append(i)
            truths.append(counter.count)
    return GroundTruthTrace(tuple(checkpoints), tuple(truths))


def run_sampler_trial(
    sampler, stream: EdgeStream, truth: GroundTruthTrace
) -> TrialResult:
    """Run one sampler over the stream, sampling estimates at checkpoints.

    Consumers exposing ``close()`` (the process-backend executor) are
    closed when the trial ends, successfully or not, so worker
    processes never outlive their trial. The stopwatch brackets both
    the per-event ingestion *and* the checkpoint estimate reads: for
    the process backend an estimate read is the synchronisation barrier
    where the pipelined ingestion actually completes, so excluding it
    would record enqueue-side time only and make the reported seconds
    incomparable with serial rows.
    """
    targets = set(truth.checkpoints)
    estimates: list[float] = []
    watch = Stopwatch()
    n = len(stream)
    close = getattr(sampler, "close", None)
    try:
        for i, event in enumerate(stream, start=1):
            with watch:
                sampler.process(event)
            if i in targets:
                with watch:
                    estimates.append(sampler.estimate)
    except BaseException:
        # The trial failure is the interesting exception; a teardown
        # failure on top of it is suppressed so it cannot mask it.
        if close is not None:
            try:
                close()
            except Exception:
                pass
        raise
    if close is not None:
        close()  # clean trial: a teardown failure is a real failure
    if len(estimates) != len(truth.checkpoints):
        raise ConfigurationError(
            f"checkpoint mismatch: {len(estimates)} estimates vs "
            f"{len(truth.checkpoints)} truths over {n} events"
        )
    return TrialResult(tuple(estimates), watch.elapsed, truth.final_truth)


def _resolve_executor_options(
    executor: ExecutorOptions | None,
    executor_backend: str,
    executor_transport: str,
    executor_hosts: tuple[str, ...],
    executor_poll_seconds: float | None,
    executor_slot_poll_seconds: float | None,
    executor_stop_timeout: float | None,
    executor_recovery=None,
    executor_heartbeat_interval: float | None = None,
    executor_heartbeat_timeout: float | None = None,
) -> ExecutorOptions:
    """One options object from either spelling (both at once rejected)."""
    if executor is None:
        return ExecutorOptions(
            backend=executor_backend,
            transport=executor_transport,
            hosts=tuple(executor_hosts),
            poll_seconds=executor_poll_seconds,
            slot_poll_seconds=executor_slot_poll_seconds,
            stop_timeout=executor_stop_timeout,
            recovery_policy=executor_recovery,
            heartbeat_interval=executor_heartbeat_interval,
            heartbeat_timeout=executor_heartbeat_timeout,
        )
    overridden = [
        name
        for name, value, default in (
            ("executor_backend", executor_backend, "serial"),
            ("executor_transport", executor_transport, "auto"),
            ("executor_hosts", executor_hosts, ()),
            ("executor_poll_seconds", executor_poll_seconds, None),
            ("executor_slot_poll_seconds", executor_slot_poll_seconds, None),
            ("executor_stop_timeout", executor_stop_timeout, None),
            ("executor_recovery", executor_recovery, None),
            (
                "executor_heartbeat_interval",
                executor_heartbeat_interval,
                None,
            ),
            ("executor_heartbeat_timeout", executor_heartbeat_timeout, None),
        )
        if value != default
    ]
    if overridden:
        raise ConfigurationError(
            "pass execution knobs either through executor= or as flat "
            f"executor_* kwargs, not both; flat kwargs also given: "
            f"{overridden}"
        )
    return executor


def make_trial_sampler(
    name: str,
    pattern: str,
    budget: int,
    factory: RngFactory,
    trial: int,
    policy: Policy | None = None,
    temporal_aggregation: str = "max",
    shards: int = 1,
    shard_mode: str = "partition",
    executor_backend: str = "serial",
    executor_transport: str = "auto",
    executor_hosts: tuple[str, ...] = (),
    executor_poll_seconds: float | None = None,
    executor_slot_poll_seconds: float | None = None,
    executor_stop_timeout: float | None = None,
    executor_recovery=None,
    executor_heartbeat_interval: float | None = None,
    executor_heartbeat_timeout: float | None = None,
    executor: ExecutorOptions | None = None,
):
    """Build one trial's consumer: a sampler, or a sharded executor.

    With ``shards > 1`` the trial runs a
    :class:`~repro.streams.executor.ShardedStreamExecutor` over
    ``shards`` replicas. Per-shard generators are spawned from one
    trial-level root via :func:`~repro.utils.rng.spawn_generators`
    (``numpy.random.SeedSequence.spawn``), so the replica randomness is
    a pure function of ``(seed, algorithm, trial, shard index)`` — the
    same for the serial and process backends, which is what makes the
    two result-identical. Partition mode splits the budget M across the
    replicas (total memory parity with the single-sampler run, floored
    at |H| per replica so the estimators stay defined); broadcast
    replicas each keep the full budget, as each one samples the whole
    stream.

    Execution knobs are taken from ``executor``
    (:class:`~repro.streams.executor.ExecutorOptions`, the preferred
    spelling) or the equivalent flat ``executor_*`` keyword arguments,
    which are kept for backwards compatibility.
    """
    if shards == 1:
        return make_sampler(
            name,
            pattern,
            budget,
            rng=factory.generator(f"{name}-trial-{trial}"),
            policy=policy,
            temporal_aggregation=temporal_aggregation,
        )
    if shard_mode == "partition":
        shard_budget = max(get_pattern(pattern).num_edges, budget // shards)
    else:
        shard_budget = budget

    shard_rngs = spawn_generators(
        derive_seed(factory.seed, f"{name}-trial-{trial}"), shards
    )

    def shard_factory(index: int):
        return make_sampler(
            name,
            pattern,
            shard_budget,
            rng=shard_rngs[index],
            policy=policy,
            temporal_aggregation=temporal_aggregation,
        )

    return ShardedStreamExecutor(
        shard_factory,
        shards,
        mode=shard_mode,
        options=_resolve_executor_options(
            executor,
            executor_backend,
            executor_transport,
            executor_hosts,
            executor_poll_seconds,
            executor_slot_poll_seconds,
            executor_stop_timeout,
            executor_recovery,
            executor_heartbeat_interval,
            executor_heartbeat_timeout,
        ),
    )


def run_algorithm(
    name: str,
    stream: EdgeStream,
    truth: GroundTruthTrace,
    pattern: str,
    budget: int,
    trials: int,
    seed: int = 0,
    policy: Policy | None = None,
    temporal_aggregation: str = "max",
    shards: int = 1,
    shard_mode: str = "partition",
    executor_backend: str = "serial",
    executor_transport: str = "auto",
    executor_hosts: tuple[str, ...] = (),
    executor_poll_seconds: float | None = None,
    executor_slot_poll_seconds: float | None = None,
    executor_stop_timeout: float | None = None,
    executor_recovery=None,
    executor_heartbeat_interval: float | None = None,
    executor_heartbeat_timeout: float | None = None,
    executor: ExecutorOptions | None = None,
) -> AlgorithmResult:
    """Run ``trials`` independent repetitions of one algorithm."""
    if truth.final_truth == 0:
        raise ConfigurationError(
            "final ground truth is zero; ARE undefined — re-seed the "
            "scenario or enlarge the dataset"
        )
    factory = RngFactory(seed)
    result = AlgorithmResult(name=name)
    for trial in range(trials):
        sampler = make_trial_sampler(
            name,
            pattern,
            budget,
            factory,
            trial,
            policy=policy,
            temporal_aggregation=temporal_aggregation,
            shards=shards,
            shard_mode=shard_mode,
            executor=_resolve_executor_options(
                executor,
                executor_backend,
                executor_transport,
                executor_hosts,
                executor_poll_seconds,
                executor_slot_poll_seconds,
                executor_stop_timeout,
                executor_recovery,
                executor_heartbeat_interval,
                executor_heartbeat_timeout,
            ),
        )
        trial_result = run_sampler_trial(sampler, stream, truth)
        result.ares.append(
            absolute_relative_error(
                trial_result.final_estimate, truth.final_truth
            )
        )
        result.mares.append(
            mean_absolute_relative_error(trial_result.estimates, truth.truths)
        )
        result.seconds.append(trial_result.seconds)
    return result


def run_cell(
    config: ExperimentConfig,
    algorithms: tuple[str, ...],
    policy: Policy | None = None,
    temporal_aggregation: str = "max",
) -> dict[str, AlgorithmResult]:
    """Run one table cell (one dataset) for several algorithms.

    The stream and ground truth are computed once and shared. With
    ``config.shards > 1`` every trial runs sharded (see
    :func:`make_trial_sampler`).
    """
    config.validate()
    stream = config.build_stream()
    truth = compute_ground_truth(stream, config.pattern, config.checkpoints)
    budget = config.effective_budget(stream)
    results: dict[str, AlgorithmResult] = {}
    for name in algorithms:
        results[name] = run_algorithm(
            name,
            stream,
            truth,
            config.pattern,
            budget,
            trials=config.trials,
            seed=config.seed,
            policy=policy,
            temporal_aggregation=temporal_aggregation,
            shards=config.shards,
            shard_mode=config.shard_mode,
            executor=config.executor_options(),
        )
    return results
