"""Checkpoint / restore for WSD samplers.

Long-running stream consumers need to survive restarts. A WSD sampler's
full state is small — the reservoir entries (edge, rank, weight,
arrival time), the two thresholds, the running estimate, the clock, and
the rank-randomness generator state — so it serialises to a compact
JSON document. Restoring yields a sampler that continues *bit-for-bit*
identically to one that never stopped (verified by tests).

Only JSON-representable vertex types round-trip exactly; integer and
string vertices are supported out of the box (integers are the library
convention throughout).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.edges import Edge
from repro.samplers.wsd import WSD
from repro.weights.base import WeightFunction

__all__ = ["wsd_state_dict", "restore_wsd", "save_wsd", "load_wsd"]

_FORMAT_VERSION = 1


def _encode_vertex(v) -> list:
    if isinstance(v, bool) or not isinstance(v, (int, str)):
        raise ConfigurationError(
            f"checkpointing supports int/str vertices, got {type(v).__name__}"
        )
    return ["i", v] if isinstance(v, int) else ["s", v]


def _decode_vertex(pair: list):
    kind, value = pair
    return int(value) if kind == "i" else str(value)


def wsd_state_dict(sampler: WSD) -> dict:
    """Extract a JSON-serialisable snapshot of a WSD sampler's state."""
    entries = []
    for edge, rank in sampler._reservoir.items():
        u, v = edge
        entries.append(
            {
                "u": _encode_vertex(u),
                "v": _encode_vertex(v),
                "rank": float(rank),
                "weight": float(sampler._edge_weights[edge]),
                "time": int(sampler._edge_times[edge]),
            }
        )
    return {
        "format": _FORMAT_VERSION,
        "pattern": sampler.pattern.name,
        "budget": sampler.budget,
        "rank_fn": sampler.rank_fn.name,
        "tau_p": sampler.tau_p,
        "tau_q": sampler.tau_q,
        "estimate": sampler.estimate,
        "time": sampler.time,
        "reservoir": entries,
        "rng_state": sampler.rng.bit_generator.state,
    }


def restore_wsd(state: dict, weight_fn: WeightFunction) -> WSD:
    """Rebuild a WSD sampler from :func:`wsd_state_dict` output.

    The weight function is supplied by the caller (it may hold a learned
    policy or other non-serialisable resources) and must match the one
    used before checkpointing for the continuation to be meaningful.
    """
    if state.get("format") != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported checkpoint format: {state.get('format')!r}"
        )
    sampler = WSD(
        state["pattern"],
        int(state["budget"]),
        weight_fn,
        rank_fn=state["rank_fn"],
        rng=np.random.default_rng(),
    )
    sampler.rng.bit_generator.state = state["rng_state"]
    sampler._tau_p = float(state["tau_p"])
    sampler._tau_q = float(state["tau_q"])
    sampler._estimate = float(state["estimate"])
    sampler._time = int(state["time"])
    for entry in state["reservoir"]:
        edge: Edge = (
            _decode_vertex(entry["u"]),
            _decode_vertex(entry["v"]),
        )
        sampler._reservoir.push(edge, float(entry["rank"]))
        sampler._edge_weights[edge] = float(entry["weight"])
        sampler._edge_times[edge] = int(entry["time"])
        sampler._sample_add(edge)
    return sampler


def save_wsd(sampler: WSD, path: str | Path) -> None:
    """Serialise a WSD sampler's state to a JSON file."""
    Path(path).write_text(
        json.dumps(wsd_state_dict(sampler)), encoding="utf-8"
    )


def load_wsd(path: str | Path, weight_fn: WeightFunction) -> WSD:
    """Restore a WSD sampler from a JSON file written by :func:`save_wsd`."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"checkpoint file not found: {path}")
    try:
        state = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"malformed checkpoint {path}: {exc}") from exc
    return restore_wsd(state, weight_fn)
