"""Checkpoint / restore for kernel-based samplers.

Long-running stream consumers need to survive restarts. A sampler's
full state is small — for the threshold kernels (WSD, GPS, GPS-A) the
reservoir entries (edge, rank, weight, arrival time), the thresholds
with their generation counter, the running estimate, the clock, and the
rank-randomness generator state; for the random-pairing kernels
(ThinkD, Triest, WRS) the sampled edges plus the RP counters (and, for
WRS, the waiting-room FIFO) — so it serialises to a compact JSON
document. Restoring yields a sampler that continues *bit-for-bit*
identically to one that never stopped (verified by tests). This is also
the transport the process-parallel executor uses to ship shard replicas
into worker processes (:mod:`repro.streams.workers`).

The generic entry points are :func:`sampler_state_dict` /
:func:`restore_sampler` (and the file-level :func:`save_sampler` /
:func:`load_sampler`); the ``*_wsd`` names are kept as the historical
WSD-specific aliases.

Only JSON-representable vertex types round-trip exactly; integer and
string vertices are supported out of the box (integers are the library
convention throughout).
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError, ProtocolError
from repro.graph.edges import Edge
from repro.samplers.gps import GPS
from repro.samplers.gps_a import GPSA
from repro.samplers.kernel import PairingSamplerKernel, ThresholdSamplerKernel
from repro.samplers.random_pairing import RandomPairingReservoir
from repro.samplers.thinkd import ThinkD
from repro.samplers.triest import Triest
from repro.samplers.wrs import WRS
from repro.samplers.wsd import WSD
from repro.utils.io import atomic_write_text
from repro.weights.base import WeightFunction

__all__ = [
    "sampler_state_dict",
    "restore_sampler",
    "save_sampler",
    "load_sampler",
    "state_to_wire",
    "state_from_wire",
    "wsd_state_dict",
    "restore_wsd",
    "save_wsd",
    "load_wsd",
]

#: Version 1 was the WSD-only format; version 2 adds the ``algorithm``
#: tag, the threshold generation counter, and the pairing-kernel states.
#: WRS states are version-2 documents with extra (algorithm-gated)
#: fields, so the number did not need to move for them. Version 3 adds
#: the ``arena`` block (slab cutoff + the exact slabbed-vertex set):
#: slab *membership* is history-dependent (hysteresis keeps a slab down
#: to half the cutoff), so a v2 document — which still loads — can
#: under-slab the restored graph and the continuation may regroup a few
#: float additions; v3 restores are bit-identical continuations.
#: Version 4 adds the WSD-L serving state: the ``learned_weight`` block
#: (frozen actor parameters + feature settings, letting
#: :func:`restore_sampler` rebuild the weight function when the caller
#: does not pass one) and the ``arrival_tracker`` per-vertex aggregates
#: (integer sums/maxes — the replay rebuilds them exactly, the stored
#: copy is the same belt-and-braces overwrite ``wedge_light_inv`` gets).
_FORMAT_VERSION = 4
_SUPPORTED_FORMATS = (1, 2, 3, 4)

_THRESHOLD_ALGORITHMS: dict[str, type[ThresholdSamplerKernel]] = {
    "wsd": WSD,
    "gps": GPS,
    "gps-a": GPSA,
}
_PAIRING_ALGORITHMS: dict[str, type[PairingSamplerKernel]] = {
    "thinkd": ThinkD,
    "triest": Triest,
    "wrs": WRS,
}
_ALGORITHM_NAMES = {
    cls: name
    for name, cls in {**_THRESHOLD_ALGORITHMS, **_PAIRING_ALGORITHMS}.items()
}


def _encode_vertex(v) -> list:
    if isinstance(v, bool) or not isinstance(v, (int, str)):
        raise ConfigurationError(
            f"checkpointing supports int/str vertices, got {type(v).__name__}"
        )
    return ["i", v] if isinstance(v, int) else ["s", v]


def _decode_vertex(pair: list):
    kind, value = pair
    return int(value) if kind == "i" else str(value)


def _encode_edge(edge: Edge) -> dict:
    u, v = edge
    return {"u": _encode_vertex(u), "v": _encode_vertex(v)}


def _decode_edge(entry: dict) -> Edge:
    return (_decode_vertex(entry["u"]), _decode_vertex(entry["v"]))


# -- WSD-L serving state ------------------------------------------------------


def _learned_weight_state(weight_fn) -> dict | None:
    """Serialise a learned weight function, or ``None`` if not one.

    The actor is a single linear layer, so the whole serving artifact —
    parameters plus the feature settings that must match training — fits
    in a few JSON fields. Imported lazily: this module loads during
    ``repro.samplers`` initialisation, before ``repro.rl`` (which
    imports the samplers back) can be touched at module level.
    """
    from repro.rl.policy import Policy
    from repro.weights.learned import LearnedWeight

    if not isinstance(weight_fn, LearnedWeight):
        return None
    policy = weight_fn.policy
    if not isinstance(policy, Policy):
        # Foreign policy objects (training-time actors, test doubles)
        # have no declared parameter layout; the caller must re-supply
        # the weight function on restore, as before v4.
        return None
    return {
        "weights": [float(w) for w in policy.weights],
        "bias": policy.bias,
        "metadata": policy.metadata,
        "frozen": _is_frozen(policy),
        "temporal_aggregation": weight_fn.temporal_aggregation,
        "normalize": weight_fn.normalize,
        "minimum_weight": weight_fn.minimum_weight,
        "block_serving": weight_fn.block_serving,
    }


def _is_frozen(policy) -> bool:
    from repro.rl.policy import FrozenPolicy

    return isinstance(policy, FrozenPolicy)


def _learned_weight_from_state(state: dict):
    """Rebuild the checkpointed learned weight function, if any."""
    info = state.get("learned_weight")
    if info is None:
        return None
    from repro.rl.policy import FrozenPolicy, Policy
    from repro.weights.learned import LearnedWeight

    cls = FrozenPolicy if info.get("frozen", True) else Policy
    policy = cls(
        np.asarray(info["weights"], dtype=np.float64),
        float(info["bias"]),
        info.get("metadata"),
    )
    return LearnedWeight(
        policy,
        temporal_aggregation=info.get("temporal_aggregation", "max"),
        normalize=bool(info.get("normalize", True)),
        minimum_weight=float(info.get("minimum_weight", 1e-6)),
        block_serving=bool(info.get("block_serving", False)),
    )


# -- state extraction ---------------------------------------------------------


def sampler_state_dict(sampler) -> dict:
    """Extract a JSON-serialisable snapshot of a sampler's state.

    Supports every kernel-based sampler registered for restore: WSD,
    GPS, GPS-A (threshold kernels) and ThinkD, Triest, WRS (pairing
    kernels).
    """
    name = _ALGORITHM_NAMES.get(type(sampler))
    if name is None:
        raise ConfigurationError(
            f"checkpointing not supported for {type(sampler).__name__}; "
            f"supported: {sorted(_ALGORITHM_NAMES.values())}"
        )
    state = {
        "format": _FORMAT_VERSION,
        "algorithm": name,
        "pattern": sampler.pattern.name,
        "budget": sampler.budget,
        "time": sampler.time,
        "rng_state": sampler.rng.bit_generator.state,
        # The vertex interner's full id order. Ids are assigned in
        # first-seen order and survive edge eviction, so they cannot be
        # reconstructed from the sample alone; the id-ordered clique
        # enumerators need the exact order for the restored sampler's
        # float accumulation to stay bit-identical. Grows with the
        # number of vertices ever sampled.
        "interner": [
            _encode_vertex(v)
            for v in sampler._sampled_graph.interner.labels()
        ],
    }
    graph = sampler._sampled_graph
    if graph.arena is not None:
        # Slab membership is trajectory state, not derivable from the
        # sample: hysteresis keeps a slab while the degree sits in
        # [cutoff/2, cutoff), and which path computes a delta decides
        # its float grouping. Record cutoff + the exact slabbed set so
        # the restored sampler routes queries identically.
        state["arena"] = {
            "cutoff": graph.slab_cutoff,
            "slabbed": [
                _encode_vertex(v) for v in graph.slabbed_vertices()
            ],
        }
    if isinstance(sampler, ThresholdSamplerKernel):
        tagged = sampler._tagged if isinstance(sampler, GPSA) else ()
        entries = []
        for edge, rank in sampler._reservoir.items():
            entry = _encode_edge(edge)
            entry["rank"] = float(rank)
            entry["weight"] = float(sampler._edge_weights[edge])
            entry["time"] = int(sampler._edge_times[edge])
            if edge in tagged:
                entry["tagged"] = True
            entries.append(entry)
        state["reservoir"] = entries
        state["rank_fn"] = sampler.rank_fn.name
        state["threshold"] = sampler.threshold
        state["threshold_generation"] = sampler.threshold_generation
        state["estimate"] = sampler.estimate
        if sampler._wedge_tracker is not None:
            # The light-side inverse-weight sums accumulate incremental
            # float residue over a run (x + a - a need not equal x), so
            # a restore that merely re-added the surviving edges would
            # continue a hair off the uninterrupted run. Serialising
            # the per-vertex sums keeps wedge continuations
            # bit-identical; the integer heavy counts and the
            # classification are exact functions of the restored
            # reservoir and need no extra state.
            state["wedge_light_inv"] = [
                [_encode_vertex(c), float(value)]
                for c, value in sampler._wedge_tracker.light_inv.items()
            ]
        if isinstance(sampler, WSD):
            state["tau_p"] = sampler.tau_p
            # Historical v1 field name, kept for readability of dumps.
            state["tau_q"] = sampler.tau_q
        learned = _learned_weight_state(sampler.weight_fn)
        if learned is not None:
            state["learned_weight"] = learned
        if getattr(sampler, "_att", None) is not None:
            state["arrival_tracker"] = [
                [_encode_vertex(v), int(s), int(m)]
                for v, (s, m) in sampler._att.aggregates().items()
            ]
    else:
        rp = sampler._rp
        # The reservoir's internal list order feeds future eviction
        # index draws, so the sample is serialised in list order and
        # replayed the same way on restore.
        state["sample"] = [_encode_edge(e) for e in rp]
        state["rp"] = {
            "d_i": rp.d_i,
            "d_o": rp.d_o,
            "population": rp.population,
        }
        if isinstance(sampler, WRS):
            # The waiting-room FIFO order decides which edge exits next,
            # so it is serialised in insertion order too. The capacity
            # split is stored explicitly: the constructor derives it
            # from a fraction, and int truncation must not re-round it
            # differently on restore.
            state["waiting_room"] = [
                [_encode_edge(e), int(t)]
                for e, t in sampler._waiting_room.items()
            ]
            state["waiting_room_capacity"] = sampler.waiting_room_capacity
            state["estimate"] = sampler.estimate
        elif isinstance(sampler, Triest):
            # τ is the real state; the estimate is derived at query time.
            state["tau"] = sampler.tau
        else:
            state["estimate"] = sampler.estimate
    return state


# -- restoration --------------------------------------------------------------


def _arena_pre_restore(sampler, state: dict) -> None:
    """Re-impose the checkpointed slab cutoff before any replay.

    The cutoff decides where slabs are built *during* the replay below,
    so it must match the recording run's before the first edge lands.
    Checkpoints without an arena block (v1/v2, or arena-less samplers)
    leave the construction-time configuration untouched; ditto when the
    restored sampler was built with arena acceleration disabled (the
    switch must match the recording run for bit-identity, the same
    contract the wedge toggle has).
    """
    info = state.get("arena")
    graph = sampler._sampled_graph
    if info is None or graph.arena is None:
        return
    graph.enable_arena(
        graph._payload_fn,
        cutoff=int(info["cutoff"]),
        payload2_fn=graph._payload2_fn,
    )


def _arena_post_restore(sampler, state: dict) -> None:
    """Force the slabbed-vertex set to exactly the recorded one.

    Replay rebuilds slabs only where the final degree reaches the
    cutoff; vertices the recording run kept slabbed through hysteresis
    are built here (and anything extra dropped) so the adaptive query
    routing — hence float grouping — continues identically.
    """
    info = state.get("arena")
    graph = sampler._sampled_graph
    if info is None or graph.arena is None:
        return
    graph.sync_arena_slabs(
        _decode_vertex(pair) for pair in info["slabbed"]
    )


def _restore_threshold(sampler: ThresholdSamplerKernel, state: dict) -> None:
    sampler._threshold = float(state["threshold"])
    if sampler._wedge_tracker is not None:
        # Seed the (still empty) wedge-delta aggregates with the
        # restored threshold so the reservoir replay below classifies
        # each edge against it.
        sampler._wedge_tracker.set_threshold(sampler._threshold)
    # Restoring starts a fresh memo epoch: the probability cache is
    # empty by construction, and the generation counter is restored so
    # consumers keyed on it (see ``tau_q_generation``) stay monotone
    # across the checkpoint boundary. Older (v1) checkpoints carry no
    # counter — reset to zero, which is consistent with a fresh cache.
    sampler._threshold_generation = int(state.get("threshold_generation", 0))
    sampler._prob_cache.clear()
    # Replay the interner first so every vertex gets its original dense
    # id regardless of the (heap-order) reservoir walk below. Older
    # checkpoints without the field fall back to insertion-order ids,
    # which is correct for order-insensitive patterns (triangle, wedge)
    # but may reorder id-sorted clique enumeration.
    intern = sampler._sampled_graph.interner.intern
    for pair in state.get("interner", ()):
        intern(_decode_vertex(pair))
    _arena_pre_restore(sampler, state)
    is_gpsa = isinstance(sampler, GPSA)
    for entry in state["reservoir"]:
        edge = _decode_edge(entry)
        sampler._reservoir.push(edge, float(entry["rank"]))
        sampler._edge_weights[edge] = float(entry["weight"])
        sampler._edge_times[edge] = int(entry["time"])
        if is_gpsa and entry.get("tagged", False):
            sampler._tagged.add(edge)
        else:
            sampler._sample_add(edge)
    if (
        sampler._wedge_tracker is not None
        and "wedge_light_inv" in state
    ):
        # Overwrite the rebuilt (clean) light sums with the serialised
        # ones so the continuation reproduces the uninterrupted run's
        # float state bit for bit. Checkpoints without the field (older
        # dumps) keep the clean rebuild — same values up to residue.
        sampler._wedge_tracker.light_inv = {
            _decode_vertex(pair): float(value)
            for pair, value in state["wedge_light_inv"]
        }
    if sampler._att is not None and "arrival_tracker" in state:
        # The replay above already rebuilt the tracker exactly (integer
        # sums are order-independent); the stored aggregates overwrite
        # it anyway, mirroring the ``wedge_light_inv`` idiom, so a
        # hand-edited or partially replayed document still restores the
        # recorded serving state.
        sampler._att.load_aggregates(
            {
                _decode_vertex(pair): (int(s), int(m))
                for pair, s, m in state["arrival_tracker"]
            }
        )
    _arena_post_restore(sampler, state)


def restore_sampler(
    state: dict,
    weight_fn: WeightFunction | None = None,
) -> WSD | GPS | GPSA | ThinkD | Triest:
    """Rebuild a sampler from :func:`sampler_state_dict` output.

    For the threshold kernels the weight function is supplied by the
    caller (it may hold a learned policy or other non-serialisable
    resources) and must match the one used before checkpointing for the
    continuation to be meaningful. v4 checkpoints of WSD-L samplers
    embed the actor parameters, so ``weight_fn`` may be omitted there —
    the learned weight function is rebuilt from the document (an
    explicitly supplied one still wins). The pairing kernels take no
    weight function.
    """
    fmt = state.get("format")
    if fmt not in _SUPPORTED_FORMATS:
        raise ConfigurationError(f"unsupported checkpoint format: {fmt!r}")
    if fmt == 1:
        # v1 checkpoints predate the algorithm tag and are always WSD.
        name = "wsd"
    else:
        name = state.get("algorithm")
        if name is None:
            raise ConfigurationError(
                "checkpoint is missing its 'algorithm' tag (corrupt v2 "
                "state)"
            )

    if name in _THRESHOLD_ALGORITHMS:
        if weight_fn is None:
            # v4 learned-weight checkpoints embed the frozen actor, so
            # WSD-L shards restore without the caller re-supplying the
            # weight function (the process executor relies on this).
            weight_fn = _learned_weight_from_state(state)
        if weight_fn is None:
            raise ConfigurationError(
                f"restoring {name!r} requires the weight function used "
                "before checkpointing"
            )
        cls = _THRESHOLD_ALGORITHMS[name]
        sampler = cls(
            state["pattern"],
            int(state["budget"]),
            weight_fn,
            rank_fn=state["rank_fn"],
            rng=np.random.default_rng(),
        )
        sampler.rng.bit_generator.state = state["rng_state"]
        sampler._estimate = float(state["estimate"])
        sampler._time = int(state["time"])
        if fmt == 1:
            # v1 stored τq under its own name and no generation counter.
            state = dict(state)
            state.setdefault("threshold", state["tau_q"])
        _restore_threshold(sampler, state)
        if isinstance(sampler, WSD):
            sampler._tau_p = float(state.get("tau_p", 0.0))
        return sampler

    cls = _PAIRING_ALGORITHMS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown checkpoint algorithm {name!r}; supported: "
            f"{sorted(_ALGORITHM_NAMES.values())}"
        )
    if cls is WRS and "waiting_room_capacity" not in state:
        raise ConfigurationError(
            "checkpoint tagged 'wrs' is missing its waiting-room state "
            "(corrupt or mislabelled document)"
        )
    sampler = cls(
        state["pattern"], int(state["budget"]), rng=np.random.default_rng()
    )
    if isinstance(sampler, WRS):
        # Re-impose the checkpointed budget split before any state is
        # replayed: the constructor derived its own waiting-room size
        # from the default fraction. The reservoir is rebuilt with the
        # stored capacity around the sampler's own generator (the same
        # sharing the constructor sets up), still empty at this point.
        wr_capacity = int(state["waiting_room_capacity"])
        sampler.waiting_room_capacity = wr_capacity
        sampler._rp = RandomPairingReservoir(
            int(state["budget"]) - wr_capacity, sampler.rng
        )
    sampler.rng.bit_generator.state = state["rng_state"]
    sampler._time = int(state["time"])
    intern = sampler._sampled_graph.interner.intern
    for pair in state.get("interner", ()):
        intern(_decode_vertex(pair))
    _arena_pre_restore(sampler, state)
    rp = sampler._rp
    rp.d_i = int(state["rp"]["d_i"])
    rp.d_o = int(state["rp"]["d_o"])
    rp.population = int(state["rp"]["population"])
    for entry in state["sample"]:
        edge = _decode_edge(entry)
        rp._add(edge)
        sampler._sample_add(edge)
    if isinstance(sampler, WRS):
        for entry, arrival in state["waiting_room"]:
            edge = _decode_edge(entry)
            sampler._waiting_room[edge] = int(arrival)
            sampler._sample_add(edge)
        # The wedge-delta degree aggregates mirror the FIFO just
        # repopulated above.
        sampler._rebuild_wr_degrees()
        sampler._estimate = float(state["estimate"])
    elif isinstance(sampler, Triest):
        sampler._tau = int(state["tau"])
    else:
        sampler._estimate = float(state["estimate"])
    _arena_post_restore(sampler, state)
    return sampler


# -- file round-trip ----------------------------------------------------------


def save_sampler(sampler, path: str | Path) -> None:
    """Serialise a sampler's state to a JSON file.

    The write is atomic (write-tmp + ``os.replace`` + fsync via
    :func:`~repro.utils.io.atomic_write_text`): a crash mid-save leaves
    the previous checkpoint intact instead of a torn JSON document —
    the durability contract the long-running service tier leans on.
    """
    atomic_write_text(path, json.dumps(sampler_state_dict(sampler)))


def load_sampler(
    path: str | Path, weight_fn: WeightFunction | None = None
):
    """Restore a sampler from a JSON file written by :func:`save_sampler`."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"checkpoint file not found: {path}")
    try:
        state = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"malformed checkpoint {path}: {exc}") from exc
    return restore_sampler(state, weight_fn)


# -- wire framing -------------------------------------------------------------

#: Framed-checkpoint wire header: magic, frame version, checksum,
#: payload length. The frame version tracks the *framing*, not the
#: checkpoint document format (which carries its own ``format`` field
#: and compatibility rules).
_STATE_WIRE_MAGIC = b"RPCK"
_STATE_WIRE_VERSION = 1
_STATE_WIRE_HEADER = struct.Struct("<4sBxxxIQ")


def state_to_wire(state: dict) -> bytes:
    """Frame a checkpoint state dict for network transport.

    The payload is the same JSON document :func:`save_sampler` writes,
    prefixed with a magic tag, a frame version byte, a CRC-32 of the
    payload, and the payload length — so a truncated, corrupted, or
    cross-version frame fails loudly at :func:`state_from_wire` instead
    of restoring a subtly wrong replica. This is the form shard
    checkpoints travel in over the remote executor's TCP transport
    (:mod:`repro.streams.transport`).
    """
    payload = json.dumps(state).encode("utf-8")
    return (
        _STATE_WIRE_HEADER.pack(
            _STATE_WIRE_MAGIC,
            _STATE_WIRE_VERSION,
            zlib.crc32(payload),
            len(payload),
        )
        + payload
    )


def state_from_wire(blob: bytes) -> dict:
    """Decode and integrity-check a frame built by :func:`state_to_wire`."""
    header = _STATE_WIRE_HEADER.size
    if len(blob) < header:
        raise ProtocolError(
            f"checkpoint frame truncated: {len(blob)} bytes is shorter "
            f"than the {header}-byte header"
        )
    magic, version, crc, length = _STATE_WIRE_HEADER.unpack_from(blob)
    if magic != _STATE_WIRE_MAGIC:
        raise ProtocolError(f"bad checkpoint frame magic {magic!r}")
    if version != _STATE_WIRE_VERSION:
        raise ProtocolError(
            f"checkpoint frame version {version} is not the supported "
            f"version {_STATE_WIRE_VERSION}"
        )
    payload = blob[header:]
    if len(payload) != length:
        raise ProtocolError(
            f"checkpoint frame truncated: header declares {length} "
            f"payload bytes, got {len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise ProtocolError("checkpoint frame failed its CRC-32 check")
    state = json.loads(payload.decode("utf-8"))
    if not isinstance(state, dict):
        raise ProtocolError(
            f"checkpoint frame payload is {type(state).__name__}, "
            "expected a state dict"
        )
    return state


# -- historical WSD-specific aliases ------------------------------------------


def wsd_state_dict(sampler: WSD) -> dict:
    """Extract a JSON-serialisable snapshot of a WSD sampler's state."""
    if not isinstance(sampler, WSD):
        raise ConfigurationError(
            f"wsd_state_dict expects a WSD sampler, got "
            f"{type(sampler).__name__}"
        )
    return sampler_state_dict(sampler)


def restore_wsd(state: dict, weight_fn: WeightFunction) -> WSD:
    """Rebuild a WSD sampler from :func:`wsd_state_dict` output."""
    sampler = restore_sampler(state, weight_fn)
    if not isinstance(sampler, WSD):
        raise ConfigurationError(
            f"checkpoint holds {state.get('algorithm')!r}, not a WSD state"
        )
    return sampler


def save_wsd(sampler: WSD, path: str | Path) -> None:
    """Serialise a WSD sampler's state to a JSON file."""
    if not isinstance(sampler, WSD):
        raise ConfigurationError(
            f"save_wsd expects a WSD sampler, got {type(sampler).__name__}"
        )
    save_sampler(sampler, path)


def load_wsd(path: str | Path, weight_fn: WeightFunction) -> WSD:
    """Restore a WSD sampler from a JSON file written by :func:`save_wsd`."""
    sampler = load_sampler(path, weight_fn)
    if not isinstance(sampler, WSD):
        raise ConfigurationError("checkpoint does not hold a WSD state")
    return sampler
