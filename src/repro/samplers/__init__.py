"""Stream samplers: WSD, GPS, GPS-A, and the uniform baselines.

All samplers are built on the composable kernel layer
(:mod:`repro.samplers.kernel`): the rank-threshold samplers instantiate
:class:`ThresholdSamplerKernel` with a reservoir policy, the uniform
baselines instantiate :class:`PairingSamplerKernel`, and both inherit
the batched ingestion fast paths.
"""

from repro.samplers.base import SubgraphCountingSampler
from repro.samplers.checkpoint import (
    load_sampler,
    load_wsd,
    restore_sampler,
    restore_wsd,
    sampler_state_dict,
    save_sampler,
    save_wsd,
    wsd_state_dict,
)
from repro.samplers.gps import GPS
from repro.samplers.gps_a import GPSA
from repro.samplers.heap import IndexedMinHeap
from repro.samplers.kernel import PairingSamplerKernel, ThresholdSamplerKernel
from repro.samplers.random_pairing import RandomPairingReservoir
from repro.samplers.ranks import (
    ExponentialRank,
    InverseUniformRank,
    RankFunction,
    get_rank_function,
)
from repro.samplers.thinkd import ThinkD
from repro.samplers.thinkd_fast import ThinkDFast
from repro.samplers.triest import Triest
from repro.samplers.wrs import WRS
from repro.samplers.wsd import WSD

__all__ = [
    "SubgraphCountingSampler",
    "ThresholdSamplerKernel",
    "PairingSamplerKernel",
    "GPS",
    "GPSA",
    "WSD",
    "Triest",
    "ThinkD",
    "ThinkDFast",
    "WRS",
    "IndexedMinHeap",
    "RandomPairingReservoir",
    "RankFunction",
    "InverseUniformRank",
    "ExponentialRank",
    "get_rank_function",
    "save_wsd",
    "load_wsd",
    "wsd_state_dict",
    "restore_wsd",
    "save_sampler",
    "load_sampler",
    "sampler_state_dict",
    "restore_sampler",
]
