"""Rank functions r = f(w) for priority-based weighted sampling.

GPS and WSD assign each edge a random *rank* that grows with its weight;
the reservoir keeps the highest-ranked edges, and the estimators need
the closed-form inclusion probability P[r(e) > threshold]. A rank
family must therefore expose both the sampling rule and that
probability. Two classic families are provided:

* :class:`InverseUniformRank` — ``r = w / u`` with ``u ~ U(0, 1]``; the
  paper's (and GPS's) default, with
  ``P[r > τ] = min(1, w/τ)``.
* :class:`ExponentialRank` — ``r = u^{1/w}`` (Efraimidis–Spirakis),
  with ``P[r > τ] = 1 - τ^w``; provided as an extension/ablation.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["RankFunction", "InverseUniformRank", "ExponentialRank", "get_rank_function"]


class RankFunction(abc.ABC):
    """A monotone random rank family with known inclusion probability."""

    name: str

    @abc.abstractmethod
    def rank(self, weight: float, rng: np.random.Generator) -> float:
        """Draw a random rank for an edge of ``weight`` (> 0)."""

    def rank_from_uniform(self, weight: float, u: float) -> float:
        """Return the rank for ``weight`` from one raw uniform draw.

        ``u`` is a value from ``rng.random()`` (i.e. in [0, 1)). Rank
        families that implement this let the samplers pre-draw
        randomness in numpy blocks (``rng.random(n)`` yields the exact
        doubles of n scalar draws), which is the batched-ingestion fast
        path; :meth:`rank` must then equal
        ``rank_from_uniform(weight, rng.random())`` bit for bit.
        Families without a closed form may leave this unimplemented —
        the samplers fall back to per-event :meth:`rank` draws.
        """
        raise NotImplementedError

    @abc.abstractmethod
    def inclusion_probability(self, weight: float, threshold: float) -> float:
        """Return P[rank(weight) > threshold].

        A ``threshold`` of 0 (the initial τ value) always yields 1.
        """


class InverseUniformRank(RankFunction):
    """r = w / u, u ~ Uniform(0, 1] — the paper's rank function."""

    name = "inverse-uniform"

    def rank(self, weight: float, rng: np.random.Generator) -> float:
        return self.rank_from_uniform(weight, rng.random())

    def rank_from_uniform(self, weight: float, u: float) -> float:
        if weight <= 0.0:
            raise ConfigurationError(f"weight must be positive, got {weight}")
        # u is in [0, 1); map to (0, 1] to avoid division by 0.
        return weight / (1.0 - u)

    def inclusion_probability(self, weight: float, threshold: float) -> float:
        if threshold <= 0.0:
            return 1.0
        return min(1.0, weight / threshold)


class ExponentialRank(RankFunction):
    """r = u^{1/w}, u ~ Uniform(0, 1] — Efraimidis–Spirakis ranks.

    Ranks live in (0, 1]; P[r > τ] = 1 - τ^w for τ in [0, 1).
    """

    name = "exponential"

    def rank(self, weight: float, rng: np.random.Generator) -> float:
        return self.rank_from_uniform(weight, rng.random())

    def rank_from_uniform(self, weight: float, u: float) -> float:
        if weight <= 0.0:
            raise ConfigurationError(f"weight must be positive, got {weight}")
        return float((1.0 - u) ** (1.0 / weight))

    def inclusion_probability(self, weight: float, threshold: float) -> float:
        if threshold <= 0.0:
            return 1.0
        if threshold >= 1.0:
            return 0.0
        return 1.0 - float(threshold**weight)


_RANKS: dict[str, RankFunction] = {
    InverseUniformRank.name: InverseUniformRank(),
    ExponentialRank.name: ExponentialRank(),
}


def get_rank_function(name: str | RankFunction) -> RankFunction:
    """Resolve a rank function by name (or pass an instance through)."""
    if isinstance(name, RankFunction):
        return name
    key = name.lower()
    if key not in _RANKS:
        raise ConfigurationError(
            f"unknown rank function {name!r}; known: {sorted(_RANKS)}"
        )
    return _RANKS[key]
