"""GPS-A: GPS with lazy deletion tags (Section III-B).

GPS-A adapts GPS to fully dynamic streams by the simplest possible
device: a deletion does not remove the edge from the reservoir — it only
attaches a "DEL" tag. Tagged edges keep occupying reservoir slots (and
keep participating in the rank competition), so inclusion probabilities
stay exactly those of GPS (Eq. (2) still holds), but the *useful*
sample R \\ R_tag shrinks over time — the accuracy drawback WSD removes.

The estimator (Theorem 2) adds X_J on formations and subtracts Y_J on
destructions, both products of 1 / P[r(e) > r_{M+1}] over the instance's
other edges restricted to untagged sampled edges.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graph.edges import Edge
from repro.patterns.base import Pattern
from repro.samplers.base import SampledGraphMixin, SubgraphCountingSampler
from repro.samplers.heap import IndexedMinHeap
from repro.samplers.ranks import RankFunction, get_rank_function
from repro.weights.base import WeightContext, WeightFunction

__all__ = ["GPSA"]


class GPSA(SampledGraphMixin, SubgraphCountingSampler):
    """GPS-A: fully dynamic GPS with lazy "DEL" tags.

    The sampled graph (used for pattern enumeration) contains only the
    *untagged* reservoir edges — tagged edges are dead for estimation
    but still consume budget, which is exactly the inefficiency the
    paper's Table II/III columns expose.
    """

    def __init__(
        self,
        pattern: str | Pattern,
        budget: int,
        weight_fn: WeightFunction,
        rank_fn: str | RankFunction = "inverse-uniform",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        SubgraphCountingSampler.__init__(self, pattern, budget, rng)
        SampledGraphMixin.__init__(self)
        self.weight_fn = weight_fn
        self.rank_fn = get_rank_function(rank_fn)
        self._reservoir = IndexedMinHeap()
        self._edge_weights: dict[Edge, float] = {}
        self._edge_times: dict[Edge, int] = {}
        self._tagged: set[Edge] = set()
        self._r_m_plus_1 = 0.0
        #: P[r(e) > r_{M+1}] per sampled edge, valid for the current
        #: threshold; cleared whenever r_{M+1} grows.
        self._prob_cache: dict[Edge, float] = {}

    @property
    def threshold(self) -> float:
        """The current estimator threshold r_{M+1}."""
        return self._r_m_plus_1

    @property
    def num_tagged(self) -> int:
        """|R_tag|: reservoir slots wasted on deleted edges."""
        return len(self._tagged)

    def _raise_threshold(self, rank: float) -> None:
        """r_{M+1} ← max(r_{M+1}, rank), invalidating memoized probs."""
        if rank > self._r_m_plus_1:
            self._r_m_plus_1 = rank
            self._prob_cache.clear()

    def _instance_value(self, instance: tuple[Edge, ...]) -> float:
        cache = self._prob_cache
        weights = self._edge_weights
        inc_prob = self.rank_fn.inclusion_probability
        threshold = self._r_m_plus_1
        value = 1.0
        for other in instance:
            p = cache.get(other)
            if p is None:
                p = inc_prob(weights[other], threshold)
                cache[other] = p
            value /= p
        return value

    def _process_insertion(self, edge: Edge) -> None:
        u, v = edge
        wf = self.weight_fn
        if wf.needs_context:
            instances = list(
                self.pattern.instances_completed(self._sampled_graph, u, v)
            )
            for instance in instances:
                value = self._instance_value(instance)
                self._estimate += value
                if self.instance_observers:
                    self._emit_instance(edge, instance, value)
            ctx = WeightContext(
                edge=edge,
                time=self._time,
                instances=instances,
                adjacency=self._sampled_graph,
                edge_times=self._edge_times,
                pattern=self.pattern,
            )
            weight = float(wf(ctx))
        else:
            # Light path: stream the instances with hoisted lookups and
            # the probability product computed inline — the memo dict
            # is skipped because r_{M+1} grows on almost every
            # full-reservoir event, so entries rarely survive long
            # enough to be reused (values are identical either way).
            num_instances = 0
            observers = self.instance_observers
            inc_prob = self.rank_fn.inclusion_probability
            weights = self._edge_weights
            threshold = self._r_m_plus_1
            estimate = self._estimate
            for instance in self.pattern.instances_completed(
                self._sampled_graph, u, v
            ):
                num_instances += 1
                value = 1.0
                for other in instance:
                    value /= inc_prob(weights[other], threshold)
                estimate += value
                if observers:
                    self._estimate = estimate
                    self._emit_instance(edge, instance, value)
            self._estimate = estimate
            weight = float(
                wf.light_weight(num_instances, self._sampled_graph, u, v)
            )
        rank = self.rank_fn.rank(weight, self.rng)

        if edge in self._reservoir:
            # Re-insertion of an edge whose tagged ghost still occupies a
            # slot: the ghost carries no information, so replace it with
            # the fresh arrival (the one departure from pure laziness
            # needed to keep edge keys unique).
            self._reservoir.remove(edge)
            self._drop_state(edge)

        if len(self._reservoir) < self.budget:
            self._admit(edge, weight, rank)
            return
        min_rank = self._reservoir.min_priority()
        if rank > min_rank:
            evicted, evicted_rank = self._reservoir.replace_min(edge, rank)
            self._drop_state(evicted)
            self._raise_threshold(evicted_rank)
            self._record_admission(edge, weight)
        else:
            self._raise_threshold(rank)

    def _process_deletion(self, edge: Edge) -> None:
        # Tag first (removing e_t from the useful sample), then count the
        # destroyed instances whose *other* edges are untagged & sampled.
        if edge in self._reservoir and edge not in self._tagged:
            self._tagged.add(edge)
            self._sample_remove(edge)
        u, v = edge
        observers = self.instance_observers
        inc_prob = self.rank_fn.inclusion_probability
        weights = self._edge_weights
        threshold = self._r_m_plus_1
        estimate = self._estimate
        for instance in self.pattern.instances_completed(
            self._sampled_graph, u, v
        ):
            value = 1.0
            for other in instance:
                value /= inc_prob(weights[other], threshold)
            estimate -= value
            if observers:
                self._estimate = estimate
                self._emit_instance(edge, instance, -value)
        self._estimate = estimate

    def _admit(self, edge: Edge, weight: float, rank: float) -> None:
        self._reservoir.push(edge, rank)
        self._record_admission(edge, weight)

    def _record_admission(self, edge: Edge, weight: float) -> None:
        """Record sample state for an edge already placed in the heap."""
        self._edge_weights[edge] = weight
        self._edge_times[edge] = self._time
        self._sample_add(edge)

    def _drop_state(self, edge: Edge) -> None:
        del self._edge_weights[edge]
        del self._edge_times[edge]
        self._prob_cache.pop(edge, None)
        if edge in self._tagged:
            self._tagged.discard(edge)
        else:
            self._sample_remove(edge)

    @property
    def sample_size(self) -> int:
        """Total occupied slots, tagged ghosts included."""
        return len(self._reservoir)

    @property
    def useful_sample_size(self) -> int:
        """|R \\ R_tag|: untagged (estimation-relevant) edges."""
        return len(self._reservoir) - len(self._tagged)

    def sampled_edges(self) -> Iterator[Edge]:
        """Iterate the *untagged* sampled edges."""
        return (e for e in self._reservoir if e not in self._tagged)
