"""GPS-A: GPS with lazy deletion tags (Section III-B).

GPS-A adapts GPS to fully dynamic streams by the simplest possible
device: a deletion does not remove the edge from the reservoir — it only
attaches a "DEL" tag. Tagged edges keep occupying reservoir slots (and
keep participating in the rank competition), so inclusion probabilities
stay exactly those of GPS (Eq. (2) still holds), but the *useful*
sample R \\ R_tag shrinks over time — the accuracy drawback WSD removes.

The estimator (Theorem 2) adds X_J on formations and subtracts Y_J on
destructions, both products of 1 / P[r(e) > r_{M+1}] over the instance's
other edges restricted to untagged sampled edges.

The shared estimator/weight/reservoir plumbing — including the batched
ingestion fast loop — lives in
:class:`~repro.samplers.kernel.ThresholdSamplerKernel`; this class
contributes the lazy-tag bookkeeping on top of the GPS priority
competition.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graph.edges import Edge
from repro.patterns.base import Pattern
from repro.samplers.kernel import KERNEL_GPSA, ThresholdSamplerKernel
from repro.samplers.ranks import RankFunction
from repro.weights.base import WeightFunction

__all__ = ["GPSA"]


class GPSA(ThresholdSamplerKernel):
    """GPS-A: fully dynamic GPS with lazy "DEL" tags.

    The sampled graph (used for pattern enumeration) contains only the
    *untagged* reservoir edges — tagged edges are dead for estimation
    but still consume budget, which is exactly the inefficiency the
    paper's Table II/III columns expose.
    """

    _policy = KERNEL_GPSA
    _memoize_light = False

    def __init__(
        self,
        pattern: str | Pattern,
        budget: int,
        weight_fn: WeightFunction,
        rank_fn: str | RankFunction = "inverse-uniform",
        rng: np.random.Generator | int | None = None,
        capture_context: bool | None = None,
    ) -> None:
        super().__init__(
            pattern, budget, weight_fn, rank_fn, rng, capture_context
        )
        self._tagged: set[Edge] = set()

    @property
    def num_tagged(self) -> int:
        """|R_tag|: reservoir slots wasted on deleted edges."""
        return len(self._tagged)

    def _insert(self, edge: Edge, weight: float, rank: float) -> None:
        if edge in self._reservoir:
            # Re-insertion of an edge whose tagged ghost still occupies a
            # slot: the ghost carries no information, so replace it with
            # the fresh arrival (the one departure from pure laziness
            # needed to keep edge keys unique).
            self._reservoir.remove(edge)
            self._drop_state(edge)

        if len(self._reservoir) < self.budget:
            self._admit(edge, weight, rank)
            return
        min_rank = self._reservoir.min_priority()
        if rank > min_rank:
            evicted, evicted_rank = self._reservoir.replace_min(edge, rank)
            self._drop_state(evicted)
            self._raise_threshold(evicted_rank)
            self._record_admission(edge, weight)
        else:
            self._raise_threshold(rank)

    def _process_deletion(self, edge: Edge) -> None:
        # Tag first (removing e_t from the useful sample), then count the
        # destroyed instances whose *other* edges are untagged & sampled.
        if edge in self._reservoir and edge not in self._tagged:
            self._tagged.add(edge)
            self._sample_remove(edge)
        self._subtract_destroyed(edge)

    def _drop_state(self, edge: Edge) -> None:
        del self._edge_weights[edge]
        del self._edge_times[edge]
        self._prob_cache.pop(edge, None)
        if edge in self._tagged:
            self._tagged.discard(edge)
        else:
            self._sample_remove(edge)

    @property
    def sample_size(self) -> int:
        """Total occupied slots, tagged ghosts included."""
        return len(self._reservoir)

    @property
    def useful_sample_size(self) -> int:
        """|R \\ R_tag|: untagged (estimation-relevant) edges."""
        return len(self._reservoir) - len(self._tagged)

    def sampled_edges(self) -> Iterator[Edge]:
        """Iterate the *untagged* sampled edges."""
        return (e for e in self._reservoir if e not in self._tagged)
