"""GPS: graph priority sampling for insertion-only streams (Section III-A).

GPS [Ahmed et al., VLDB'17] keeps the M highest-ranked edges seen so
far. The estimator threshold is r_{M+1}, the (M+1)-th largest rank among
all edges seen — equivalently the running maximum rank over every edge
that was discarded or evicted. Inclusion obeys
P[e ∈ R(t)] = P[r(e) > r_{M+1}] (Eq. (1)), and the estimator

    c(t) = Σ_J ∏_{e ∈ J\\e_last} I(e ∈ R) / P[r(e) > r_{M+1}]

is unbiased for insertion-only streams (Theorem 1). GPS rejects
deletion events (see Example 1 of the paper for why it *cannot* support
them); :class:`~repro.samplers.gps_a.GPSA` is the fully dynamic
adaptation.

The shared estimator/weight/reservoir plumbing — including the batched
ingestion fast loop — lives in
:class:`~repro.samplers.kernel.ThresholdSamplerKernel`; this class
contributes only the GPS priority competition (evict the minimum when
beaten, raise r_{M+1} by every discarded rank) and the insertion-only
guard.
"""

from __future__ import annotations

from repro.errors import SamplerError
from repro.graph.edges import Edge
from repro.samplers.kernel import KERNEL_GPS, ThresholdSamplerKernel

__all__ = ["GPS"]


class GPS(ThresholdSamplerKernel):
    """Graph priority sampling (insertion-only)."""

    _policy = KERNEL_GPS
    # r_{M+1} grows on almost every full-reservoir event, so memo
    # entries rarely survive long enough to be reused on the per-event
    # light paths — skip the cache there (values identical either way).
    _memoize_light = False

    def _insert(self, edge: Edge, weight: float, rank: float) -> None:
        if len(self._reservoir) < self.budget:
            self._admit(edge, weight, rank)
            return
        min_rank = self._reservoir.min_priority()
        if rank > min_rank:
            evicted, evicted_rank = self._reservoir.replace_min(edge, rank)
            self._evict(evicted)
            self._raise_threshold(evicted_rank)
            self._record_admission(edge, weight)
        else:
            self._raise_threshold(rank)

    def _process_deletion(self, edge: Edge) -> None:
        raise SamplerError(
            "GPS only supports insertion-only streams; use GPSA or WSD "
            "for fully dynamic streams (paper Section III-A, Example 1)"
        )
