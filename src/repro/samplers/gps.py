"""GPS: graph priority sampling for insertion-only streams (Section III-A).

GPS [Ahmed et al., VLDB'17] keeps the M highest-ranked edges seen so
far. The estimator threshold is r_{M+1}, the (M+1)-th largest rank among
all edges seen — equivalently the running maximum rank over every edge
that was discarded or evicted. Inclusion obeys
P[e ∈ R(t)] = P[r(e) > r_{M+1}] (Eq. (1)), and the estimator

    c(t) = Σ_J ∏_{e ∈ J\\e_last} I(e ∈ R) / P[r(e) > r_{M+1}]

is unbiased for insertion-only streams (Theorem 1). GPS rejects
deletion events (see Example 1 of the paper for why it *cannot* support
them); :class:`~repro.samplers.gps_a.GPSA` is the fully dynamic
adaptation.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import SamplerError
from repro.graph.edges import Edge
from repro.patterns.base import Pattern
from repro.samplers.base import SampledGraphMixin, SubgraphCountingSampler
from repro.samplers.heap import IndexedMinHeap
from repro.samplers.ranks import RankFunction, get_rank_function
from repro.weights.base import WeightContext, WeightFunction

__all__ = ["GPS"]


class GPS(SampledGraphMixin, SubgraphCountingSampler):
    """Graph priority sampling (insertion-only)."""

    def __init__(
        self,
        pattern: str | Pattern,
        budget: int,
        weight_fn: WeightFunction,
        rank_fn: str | RankFunction = "inverse-uniform",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        SubgraphCountingSampler.__init__(self, pattern, budget, rng)
        SampledGraphMixin.__init__(self)
        self.weight_fn = weight_fn
        self.rank_fn = get_rank_function(rank_fn)
        self._reservoir = IndexedMinHeap()
        self._edge_weights: dict[Edge, float] = {}
        self._edge_times: dict[Edge, int] = {}
        # r_{M+1}: the largest rank among discarded/evicted edges, which
        # equals the (M+1)-th largest rank seen once > M edges arrived.
        self._r_m_plus_1 = 0.0

    @property
    def threshold(self) -> float:
        """The current estimator threshold r_{M+1} (0 while t <= M)."""
        return self._r_m_plus_1

    def inclusion_probability(self, edge: Edge) -> float:
        """P[e ∈ R(t)] = P[r(e) > r_{M+1}] for a sampled edge."""
        weight = self._edge_weights[edge]
        return self.rank_fn.inclusion_probability(weight, self._r_m_plus_1)

    def _instance_value(self, instance: tuple[Edge, ...]) -> float:
        value = 1.0
        for other in instance:
            value /= self.rank_fn.inclusion_probability(
                self._edge_weights[other], self._r_m_plus_1
            )
        return value

    def _process_insertion(self, edge: Edge) -> None:
        u, v = edge
        instances = list(
            self.pattern.instances_completed(self._sampled_graph, u, v)
        )
        for instance in instances:
            value = self._instance_value(instance)
            self._estimate += value
            if self.instance_observers:
                self._emit_instance(edge, instance, value)

        ctx = WeightContext(
            edge=edge,
            time=self._time,
            instances=instances,
            adjacency=self._sampled_graph,
            edge_times=self._edge_times,
            pattern=self.pattern,
        )
        weight = float(self.weight_fn(ctx))
        rank = self.rank_fn.rank(weight, self.rng)
        if len(self._reservoir) < self.budget:
            self._admit(edge, weight, rank)
            return
        _, min_rank = self._reservoir.peek_min()
        if rank > min_rank:
            evicted, evicted_rank = self._reservoir.pop_min()
            self._evict(evicted)
            self._r_m_plus_1 = max(self._r_m_plus_1, evicted_rank)
            self._admit(edge, weight, rank)
        else:
            self._r_m_plus_1 = max(self._r_m_plus_1, rank)

    def _process_deletion(self, edge: Edge) -> None:
        raise SamplerError(
            "GPS only supports insertion-only streams; use GPSA or WSD "
            "for fully dynamic streams (paper Section III-A, Example 1)"
        )

    def _admit(self, edge: Edge, weight: float, rank: float) -> None:
        self._reservoir.push(edge, rank)
        self._edge_weights[edge] = weight
        self._edge_times[edge] = self._time
        self._sample_add(edge)

    def _evict(self, edge: Edge) -> None:
        del self._edge_weights[edge]
        del self._edge_times[edge]
        self._sample_remove(edge)

    @property
    def sample_size(self) -> int:
        return len(self._reservoir)

    def sampled_edges(self) -> Iterator[Edge]:
        return iter(self._reservoir)
