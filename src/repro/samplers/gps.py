"""GPS: graph priority sampling for insertion-only streams (Section III-A).

GPS [Ahmed et al., VLDB'17] keeps the M highest-ranked edges seen so
far. The estimator threshold is r_{M+1}, the (M+1)-th largest rank among
all edges seen — equivalently the running maximum rank over every edge
that was discarded or evicted. Inclusion obeys
P[e ∈ R(t)] = P[r(e) > r_{M+1}] (Eq. (1)), and the estimator

    c(t) = Σ_J ∏_{e ∈ J\\e_last} I(e ∈ R) / P[r(e) > r_{M+1}]

is unbiased for insertion-only streams (Theorem 1). GPS rejects
deletion events (see Example 1 of the paper for why it *cannot* support
them); :class:`~repro.samplers.gps_a.GPSA` is the fully dynamic
adaptation.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import SamplerError
from repro.graph.edges import Edge
from repro.patterns.base import Pattern
from repro.samplers.base import SampledGraphMixin, SubgraphCountingSampler
from repro.samplers.heap import IndexedMinHeap
from repro.samplers.ranks import RankFunction, get_rank_function
from repro.weights.base import WeightContext, WeightFunction

__all__ = ["GPS"]


class GPS(SampledGraphMixin, SubgraphCountingSampler):
    """Graph priority sampling (insertion-only)."""

    def __init__(
        self,
        pattern: str | Pattern,
        budget: int,
        weight_fn: WeightFunction,
        rank_fn: str | RankFunction = "inverse-uniform",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        SubgraphCountingSampler.__init__(self, pattern, budget, rng)
        SampledGraphMixin.__init__(self)
        self.weight_fn = weight_fn
        self.rank_fn = get_rank_function(rank_fn)
        self._reservoir = IndexedMinHeap()
        self._edge_weights: dict[Edge, float] = {}
        self._edge_times: dict[Edge, int] = {}
        # r_{M+1}: the largest rank among discarded/evicted edges, which
        # equals the (M+1)-th largest rank seen once > M edges arrived.
        self._r_m_plus_1 = 0.0
        #: P[r(e) > r_{M+1}] per sampled edge, valid for the current
        #: threshold; cleared whenever r_{M+1} grows.
        self._prob_cache: dict[Edge, float] = {}

    @property
    def threshold(self) -> float:
        """The current estimator threshold r_{M+1} (0 while t <= M)."""
        return self._r_m_plus_1

    def inclusion_probability(self, edge: Edge) -> float:
        """P[e ∈ R(t)] = P[r(e) > r_{M+1}] for a sampled edge."""
        cache = self._prob_cache
        p = cache.get(edge)
        if p is None:
            p = self.rank_fn.inclusion_probability(
                self._edge_weights[edge], self._r_m_plus_1
            )
            cache[edge] = p
        return p

    def _raise_threshold(self, rank: float) -> None:
        """r_{M+1} ← max(r_{M+1}, rank), invalidating memoized probs."""
        if rank > self._r_m_plus_1:
            self._r_m_plus_1 = rank
            self._prob_cache.clear()

    def _instance_value(self, instance: tuple[Edge, ...]) -> float:
        cache = self._prob_cache
        weights = self._edge_weights
        inc_prob = self.rank_fn.inclusion_probability
        threshold = self._r_m_plus_1
        value = 1.0
        for other in instance:
            p = cache.get(other)
            if p is None:
                p = inc_prob(weights[other], threshold)
                cache[other] = p
            value /= p
        return value

    def _process_insertion(self, edge: Edge) -> None:
        u, v = edge
        wf = self.weight_fn
        if wf.needs_context:
            instances = list(
                self.pattern.instances_completed(self._sampled_graph, u, v)
            )
            for instance in instances:
                value = self._instance_value(instance)
                self._estimate += value
                if self.instance_observers:
                    self._emit_instance(edge, instance, value)
            ctx = WeightContext(
                edge=edge,
                time=self._time,
                instances=instances,
                adjacency=self._sampled_graph,
                edge_times=self._edge_times,
                pattern=self.pattern,
            )
            weight = float(wf(ctx))
        else:
            # Light path: stream the instances with hoisted lookups and
            # the probability product computed inline — the memo dict
            # is skipped because r_{M+1} grows on almost every
            # full-reservoir event, so entries rarely survive long
            # enough to be reused (values are identical either way).
            num_instances = 0
            observers = self.instance_observers
            inc_prob = self.rank_fn.inclusion_probability
            weights = self._edge_weights
            threshold = self._r_m_plus_1
            estimate = self._estimate
            for instance in self.pattern.instances_completed(
                self._sampled_graph, u, v
            ):
                num_instances += 1
                value = 1.0
                for other in instance:
                    value /= inc_prob(weights[other], threshold)
                estimate += value
                if observers:
                    self._estimate = estimate
                    self._emit_instance(edge, instance, value)
            self._estimate = estimate
            weight = float(
                wf.light_weight(num_instances, self._sampled_graph, u, v)
            )
        rank = self.rank_fn.rank(weight, self.rng)
        if len(self._reservoir) < self.budget:
            self._admit(edge, weight, rank)
            return
        min_rank = self._reservoir.min_priority()
        if rank > min_rank:
            evicted, evicted_rank = self._reservoir.replace_min(edge, rank)
            self._evict(evicted)
            self._raise_threshold(evicted_rank)
            self._record_admission(edge, weight)
        else:
            self._raise_threshold(rank)

    def _process_deletion(self, edge: Edge) -> None:
        raise SamplerError(
            "GPS only supports insertion-only streams; use GPSA or WSD "
            "for fully dynamic streams (paper Section III-A, Example 1)"
        )

    def _admit(self, edge: Edge, weight: float, rank: float) -> None:
        self._reservoir.push(edge, rank)
        self._record_admission(edge, weight)

    def _record_admission(self, edge: Edge, weight: float) -> None:
        """Record sample state for an edge already placed in the heap."""
        self._edge_weights[edge] = weight
        self._edge_times[edge] = self._time
        self._sample_add(edge)

    def _evict(self, edge: Edge) -> None:
        del self._edge_weights[edge]
        del self._edge_times[edge]
        self._prob_cache.pop(edge, None)
        self._sample_remove(edge)

    @property
    def sample_size(self) -> int:
        return len(self._reservoir)

    def sampled_edges(self) -> Iterator[Edge]:
        return iter(self._reservoir)
