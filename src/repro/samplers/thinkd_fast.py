"""ThinkD-FAST: Bernoulli-sampled "think before you discard".

The ThinkD paper ships two variants: ThinkD-ACC (random pairing, the
one the WSD paper benchmarks, implemented in
:mod:`repro.samplers.thinkd`) and **ThinkD-FAST**, which trades the
fixed budget for a fixed *sampling probability* p: every inserted edge
is kept independently with probability p, so sample size is binomial
rather than capped. Its estimator is the simplest of the family — every
instance found when an edge arrives contributes 1/p^{|H|-1}.

Provided as the natural extra baseline (and as the simplest reference
implementation of the estimate-before-discard idea). The constructor
also accepts a budget, used only to derive p when ``sampling_probability``
is not given (p = budget / expected_stream_edges is the usual rule; we
expose it directly instead of guessing stream sizes, honouring the
"no knowledge" constraint).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.edges import Edge
from repro.graph.stream import EdgeEvent, EventBlock
from repro.patterns.base import Pattern
from repro.samplers.base import SampledGraphMixin, SubgraphCountingSampler

__all__ = ["ThinkDFast"]


class ThinkDFast(SampledGraphMixin, SubgraphCountingSampler):
    """ThinkD-FAST with independent Bernoulli(p) edge sampling.

    Args:
        pattern: the target pattern H.
        sampling_probability: p in (0, 1]; each inserted edge is stored
            with probability p, independently.
        rng: seed or generator.

    Note: unlike the fixed-budget samplers, memory is p·(alive edges) in
    expectation — ``budget`` is reported as the *expected* sample size
    for interface compatibility and never enforced as a hard cap.
    """

    def __init__(
        self,
        pattern: str | Pattern,
        sampling_probability: float,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not 0.0 < sampling_probability <= 1.0:
            raise ConfigurationError(
                "sampling_probability must be in (0, 1], got "
                f"{sampling_probability}"
            )
        # Base-class budget is informational only for this sampler.
        SubgraphCountingSampler.__init__(self, pattern, budget=2**31, rng=rng)
        SampledGraphMixin.__init__(self)
        self.sampling_probability = sampling_probability
        self._sample: set[Edge] = set()
        # 1 / p^{|H|-1}: the Horvitz-Thompson value of one instance.
        self._instance_value = sampling_probability ** -(
            self.pattern.num_edges - 1
        )

    def _delta_from_edge(self, edge: Edge, sign: float = 1.0) -> float:
        u, v = edge
        if not self.instance_observers:
            count = self.pattern.count_completed(self._sampled_graph, u, v)
            return count * self._instance_value
        delta = 0.0
        for instance in self.pattern.instances_completed(
            self._sampled_graph, u, v
        ):
            delta += self._instance_value
            self._emit_instance(edge, instance, sign * self._instance_value)
        return delta

    def _process_insertion(self, edge: Edge) -> None:
        self._estimate += self._delta_from_edge(edge)
        if self.rng.random() < self.sampling_probability:
            self._sample.add(edge)
            self._sample_add(edge)

    def _process_deletion(self, edge: Edge) -> None:
        if edge in self._sample:
            self._sample.discard(edge)
            self._sample_remove(edge)
        self._estimate -= self._delta_from_edge(edge, sign=-1.0)

    # -- batched ingestion -------------------------------------------------------

    def process_batch(
        self, events: EventBlock | Iterable[EdgeEvent]
    ) -> float:
        """Consume a batch with the Bernoulli draws pre-drawn in a block.

        Every insertion consumes exactly one uniform regardless of the
        outcome, so — unlike the random-pairing reservoirs — the
        randomness *can* be pre-drawn in one numpy block
        (``rng.random(n)`` yields the exact doubles of n scalar draws).
        Bit-identical to per-event :meth:`process` under a fixed seed;
        falls back to the generic path when observers are registered.
        """
        from repro.samplers.kernel import batch_columns

        is_block = isinstance(events, EventBlock)
        if not is_block and not isinstance(events, (list, tuple)):
            events = list(events)
        if self.instance_observers:
            return SubgraphCountingSampler.process_batch(self, events)
        if is_block:
            ops, us, vs = events.columns()
            num_insertions = events.num_insertions
        else:
            ops, us, vs = batch_columns(events)
            num_insertions = sum(ops)
        next_uniform = (
            iter(self.rng.random(num_insertions).tolist()).__next__
            if num_insertions
            else iter(()).__next__
        )
        probability = self.sampling_probability
        instance_value = self._instance_value
        count_completed = self.pattern.count_completed
        graph = self._sampled_graph
        add_edge = graph.add_edge_canonical
        remove_edge = graph.remove_edge_canonical
        sample = self._sample
        estimate = self._estimate
        time_now = self._time
        try:
            for is_ins, u, v in zip(ops, us, vs):
                time_now += 1
                edge = (u, v)
                if is_ins:
                    count = count_completed(graph, u, v)
                    if count:
                        estimate += count * instance_value
                    if next_uniform() < probability:
                        sample.add(edge)
                        add_edge(edge)
                else:
                    if edge in sample:
                        sample.discard(edge)
                        remove_edge(edge)
                    count = count_completed(graph, u, v)
                    if count:
                        estimate -= count * instance_value
        finally:
            self._estimate = estimate
            self._time = time_now
        return estimate

    @property
    def sample_size(self) -> int:
        return len(self._sample)

    def sampled_edges(self) -> Iterator[Edge]:
        return iter(set(self._sample))
