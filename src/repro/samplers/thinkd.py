"""ThinkD: "think before you discard" counting on fully dynamic streams.

ThinkD [Shin et al., ECML-PKDD'18] improves on Triest-FD with one idea:
*every* arriving event updates the estimate — using the sampled graph —
before the sampling decision is made, so no discovered instance is
wasted. The sample itself is still a uniform random-pairing reservoir.
This is the accurate variant (ThinkD-ACC): each instance found when
edge e arrives contributes the inverse of the joint probability that
its |H| - 1 other edges are sampled, computed from the realised sample
size s and alive population n (the RP uniformity guarantee):

    1 / ∏_{j<|H|-1} (s - j)/(n - j).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graph.edges import Edge
from repro.patterns.base import Pattern
from repro.samplers.base import SampledGraphMixin, SubgraphCountingSampler
from repro.samplers.random_pairing import RandomPairingReservoir

__all__ = ["ThinkD"]


class ThinkD(SampledGraphMixin, SubgraphCountingSampler):
    """ThinkD-ACC: update the estimate before the sampling decision."""

    def __init__(
        self,
        pattern: str | Pattern,
        budget: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        SubgraphCountingSampler.__init__(self, pattern, budget, rng)
        SampledGraphMixin.__init__(self)
        self._rp = RandomPairingReservoir(budget, self.rng)

    def _delta_from_edge(self, edge: Edge, sign: float = 1.0) -> float:
        """Weighted count of instances ``edge`` completes in the sample.

        Called with the sample *not* containing ``edge``; the joint
        inclusion probability of the |H| - 1 other edges uses the
        current sample size and alive population (``edge`` excluded from
        both, matching the RP conditioning). ``sign`` only affects what
        instance observers see; the returned magnitude is unsigned.
        """
        u, v = edge
        if not self.instance_observers:
            count = self.pattern.count_completed(self._sampled_graph, u, v)
            if count == 0:
                return 0.0
            p = self._rp.joint_inclusion_probability(
                self.pattern.num_edges - 1
            )
            if p <= 0.0:
                # Instances were found, so the other edges *are* sampled;
                # p can only be 0 through population undercount, which
                # the feasibility invariants rule out. Defensive no-op.
                return 0.0
            return count / p
        delta = 0.0
        p = self._rp.joint_inclusion_probability(self.pattern.num_edges - 1)
        for instance in self.pattern.instances_completed(
            self._sampled_graph, u, v
        ):
            if p <= 0.0:
                continue
            delta += 1.0 / p
            self._emit_instance(edge, instance, sign / p)
        return delta

    def _process_insertion(self, edge: Edge) -> None:
        # Think (update the estimate) before the sampling decision.
        self._estimate += self._delta_from_edge(edge)
        added, evicted = self._rp.insert(edge)
        if evicted is not None:
            self._sample_remove(evicted)
        if added:
            self._sample_add(edge)

    def _process_deletion(self, edge: Edge) -> None:
        # Remove the edge from sample/population first so that the
        # destroyed instances are weighted by the post-deletion sampling
        # state (and the edge cannot appear as its own "other" edge).
        removed = self._rp.delete(edge)
        if removed:
            self._sample_remove(edge)
        self._estimate -= self._delta_from_edge(edge, sign=-1.0)

    @property
    def sample_size(self) -> int:
        return len(self._rp)

    def sampled_edges(self) -> Iterator[Edge]:
        return iter(self._rp)
