"""ThinkD: "think before you discard" counting on fully dynamic streams.

ThinkD [Shin et al., ECML-PKDD'18] improves on Triest-FD with one idea:
*every* arriving event updates the estimate — using the sampled graph —
before the sampling decision is made, so no discovered instance is
wasted. The sample itself is still a uniform random-pairing reservoir.
This is the accurate variant (ThinkD-ACC): each instance found when
edge e arrives contributes the inverse of the joint probability that
its |H| - 1 other edges are sampled, computed from the realised sample
size s and alive population n (the RP uniformity guarantee):

    1 / ∏_{j<|H|-1} (s - j)/(n - j).

Reservoir state and introspection come from
:class:`~repro.samplers.kernel.PairingSamplerKernel`; the batched
ingestion override inlines the triangle/wedge counting and the
random-pairing arithmetic (bit-identical to per-event processing under
a fixed seed — the RP randomness is consumed in exactly the same
order).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import ConfigurationError
from repro.graph.edges import Edge
from repro.graph.stream import EdgeEvent, EventBlock
from repro.samplers.kernel import PairingSamplerKernel, batch_columns

__all__ = ["ThinkD"]


class ThinkD(PairingSamplerKernel):
    """ThinkD-ACC: update the estimate before the sampling decision."""

    def _delta_from_edge(self, edge: Edge, sign: float = 1.0) -> float:
        """Weighted count of instances ``edge`` completes in the sample.

        Called with the sample *not* containing ``edge``; the joint
        inclusion probability of the |H| - 1 other edges uses the
        current sample size and alive population (``edge`` excluded from
        both, matching the RP conditioning). ``sign`` only affects what
        instance observers see; the returned magnitude is unsigned.
        """
        u, v = edge
        if not self.instance_observers:
            count = self.pattern.count_completed(self._sampled_graph, u, v)
            if count == 0:
                return 0.0
            p = self._rp.joint_inclusion_probability(
                self.pattern.num_edges - 1
            )
            if p <= 0.0:
                # Instances were found, so the other edges *are* sampled;
                # p can only be 0 through population undercount, which
                # the feasibility invariants rule out. Defensive no-op.
                return 0.0
            return count / p
        delta = 0.0
        p = self._rp.joint_inclusion_probability(self.pattern.num_edges - 1)
        for instance in self.pattern.instances_completed(
            self._sampled_graph, u, v
        ):
            if p <= 0.0:
                continue
            delta += 1.0 / p
            self._emit_instance(edge, instance, sign / p)
        return delta

    def _process_insertion(self, edge: Edge) -> None:
        # Think (update the estimate) before the sampling decision.
        self._estimate += self._delta_from_edge(edge)
        added, evicted = self._rp.insert(edge)
        if evicted is not None:
            self._sample_remove(evicted)
        if added:
            self._sample_add(edge)

    def _process_deletion(self, edge: Edge) -> None:
        # Remove the edge from sample/population first so that the
        # destroyed instances are weighted by the post-deletion sampling
        # state (and the edge cannot appear as its own "other" edge).
        removed = self._rp.delete(edge)
        if removed:
            self._sample_remove(edge)
        self._estimate -= self._delta_from_edge(edge, sign=-1.0)

    # -- batched ingestion -------------------------------------------------------

    def process_batch(
        self, events: EventBlock | Iterable[EdgeEvent]
    ) -> float:
        """Consume a batch with the RP arithmetic and counting inlined.

        Accepts an :class:`~repro.graph.stream.EventBlock` or any
        :class:`EdgeEvent` iterable. Bit-identical to event-at-a-time
        :meth:`process` under a fixed seed: the random-pairing
        reservoir consumes its randomness in exactly the same order
        (its decisions are data-dependent, so the uniforms cannot be
        pre-drawn as a block the way the rank samplers do) and the
        estimator performs the same floating-point operations. Falls
        back to the per-event path when observers are registered.
        """
        if not isinstance(events, (list, tuple, EventBlock)):
            events = list(events)
        if self.instance_observers:
            return PairingSamplerKernel.process_batch(self, events)
        ops, us, vs = batch_columns(events)

        count = self._batch_counter()
        k = self.pattern.num_edges - 1
        graph = self._sampled_graph
        add_edge = graph.add_edge_canonical
        remove_edge = graph.remove_edge_canonical
        rp = self._rp
        items = rp._items
        index = rp._index
        rp_add = rp._add
        rp_remove = rp._remove
        evict_random = rp._evict_random
        rng_random = self.rng.random
        capacity = rp.capacity
        estimate = self._estimate
        time_now = self._time
        d_i = rp.d_i
        d_o = rp.d_o
        population = rp.population

        try:
            for is_ins, u, v in zip(ops, us, vs):
                time_now += 1
                edge = (u, v)
                if is_ins:
                    # -- think: count completions against the sample.
                    c = count(u, v)
                    if c:
                        s = len(items)
                        n = population
                        if s >= k and n >= k:
                            if k == 1:
                                p = 1.0 * (s / n)
                            elif k == 2:
                                p = 1.0 * (s / n)
                                p *= (s - 1) / (n - 1)
                            else:
                                p = 1.0
                                for j in range(k):
                                    p *= (s - j) / (n - j)
                            if p > 0.0:
                                estimate += c / p
                    # -- random pairing insert (same rng consumption
                    # order — and the same duplicate guard, raised
                    # before any reservoir mutation — as
                    # RandomPairingReservoir.insert).
                    if edge in index:
                        raise ConfigurationError(
                            f"item {edge!r} already sampled"
                        )
                    population += 1
                    uncompensated = d_i + d_o
                    if uncompensated == 0:
                        if len(items) < capacity:
                            rp_add(edge)
                            add_edge(edge)
                        elif rng_random() < capacity / population:
                            evicted = evict_random()
                            rp_add(edge)
                            remove_edge(evicted)
                            add_edge(edge)
                        # else: not sampled.
                    elif rng_random() < d_i / uncompensated:
                        d_i -= 1
                        rp_add(edge)
                        add_edge(edge)
                    else:
                        d_o -= 1
                else:
                    # -- deletion: sample/population first, then count
                    # the destroyed instances post-deletion.
                    population -= 1
                    if edge in index:
                        rp_remove(edge)
                        d_i += 1
                        remove_edge(edge)
                    else:
                        d_o += 1
                    c = count(u, v)
                    if c:
                        s = len(items)
                        n = population
                        if s >= k and n >= k:
                            if k == 1:
                                p = 1.0 * (s / n)
                            elif k == 2:
                                p = 1.0 * (s / n)
                                p *= (s - 1) / (n - 1)
                            else:
                                p = 1.0
                                for j in range(k):
                                    p *= (s - j) / (n - j)
                            if p > 0.0:
                                estimate -= c / p
        finally:
            self._estimate = estimate
            self._time = time_now
            rp.d_i = d_i
            rp.d_o = d_o
            rp.population = population
        return estimate
