"""Triest-FD: uniform reservoir counting on fully dynamic streams.

Triest [De Stefani et al., TKDD'17] was the first fixed-memory subgraph
counter for fully dynamic streams. Its FD variant samples uniformly via
random pairing and maintains a counter τ of pattern instances whose
edges are *all* inside the sample; τ is updated only when the sample
changes (an edge enters or leaves it). The estimate rescales τ by the
closed-form probability that all |H| edges of an alive instance are
sampled:

    estimate = τ · ∏_{j<|H|} (W - j) / (ω - j),
    W = n + d_i + d_o,  ω = min(M, W).

The paper generalises Triest from triangles to arbitrary patterns the
same way we do here (the probability argument only uses |H|).

Reservoir state and introspection come from
:class:`~repro.samplers.kernel.PairingSamplerKernel`; the batched
ingestion override inlines the triangle/wedge counting and the
random-pairing arithmetic (bit-identical to per-event processing under
a fixed seed).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import ConfigurationError
from repro.graph.edges import Edge
from repro.graph.stream import EdgeEvent, EventBlock
from repro.samplers.kernel import PairingSamplerKernel, batch_columns

__all__ = ["Triest"]


class Triest(PairingSamplerKernel):
    """Triest-FD with uniform sampling via random pairing."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # τ: number of alive instances entirely within the sample.
        self._tau = 0

    @property
    def estimate(self) -> float:  # type: ignore[override]
        """Rescale τ by the inverse inclusion probability at query time."""
        p = self._rp.triest_inclusion_probability(self.pattern.num_edges)
        if p <= 0.0:
            return 0.0
        return self._tau / p

    @property
    def tau(self) -> int:
        """The raw in-sample instance counter τ."""
        return self._tau

    def _count_with_sample(self, edge: Edge) -> int:
        """Instances ``edge`` completes against the sampled graph."""
        u, v = edge
        return self.pattern.count_completed(self._sampled_graph, u, v)

    def _process_insertion(self, edge: Edge) -> None:
        added, evicted = self._rp.insert(edge)
        if evicted is not None:
            self._sample_remove(evicted)
            self._tau -= self._count_with_sample(evicted)
        if added:
            self._tau += self._count_with_sample(edge)
            self._sample_add(edge)

    def _process_deletion(self, edge: Edge) -> None:
        removed = self._rp.delete(edge)
        if removed:
            self._sample_remove(edge)
            self._tau -= self._count_with_sample(edge)

    # -- batched ingestion -------------------------------------------------------

    def process_batch(
        self, events: EventBlock | Iterable[EdgeEvent]
    ) -> float:
        """Consume a batch with the RP arithmetic and counting inlined.

        Accepts an :class:`~repro.graph.stream.EventBlock` or any
        :class:`EdgeEvent` iterable. Bit-identical to event-at-a-time
        :meth:`process` under a fixed seed (τ is integral; the
        random-pairing randomness is consumed in exactly the same
        order).
        """
        if not isinstance(events, (list, tuple, EventBlock)):
            events = list(events)
        ops, us, vs = batch_columns(events)
        count = self._batch_counter()
        graph = self._sampled_graph
        add_edge = graph.add_edge_canonical
        remove_edge = graph.remove_edge_canonical
        rp = self._rp
        items = rp._items
        index = rp._index
        rp_add = rp._add
        rp_remove = rp._remove
        evict_random = rp._evict_random
        rng_random = self.rng.random
        capacity = rp.capacity
        tau = self._tau
        time_now = self._time
        d_i = rp.d_i
        d_o = rp.d_o
        population = rp.population

        try:
            for is_ins, u, v in zip(ops, us, vs):
                time_now += 1
                edge = (u, v)
                if is_ins:
                    # -- random pairing insert (same rng consumption
                    # order — and the same duplicate guard, raised
                    # before any reservoir mutation — as
                    # RandomPairingReservoir.insert), with the τ
                    # updates spliced in at the sample transitions.
                    if edge in index:
                        raise ConfigurationError(
                            f"item {edge!r} already sampled"
                        )
                    population += 1
                    uncompensated = d_i + d_o
                    if uncompensated == 0:
                        if len(items) < capacity:
                            rp_add(edge)
                            tau += count(*edge)
                            add_edge(edge)
                        elif rng_random() < capacity / population:
                            evicted = evict_random()
                            rp_add(edge)
                            remove_edge(evicted)
                            tau -= count(*evicted)
                            tau += count(*edge)
                            add_edge(edge)
                        # else: not sampled.
                    elif rng_random() < d_i / uncompensated:
                        d_i -= 1
                        rp_add(edge)
                        tau += count(*edge)
                        add_edge(edge)
                    else:
                        d_o -= 1
                else:
                    population -= 1
                    if edge in index:
                        rp_remove(edge)
                        d_i += 1
                        remove_edge(edge)
                        tau -= count(*edge)
                    else:
                        d_o += 1
        finally:
            self._tau = tau
            self._time = time_now
            rp.d_i = d_i
            rp.d_o = d_o
            rp.population = population
        return self.estimate
