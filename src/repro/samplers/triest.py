"""Triest-FD: uniform reservoir counting on fully dynamic streams.

Triest [De Stefani et al., TKDD'17] was the first fixed-memory subgraph
counter for fully dynamic streams. Its FD variant samples uniformly via
random pairing and maintains a counter τ of pattern instances whose
edges are *all* inside the sample; τ is updated only when the sample
changes (an edge enters or leaves it). The estimate rescales τ by the
closed-form probability that all |H| edges of an alive instance are
sampled:

    estimate = τ · ∏_{j<|H|} (W - j) / (ω - j),
    W = n + d_i + d_o,  ω = min(M, W).

The paper generalises Triest from triangles to arbitrary patterns the
same way we do here (the probability argument only uses |H|).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graph.edges import Edge
from repro.patterns.base import Pattern
from repro.samplers.base import SampledGraphMixin, SubgraphCountingSampler
from repro.samplers.random_pairing import RandomPairingReservoir

__all__ = ["Triest"]


class Triest(SampledGraphMixin, SubgraphCountingSampler):
    """Triest-FD with uniform sampling via random pairing."""

    def __init__(
        self,
        pattern: str | Pattern,
        budget: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        SubgraphCountingSampler.__init__(self, pattern, budget, rng)
        SampledGraphMixin.__init__(self)
        self._rp = RandomPairingReservoir(budget, self.rng)
        # τ: number of alive instances entirely within the sample.
        self._tau = 0

    @property
    def estimate(self) -> float:  # type: ignore[override]
        """Rescale τ by the inverse inclusion probability at query time."""
        p = self._rp.triest_inclusion_probability(self.pattern.num_edges)
        if p <= 0.0:
            return 0.0
        return self._tau / p

    @property
    def tau(self) -> int:
        """The raw in-sample instance counter τ."""
        return self._tau

    def _count_with_sample(self, edge: Edge) -> int:
        """Instances ``edge`` completes against the sampled graph."""
        u, v = edge
        return self.pattern.count_completed(self._sampled_graph, u, v)

    def _process_insertion(self, edge: Edge) -> None:
        added, evicted = self._rp.insert(edge)
        if evicted is not None:
            self._sample_remove(evicted)
            self._tau -= self._count_with_sample(evicted)
        if added:
            self._tau += self._count_with_sample(edge)
            self._sample_add(edge)

    def _process_deletion(self, edge: Edge) -> None:
        removed = self._rp.delete(edge)
        if removed:
            self._sample_remove(edge)
            self._tau -= self._count_with_sample(edge)

    @property
    def sample_size(self) -> int:
        return len(self._rp)

    def sampled_edges(self) -> Iterator[Edge]:
        return iter(self._rp)
