"""WRS: waiting-room sampling exploiting temporal locality.

WRS [Shin, ICDM'17; Lee/Shin/Faloutsos, VLDBJ'20] splits the M-edge
budget into a *waiting room* that unconditionally stores the most recent
edges (inclusion probability 1) and a reservoir sampling the older ones.
Because many pattern instances are completed by temporally close edges
("temporal locality"), keeping recent edges deterministically catches a
disproportionate share of instances.

The original WRS targets insertion streams; the paper uses it as a fully
dynamic baseline. We implement the natural fully dynamic variant
(documented in DESIGN.md): the reservoir half runs random pairing over
the population of alive edges that have *exited* the waiting room, and a
deletion removes the edge from whichever half holds it. The estimator is
ThinkD-style (update before sampling): an instance found when edge e
arrives contributes ∏ 1/p(e') over its other edges, where p(e') = 1 for
waiting-room edges and the joint RP probability for reservoir edges.

The reservoir half and the introspection plumbing come from
:class:`~repro.samplers.kernel.PairingSamplerKernel` (instantiated with
the post-waiting-room capacity); batched ingestion inlines the
waiting-room FIFO, the random-pairing arithmetic and the
triangle/wedge estimators the same way the other pairing samplers do
(bit-identical to per-event processing under a fixed seed). For the
wedge pattern the per-instance waiting-room classification collapses
to degree arithmetic: a wedge has one "other" edge, so the delta is
``#waiting-room incident edges + #reservoir incident edges / P[1]``,
maintained O(1) via per-vertex waiting-room degrees.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.edges import Edge, canonical_edge
from repro.graph.stream import EdgeEvent, EventBlock
from repro.patterns.base import Pattern
from repro.patterns.cliques import FourClique, KClique, Triangle
from repro.patterns.paths import Wedge
from repro.samplers import kernel as _kernel
from repro.samplers.kernel import PairingSamplerKernel, batch_columns

__all__ = ["WRS"]


def _arena_wr_delta(m1, m2, joint_prob) -> float:
    """Triangle delta over gathered waiting-room membership lanes.

    ``m1`` / ``m2`` hold 1.0 for waiting-room edges, 0.0 for reservoir
    edges; an instance with ``ir`` reservoir edges contributes
    ``1 / joint_prob(ir)``, so the vectorised form buckets the common
    neighbours by ``ir`` (two count_nonzero passes) and accumulates the
    classes in ascending-``ir`` order. Both the per-event and the
    batched path call *this* function, which is what keeps them
    bit-identical to each other (grouping by class regroups the float
    additions relative to the scalar loop, hence the construction-time
    arena switch).
    """
    s = m1 + m2
    n0 = int(np.count_nonzero(s == 2.0))  # both edges in the WR
    n2 = int(np.count_nonzero(s == 0.0))  # both in the reservoir
    n1 = len(s) - n0 - n2
    delta = 0.0
    if n0:
        p = joint_prob(0)
        if p > 0.0:
            delta += n0 / p
    if n1:
        p = joint_prob(1)
        if p > 0.0:
            delta += n1 / p
    if n2:
        p = joint_prob(2)
        if p > 0.0:
            delta += n2 / p
    return delta


class WRS(PairingSamplerKernel):
    """Waiting-room sampling (fully dynamic variant).

    Args:
        pattern: the target pattern H.
        budget: M, the total storage budget (waiting room + reservoir).
        waiting_room_fraction: share of the budget given to the waiting
            room (the paper's α; WRS reports α ≈ 0.1–0.2 works best).
        rng: seed or generator.
    """

    def __init__(
        self,
        pattern: str | Pattern,
        budget: int,
        waiting_room_fraction: float = 0.1,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not 0.0 < waiting_room_fraction < 1.0:
            raise ConfigurationError(
                "waiting_room_fraction must be in (0, 1), got "
                f"{waiting_room_fraction}"
            )
        waiting_room_capacity = max(1, int(budget * waiting_room_fraction))
        reservoir_capacity = budget - waiting_room_capacity
        if reservoir_capacity < 1:
            raise ConfigurationError(
                f"budget M={budget} leaves no room for the reservoir"
            )
        super().__init__(
            pattern, budget, rng, reservoir_capacity=reservoir_capacity
        )
        self.waiting_room_capacity = waiting_room_capacity
        # FIFO of the most recent edges; dict preserves insertion order.
        self._waiting_room: OrderedDict[Edge, int] = OrderedDict()
        #: Per-vertex count of incident *waiting-room* edges — the O(1)
        #: wedge-delta state (reservoir degrees follow by subtraction
        #: from the sampled-graph degree). Only maintained for the
        #: wedge pattern.
        self._wr_degrees: dict | None = (
            {}
            if _kernel._WEDGE_VECTORIZATION and type(self.pattern) is Wedge
            else None
        )
        # Unlike ThinkD/Triest (pure C-level counts), WRS classifies
        # every instance edge by waiting-room membership in a Python
        # loop — exactly the shape the arena's payload lane vectorises.
        if _kernel._ARENA_ACCELERATION and isinstance(
            self.pattern, (Triangle, FourClique, KClique)
        ):
            self._sampled_graph.enable_arena(
                self._arena_payload, cutoff=_kernel._ARENA_CUTOFF
            )
        #: Vectorised triangle delta via the arena's membership lane.
        self._tri_membership = (
            self._sampled_graph.arena is not None
            and type(self.pattern) is Triangle
        )

    def _arena_payload(self, u, v) -> float:
        """Membership lane value of an existing edge (slab builds)."""
        edge = canonical_edge(u, v)
        return 1.0 if edge in self._waiting_room else 0.0

    def _sample_add(self, edge: Edge) -> None:
        # The membership lane must reflect which half holds the edge at
        # insertion time: live insertions and checkpointed WR entries
        # are already in the FIFO when this runs; restored reservoir
        # edges are not (and never will be), so they land as 0.0.
        self._sampled_graph.add_edge_canonical(
            edge, 1.0 if edge in self._waiting_room else 0.0
        )

    def _rebuild_wr_degrees(self) -> None:
        """Recompute the waiting-room degree aggregates from scratch.

        Needed after checkpoint restore, which repopulates the
        waiting-room FIFO directly.
        """
        if self._wr_degrees is None:
            return
        wrdeg: dict = {}
        for u, v in self._waiting_room:
            wrdeg[u] = wrdeg.get(u, 0) + 1
            wrdeg[v] = wrdeg.get(v, 0) + 1
        self._wr_degrees = wrdeg

    # -- estimation --------------------------------------------------------------

    def _wedge_delta(self, u, v) -> float:
        """O(1) wedge delta via waiting-room degree arithmetic.

        Every wedge completed by {u, v} has exactly one other edge,
        incident to its centre: waiting-room edges contribute 1 each,
        reservoir edges 1/P[one specific reservoir edge sampled]. The
        sampled graph never contains {u, v} at evaluation time, so the
        per-centre totals are plain degrees.
        """
        adj = self._sampled_graph._adj
        wrdeg = self._wr_degrees
        nc = adj.get(u)
        du = len(nc) if nc else 0
        nc = adj.get(v)
        dv = len(nc) if nc else 0
        wu = wrdeg.get(u, 0)
        wv = wrdeg.get(v, 0)
        in_reservoir = (du - wu) + (dv - wv)
        delta = float(wu + wv)
        if in_reservoir:
            rp = self._rp
            s = len(rp._items)
            n = rp.population
            if s >= 1 and n >= 1:
                p = s / n
                if p > 0.0:
                    delta += in_reservoir / p
        return delta

    def _delta_from_edge(self, edge: Edge, sign: float = 1.0) -> float:
        """Weighted count of instances ``edge`` completes in the sample.

        Waiting-room edges count with probability 1; for each instance
        the reservoir edges contribute jointly via the RP probability of
        its reservoir-edge count. ``sign`` only affects what instance
        observers see; the returned magnitude is unsigned.
        """
        u, v = edge
        if self._wr_degrees is not None and not self.instance_observers:
            return self._wedge_delta(u, v)
        if self._tri_membership and not self.instance_observers:
            pair = self._sampled_graph.common_payloads(u, v)
            if pair is not None:
                return _arena_wr_delta(
                    pair[0], pair[1], self._rp.joint_inclusion_probability
                )
        delta = 0.0
        # The RP probability depends only on the instance's count of
        # reservoir edges (sample size and population are fixed within
        # one event), so memoize it per count for this event.
        probs: dict[int, float] = {}
        joint_prob = self._rp.joint_inclusion_probability
        waiting_room = self._waiting_room
        observers = self.instance_observers
        for instance in self.pattern.instances_completed(
            self._sampled_graph, u, v
        ):
            in_reservoir = 0
            for other in instance:
                if other not in waiting_room:
                    in_reservoir += 1
            p = probs.get(in_reservoir)
            if p is None:
                p = joint_prob(in_reservoir)
                probs[in_reservoir] = p
            if p > 0.0:
                delta += 1.0 / p
                if observers:
                    self._emit_instance(edge, instance, sign / p)
        return delta

    # -- event handlers -------------------------------------------------------------

    def _wr_adjust(self, edge: Edge, delta: int) -> None:
        """Adjust the per-vertex waiting-room degrees for one edge."""
        wrdeg = self._wr_degrees
        for c in edge:
            left = wrdeg.get(c, 0) + delta
            if left:
                wrdeg[c] = left
            else:
                wrdeg.pop(c, None)

    def _process_insertion(self, edge: Edge) -> None:
        self._estimate += self._delta_from_edge(edge)
        # Admit to the waiting room unconditionally.
        self._waiting_room[edge] = self._time
        self._sample_add(edge)
        if self._wr_degrees is not None:
            self._wr_adjust(edge, 1)
        if len(self._waiting_room) <= self.waiting_room_capacity:
            return
        # Oldest edge exits the waiting room and joins the reservoir
        # population; random pairing decides whether it stays sampled.
        oldest, _ = self._waiting_room.popitem(last=False)
        if self._wr_degrees is not None:
            self._wr_adjust(oldest, -1)
        added, evicted = self._rp.insert(oldest)
        if evicted is not None:
            self._sample_remove(evicted)
        if not added:
            self._sample_remove(oldest)
        elif self._sampled_graph._arena is not None:
            # Still sampled, but now on the reservoir side: flip its
            # membership lane so the vectorised delta stays coherent.
            self._sampled_graph.set_edge_payload(oldest, 0.0)

    def _process_deletion(self, edge: Edge) -> None:
        # Remove the edge from whichever half holds it. Every alive edge
        # not in the waiting room has exited it, hence belongs to the
        # reservoir population and must go through random pairing.
        if edge in self._waiting_room:
            del self._waiting_room[edge]
            if self._wr_degrees is not None:
                self._wr_adjust(edge, -1)
            self._sample_remove(edge)
        else:
            removed = self._rp.delete(edge)
            if removed:
                self._sample_remove(edge)
        self._estimate -= self._delta_from_edge(edge, sign=-1.0)

    # -- batched ingestion -------------------------------------------------------

    def process_batch(
        self, events: EventBlock | Iterable[EdgeEvent]
    ) -> float:
        """Consume a batch with the WR/RP arithmetic and counting inlined.

        Bit-identical to event-at-a-time :meth:`process` under a fixed
        seed: the random-pairing reservoir consumes its randomness in
        exactly the same order and the estimator performs the same
        floating-point operations (the wedge pattern through the O(1)
        degree aggregates, the triangle through an inlined
        common-neighbour loop, other patterns through the generic
        enumeration — all with the same per-event probability memo).
        Falls back to the per-event driver when observers are
        registered.
        """
        is_block = isinstance(events, EventBlock)
        if not is_block and not isinstance(events, (list, tuple)):
            events = list(events)
        if self.instance_observers:
            return PairingSamplerKernel.process_batch(self, events)
        ops, us, vs = batch_columns(events)

        pattern = self.pattern
        mode = 1 if type(pattern) is Triangle else (
            2 if self._wr_degrees is not None else 0
        )
        instances_completed = pattern.instances_completed
        wedge_delta = self._wedge_delta
        graph = self._sampled_graph
        adj = graph._adj
        add_edge = graph.add_edge_canonical
        remove_edge = graph.remove_edge_canonical
        if self._tri_membership:
            cp = graph.common_payloads
            arena_slabs = graph._arena._slabs
        else:
            cp = None
            arena_slabs = None
        wr_delta = _arena_wr_delta
        set_payload = (
            graph.set_edge_payload if graph._arena is not None else None
        )
        canonical = canonical_edge
        waiting_room = self._waiting_room
        wr_capacity = self.waiting_room_capacity
        wrdeg = self._wr_degrees
        rp = self._rp
        rp_items = rp._items
        rp_index = rp._index
        rp_add = rp._add
        rp_remove = rp._remove
        evict_random = rp._evict_random
        joint_prob = rp.joint_inclusion_probability
        rng_random = self.rng.random
        capacity = rp.capacity
        estimate = self._estimate
        time_now = self._time

        try:
            for is_ins, u, v in zip(ops, us, vs):
                time_now += 1
                edge = (u, v)
                if is_ins:
                    # -- estimate before sampling (update-on-arrival).
                    if mode == 2:
                        estimate += wedge_delta(u, v)
                    elif mode == 1 and arena_slabs and (
                        (pair := cp(u, v)) is not None
                    ):
                        estimate += wr_delta(pair[0], pair[1], joint_prob)
                    elif mode == 1:
                        delta = 0.0
                        nu = adj.get(u)
                        nv = adj.get(v)
                        if nu and nv and not nu.isdisjoint(nv):
                            probs: dict = {}
                            probs_get = probs.get
                            for w in nu & nv:
                                try:
                                    e1 = (u, w) if u < w else (w, u)
                                    e2 = (v, w) if v < w else (w, v)
                                except TypeError:
                                    e1 = canonical(u, w)
                                    e2 = canonical(v, w)
                                ir = (e1 not in waiting_room) + (
                                    e2 not in waiting_room
                                )
                                p = probs_get(ir)
                                if p is None:
                                    p = joint_prob(ir)
                                    probs[ir] = p
                                if p > 0.0:
                                    delta += 1.0 / p
                        estimate += delta
                    else:
                        delta = 0.0
                        probs = {}
                        probs_get = probs.get
                        for instance in instances_completed(graph, u, v):
                            ir = 0
                            for other in instance:
                                if other not in waiting_room:
                                    ir += 1
                            p = probs_get(ir)
                            if p is None:
                                p = joint_prob(ir)
                                probs[ir] = p
                            if p > 0.0:
                                delta += 1.0 / p
                        estimate += delta
                    # -- waiting-room admission (unconditional).
                    waiting_room[edge] = time_now
                    add_edge(edge)
                    if wrdeg is not None:
                        wrdeg[u] = wrdeg.get(u, 0) + 1
                        wrdeg[v] = wrdeg.get(v, 0) + 1
                    if len(waiting_room) > wr_capacity:
                        # Oldest exits to the reservoir population;
                        # random pairing decides whether it stays
                        # sampled (same rng consumption order — and the
                        # same duplicate guard — as
                        # RandomPairingReservoir.insert).
                        oldest, _ = waiting_room.popitem(last=False)
                        if wrdeg is not None:
                            for c in oldest:
                                left = wrdeg[c] - 1
                                if left:
                                    wrdeg[c] = left
                                else:
                                    del wrdeg[c]
                        if oldest in rp_index:
                            raise ConfigurationError(
                                f"item {oldest!r} already sampled"
                            )
                        rp.population += 1
                        uncompensated = rp.d_i + rp.d_o
                        if uncompensated == 0:
                            if len(rp_items) < capacity:
                                rp_add(oldest)
                                if set_payload is not None:
                                    set_payload(oldest, 0.0)
                            elif rng_random() < capacity / rp.population:
                                evicted = evict_random()
                                rp_add(oldest)
                                if set_payload is not None:
                                    set_payload(oldest, 0.0)
                                remove_edge(evicted)
                            else:
                                remove_edge(oldest)
                        elif rng_random() < rp.d_i / uncompensated:
                            rp.d_i -= 1
                            rp_add(oldest)
                            if set_payload is not None:
                                set_payload(oldest, 0.0)
                        else:
                            rp.d_o -= 1
                            remove_edge(oldest)
                else:
                    # -- deletion: remove from whichever half holds the
                    # edge, then weigh the destroyed instances against
                    # the post-deletion state.
                    if edge in waiting_room:
                        del waiting_room[edge]
                        if wrdeg is not None:
                            for c in edge:
                                left = wrdeg[c] - 1
                                if left:
                                    wrdeg[c] = left
                                else:
                                    del wrdeg[c]
                        remove_edge(edge)
                    else:
                        rp.population -= 1
                        if edge in rp_index:
                            rp_remove(edge)
                            rp.d_i += 1
                            remove_edge(edge)
                        else:
                            rp.d_o += 1
                    if mode == 2:
                        estimate -= wedge_delta(u, v)
                    elif mode == 1 and arena_slabs and (
                        (pair := cp(u, v)) is not None
                    ):
                        estimate -= wr_delta(pair[0], pair[1], joint_prob)
                    elif mode == 1:
                        delta = 0.0
                        nu = adj.get(u)
                        nv = adj.get(v)
                        if nu and nv and not nu.isdisjoint(nv):
                            probs = {}
                            probs_get = probs.get
                            for w in nu & nv:
                                try:
                                    e1 = (u, w) if u < w else (w, u)
                                    e2 = (v, w) if v < w else (w, v)
                                except TypeError:
                                    e1 = canonical(u, w)
                                    e2 = canonical(v, w)
                                ir = (e1 not in waiting_room) + (
                                    e2 not in waiting_room
                                )
                                p = probs_get(ir)
                                if p is None:
                                    p = joint_prob(ir)
                                    probs[ir] = p
                                if p > 0.0:
                                    delta += 1.0 / p
                        estimate -= delta
                    else:
                        delta = 0.0
                        probs = {}
                        probs_get = probs.get
                        for instance in instances_completed(graph, u, v):
                            ir = 0
                            for other in instance:
                                if other not in waiting_room:
                                    ir += 1
                            p = probs_get(ir)
                            if p is None:
                                p = joint_prob(ir)
                                probs[ir] = p
                            if p > 0.0:
                                delta += 1.0 / p
                        estimate -= delta
        finally:
            self._estimate = estimate
            self._time = time_now
        return estimate

    # -- introspection ------------------------------------------------------------------

    @property
    def sample_size(self) -> int:
        return len(self._waiting_room) + len(self._rp)

    def sampled_edges(self):
        yield from self._waiting_room
        yield from self._rp

    @property
    def waiting_room_size(self) -> int:
        """Edges currently held in the waiting room."""
        return len(self._waiting_room)
