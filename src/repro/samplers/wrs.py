"""WRS: waiting-room sampling exploiting temporal locality.

WRS [Shin, ICDM'17; Lee/Shin/Faloutsos, VLDBJ'20] splits the M-edge
budget into a *waiting room* that unconditionally stores the most recent
edges (inclusion probability 1) and a reservoir sampling the older ones.
Because many pattern instances are completed by temporally close edges
("temporal locality"), keeping recent edges deterministically catches a
disproportionate share of instances.

The original WRS targets insertion streams; the paper uses it as a fully
dynamic baseline. We implement the natural fully dynamic variant
(documented in DESIGN.md): the reservoir half runs random pairing over
the population of alive edges that have *exited* the waiting room, and a
deletion removes the edge from whichever half holds it. The estimator is
ThinkD-style (update before sampling): an instance found when edge e
arrives contributes ∏ 1/p(e') over its other edges, where p(e') = 1 for
waiting-room edges and the joint RP probability for reservoir edges.

The reservoir half and the introspection plumbing come from
:class:`~repro.samplers.kernel.PairingSamplerKernel` (instantiated with
the post-waiting-room capacity); batched ingestion uses the kernel's
hoisted driver — the per-instance waiting-room/reservoir classification
keeps the estimator on the generic path.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.edges import Edge
from repro.patterns.base import Pattern
from repro.samplers.kernel import PairingSamplerKernel

__all__ = ["WRS"]


class WRS(PairingSamplerKernel):
    """Waiting-room sampling (fully dynamic variant).

    Args:
        pattern: the target pattern H.
        budget: M, the total storage budget (waiting room + reservoir).
        waiting_room_fraction: share of the budget given to the waiting
            room (the paper's α; WRS reports α ≈ 0.1–0.2 works best).
        rng: seed or generator.
    """

    def __init__(
        self,
        pattern: str | Pattern,
        budget: int,
        waiting_room_fraction: float = 0.1,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not 0.0 < waiting_room_fraction < 1.0:
            raise ConfigurationError(
                "waiting_room_fraction must be in (0, 1), got "
                f"{waiting_room_fraction}"
            )
        waiting_room_capacity = max(1, int(budget * waiting_room_fraction))
        reservoir_capacity = budget - waiting_room_capacity
        if reservoir_capacity < 1:
            raise ConfigurationError(
                f"budget M={budget} leaves no room for the reservoir"
            )
        super().__init__(
            pattern, budget, rng, reservoir_capacity=reservoir_capacity
        )
        self.waiting_room_capacity = waiting_room_capacity
        # FIFO of the most recent edges; dict preserves insertion order.
        self._waiting_room: OrderedDict[Edge, int] = OrderedDict()

    # -- estimation --------------------------------------------------------------

    def _delta_from_edge(self, edge: Edge, sign: float = 1.0) -> float:
        """Weighted count of instances ``edge`` completes in the sample.

        Waiting-room edges count with probability 1; for each instance
        the reservoir edges contribute jointly via the RP probability of
        its reservoir-edge count. ``sign`` only affects what instance
        observers see; the returned magnitude is unsigned.
        """
        u, v = edge
        delta = 0.0
        # The RP probability depends only on the instance's count of
        # reservoir edges (sample size and population are fixed within
        # one event), so memoize it per count for this event.
        probs: dict[int, float] = {}
        joint_prob = self._rp.joint_inclusion_probability
        waiting_room = self._waiting_room
        observers = self.instance_observers
        for instance in self.pattern.instances_completed(
            self._sampled_graph, u, v
        ):
            in_reservoir = 0
            for other in instance:
                if other not in waiting_room:
                    in_reservoir += 1
            p = probs.get(in_reservoir)
            if p is None:
                p = joint_prob(in_reservoir)
                probs[in_reservoir] = p
            if p > 0.0:
                delta += 1.0 / p
                if observers:
                    self._emit_instance(edge, instance, sign / p)
        return delta

    # -- event handlers -------------------------------------------------------------

    def _process_insertion(self, edge: Edge) -> None:
        self._estimate += self._delta_from_edge(edge)
        # Admit to the waiting room unconditionally.
        self._waiting_room[edge] = self._time
        self._sample_add(edge)
        if len(self._waiting_room) <= self.waiting_room_capacity:
            return
        # Oldest edge exits the waiting room and joins the reservoir
        # population; random pairing decides whether it stays sampled.
        oldest, _ = self._waiting_room.popitem(last=False)
        added, evicted = self._rp.insert(oldest)
        if evicted is not None:
            self._sample_remove(evicted)
        if not added:
            self._sample_remove(oldest)

    def _process_deletion(self, edge: Edge) -> None:
        # Remove the edge from whichever half holds it. Every alive edge
        # not in the waiting room has exited it, hence belongs to the
        # reservoir population and must go through random pairing.
        if edge in self._waiting_room:
            del self._waiting_room[edge]
            self._sample_remove(edge)
        else:
            removed = self._rp.delete(edge)
            if removed:
                self._sample_remove(edge)
        self._estimate -= self._delta_from_edge(edge, sign=-1.0)

    # -- introspection ------------------------------------------------------------------

    @property
    def sample_size(self) -> int:
        return len(self._waiting_room) + len(self._rp)

    def sampled_edges(self):
        yield from self._waiting_room
        yield from self._rp

    @property
    def waiting_room_size(self) -> int:
        """Edges currently held in the waiting room."""
        return len(self._waiting_room)
