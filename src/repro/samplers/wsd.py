"""WSD: weighted sampling with deletions (Section III-C, Algorithms 1 & 2).

WSD is the paper's core contribution: the first fixed-size,
weight-sensitive, one-pass sampling framework for *fully dynamic* graph
streams. It keeps a min-priority reservoir of at most M edges keyed by
random rank r(e) = f(w(e)) and maintains two thresholds:

* ``τp`` — the rank an arriving edge must exceed to be sampled;
* ``τq`` — the rank defining each sampled edge's inclusion probability,
  P[e ∈ R(t)] = P[r(e) > τq] (Lemma 1).

The update rules follow Algorithm 1 case by case:

* Case 1 (insertion, reservoir not full): sample iff r(e) > τp; τp and
  τq are *retained* (crucial — see the Example 1 discussion).
* Case 2 (insertion, reservoir full): τp ← minimum rank in R; if
  r(e) > τp the minimum edge is evicted, e enters, and τq ← τp
  (Case 2.1); else if r(e) > τq then τq ← r(e) (Case 2.2); else discard
  (Case 2.3).
* Case 3 (deletion): remove the edge from the reservoir if present;
  thresholds are untouched.

The estimator (Algorithm 2) updates *before* the reservoir: an
insertion (deletion) adds (subtracts) ∏_{e ∈ J\\e_t} 1 / P[r(e) > τq]
for every instance J completed (destroyed) by e_t together with sampled
edges. Theorem 4 proves unbiasedness for any M ≥ |H|.

All of the estimator plumbing — the context-heavy/light weight paths,
the memoized inclusion probabilities keyed on a threshold generation
counter, and the batched ingestion fast loop — lives in
:class:`~repro.samplers.kernel.ThresholdSamplerKernel`; this class
contributes exactly Algorithm 1's reservoir policy (the insert cases
and the Case 3 deletion rule) plus the τp/τq naming of the paper.
"""

from __future__ import annotations

from repro.graph.edges import Edge
from repro.samplers.kernel import KERNEL_WSD, ThresholdSamplerKernel

__all__ = ["WSD"]


class WSD(ThresholdSamplerKernel):
    """The WSD sampler + unbiased estimator (Algorithms 1 and 2).

    Args:
        pattern: the subgraph pattern H ("triangle", "wedge",
            "4-clique", or a :class:`~repro.patterns.base.Pattern`).
        budget: M, the maximum number of sampled edges.
        weight_fn: the weight function W(e, R); WSD-H and WSD-L are this
            sampler with different weight functions.
        rank_fn: the rank family r = f(w); defaults to the paper's
            ``w/u`` inverse-uniform ranks.
        rng: seed or generator driving the rank randomness.
        capture_context: force building (and exposing via
            :attr:`last_context`) the :class:`WeightContext` for every
            insertion even when the weight function does not need it —
            required by RL transition capture and the local-counting
            examples. Default ``None`` builds the context only when
            ``weight_fn.needs_context`` is true.
    """

    _policy = KERNEL_WSD
    # τq is stable between Case 2 transitions, so the probability memo
    # pays for itself on the per-event light paths.
    _memoize_light = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._tau_p = 0.0

    # -- thresholds -----------------------------------------------------------

    @property
    def tau_p(self) -> float:
        """The sampling rank threshold τp."""
        return self._tau_p

    @property
    def tau_q(self) -> float:
        """The probability rank threshold τq of Eq. (10)."""
        return self._threshold

    @property
    def tau_q_generation(self) -> int:
        """Number of τq changes so far (Case 2.1/2.2 transitions).

        The memoized inclusion probabilities are valid within one
        generation and invalidated exactly when this counter bumps.
        """
        return self._threshold_generation

    # -- reservoir policy (Algorithm 1) ----------------------------------------

    def _insert(self, edge: Edge, weight: float, rank: float) -> None:
        """Algorithm 1's ``insert`` function (Cases 1 and 2)."""
        if len(self._reservoir) < self.budget:
            # Case 1: non-full reservoir; τp and τq retained.
            if rank > self._tau_p:  # Case 1.1
                self._admit(edge, weight, rank)
            # Case 1.2: discard silently.
            return
        # Case 2: full reservoir; τp <- minimum rank in R.
        min_rank = self._reservoir.min_priority()
        self._tau_p = min_rank
        if rank > min_rank:  # Case 2.1: replace the minimum.
            evicted, _ = self._reservoir.replace_min(edge, rank)
            self._evict(evicted)
            self._record_admission(edge, weight)
            self._set_threshold(self._tau_p)
        elif rank > self._threshold:  # Case 2.2: near miss raises τq.
            self._set_threshold(rank)
        # Case 2.3: discard silently.

    def _process_deletion(self, edge: Edge) -> None:
        # Case 3 first: removing e_t from the reservoir does not change
        # any other edge's membership or τq, and it keeps e_t from
        # appearing as an "other" edge during enumeration below.
        if edge in self._reservoir:
            self._reservoir.remove(edge)
            self._evict(edge)
        self._subtract_destroyed(edge)
