"""WSD: weighted sampling with deletions (Section III-C, Algorithms 1 & 2).

WSD is the paper's core contribution: the first fixed-size,
weight-sensitive, one-pass sampling framework for *fully dynamic* graph
streams. It keeps a min-priority reservoir of at most M edges keyed by
random rank r(e) = f(w(e)) and maintains two thresholds:

* ``τp`` — the rank an arriving edge must exceed to be sampled;
* ``τq`` — the rank defining each sampled edge's inclusion probability,
  P[e ∈ R(t)] = P[r(e) > τq] (Lemma 1).

The update rules follow Algorithm 1 case by case:

* Case 1 (insertion, reservoir not full): sample iff r(e) > τp; τp and
  τq are *retained* (crucial — see the Example 1 discussion).
* Case 2 (insertion, reservoir full): τp ← minimum rank in R; if
  r(e) > τp the minimum edge is evicted, e enters, and τq ← τp
  (Case 2.1); else if r(e) > τq then τq ← r(e) (Case 2.2); else discard
  (Case 2.3).
* Case 3 (deletion): remove the edge from the reservoir if present;
  thresholds are untouched.

The estimator (Algorithm 2) updates *before* the reservoir: an
insertion (deletion) adds (subtracts) ∏_{e ∈ J\\e_t} 1 / P[r(e) > τq]
for every instance J completed (destroyed) by e_t together with sampled
edges. Theorem 4 proves unbiasedness for any M ≥ |H|.

Hot-path engineering (the estimates are bit-identical to the naive
implementation under a fixed seed):

* **Memoized inclusion probabilities.** P[r(e) > τq] depends only on a
  sampled edge's weight and τq, so values are cached per edge and the
  cache is invalidated exactly when τq changes (Case 2.1/2.2) — a
  generation counter (:attr:`tau_q_generation`) exposes those
  transitions. ``_instance_value`` is then a dict lookup per edge
  instead of repeated rank-function calls.
* **Context guard.** The :class:`WeightContext` snapshot materialises
  the instance list; it is only built when the weight function declares
  ``needs_context`` or the caller asked for ``capture_context`` (RL
  transition capture). Heuristic weight functions take the light path.
* **Batched ingestion.** :meth:`process_batch` pre-draws the rank
  randomness for a whole batch in one numpy block (``rng.random(n)``
  yields the exact doubles of n scalar draws) and runs a loop with
  hoisted attribute lookups and no observer plumbing when no observers
  are registered.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError, EdgeExistsError
from repro.graph.edges import Edge, canonical_edge
from repro.graph.stream import INSERT, EdgeEvent
from repro.patterns.base import Pattern
from repro.patterns.cliques import Triangle
from repro.patterns.paths import Wedge
from repro.samplers.base import SampledGraphMixin, SubgraphCountingSampler
from repro.samplers.heap import IndexedMinHeap
from repro.samplers.ranks import (
    InverseUniformRank,
    RankFunction,
    get_rank_function,
)
from repro.weights.base import WeightContext, WeightFunction
from repro.weights.heuristic import GPSHeuristicWeight, UniformWeight

__all__ = ["WSD"]


class WSD(SampledGraphMixin, SubgraphCountingSampler):
    """The WSD sampler + unbiased estimator (Algorithms 1 and 2).

    Args:
        pattern: the subgraph pattern H ("triangle", "wedge",
            "4-clique", or a :class:`~repro.patterns.base.Pattern`).
        budget: M, the maximum number of sampled edges.
        weight_fn: the weight function W(e, R); WSD-H and WSD-L are this
            sampler with different weight functions.
        rank_fn: the rank family r = f(w); defaults to the paper's
            ``w/u`` inverse-uniform ranks.
        rng: seed or generator driving the rank randomness.
        capture_context: force building (and exposing via
            :attr:`last_context`) the :class:`WeightContext` for every
            insertion even when the weight function does not need it —
            required by RL transition capture and the local-counting
            examples. Default ``None`` builds the context only when
            ``weight_fn.needs_context`` is true.
    """

    def __init__(
        self,
        pattern: str | Pattern,
        budget: int,
        weight_fn: WeightFunction,
        rank_fn: str | RankFunction = "inverse-uniform",
        rng: np.random.Generator | int | None = None,
        capture_context: bool | None = None,
    ) -> None:
        SubgraphCountingSampler.__init__(self, pattern, budget, rng)
        SampledGraphMixin.__init__(self)
        self.weight_fn = weight_fn
        self.rank_fn = get_rank_function(rank_fn)
        self._reservoir = IndexedMinHeap()
        self._edge_weights: dict[Edge, float] = {}
        self._edge_times: dict[Edge, int] = {}
        self._tau_p = 0.0
        self._tau_q = 0.0
        #: P[r(e) > τq] per sampled edge, valid for the current τq
        #: generation; cleared whenever τq changes.
        self._prob_cache: dict[Edge, float] = {}
        self._tau_q_generation = 0
        self._capture_context = (
            weight_fn.needs_context if capture_context is None
            else capture_context
        )
        #: Most recent WeightContext (exposed for RL transition capture).
        #: Only maintained when the context path is active — pass
        #: ``capture_context=True`` to guarantee it; on the light path it
        #: stays ``None``.
        self.last_context: WeightContext | None = None
        #: Weight assigned to the most recent insertion (for diagnostics
        #: and the Figure 2(d)/4(d) weight-vs-count analysis).
        self.last_weight: float | None = None

    # -- thresholds -----------------------------------------------------------

    @property
    def tau_p(self) -> float:
        """The sampling rank threshold τp."""
        return self._tau_p

    @property
    def tau_q(self) -> float:
        """The probability rank threshold τq of Eq. (10)."""
        return self._tau_q

    @property
    def tau_q_generation(self) -> int:
        """Number of τq changes so far (Case 2.1/2.2 transitions).

        The memoized inclusion probabilities are valid within one
        generation and invalidated exactly when this counter bumps.
        """
        return self._tau_q_generation

    def inclusion_probability(self, edge: Edge) -> float:
        """P[e ∈ R(t)] = P[r(e) > τq] for a currently sampled edge."""
        cache = self._prob_cache
        p = cache.get(edge)
        if p is None:
            p = self.rank_fn.inclusion_probability(
                self._edge_weights[edge], self._tau_q
            )
            cache[edge] = p
        return p

    def _set_tau_q(self, value: float) -> None:
        """Update τq, invalidating the probability cache iff it changed."""
        if value != self._tau_q:
            self._tau_q = value
            self._tau_q_generation += 1
            self._prob_cache.clear()

    # -- estimator (Algorithm 2) ----------------------------------------------

    def _instance_value(self, instance: tuple[Edge, ...]) -> float:
        """∏_{e ∈ J\\e_t} 1 / P[r(e) > τq] for one instance."""
        cache = self._prob_cache
        weights = self._edge_weights
        inc_prob = self.rank_fn.inclusion_probability
        tau_q = self._tau_q
        value = 1.0
        for other in instance:
            p = cache.get(other)
            if p is None:
                p = inc_prob(weights[other], tau_q)
                cache[other] = p
            value /= p
        return value

    # -- event handlers ---------------------------------------------------------

    def _process_insertion(self, edge: Edge) -> None:
        u, v = edge
        wf = self.weight_fn
        if self._capture_context or wf.needs_context:
            instances = list(
                self.pattern.instances_completed(self._sampled_graph, u, v)
            )
            for instance in instances:
                value = self._instance_value(instance)
                self._estimate += value
                if self.instance_observers:
                    self._emit_instance(edge, instance, value)
            ctx = WeightContext(
                edge=edge,
                time=self._time,
                instances=instances,
                adjacency=self._sampled_graph,
                edge_times=self._edge_times,
                pattern=self.pattern,
            )
            self.last_context = ctx
            weight = float(wf(ctx))
        else:
            # Light path: stream the instances, never materialise the
            # context — heuristic weights only need cheap summaries.
            num_instances = 0
            observers = self.instance_observers
            for instance in self.pattern.instances_completed(
                self._sampled_graph, u, v
            ):
                num_instances += 1
                value = self._instance_value(instance)
                self._estimate += value
                if observers:
                    self._emit_instance(edge, instance, value)
            weight = float(
                wf.light_weight(num_instances, self._sampled_graph, u, v)
            )
        self.last_weight = weight
        rank = self.rank_fn.rank(weight, self.rng)
        self._insert(edge, weight, rank)

    def _insert(self, edge: Edge, weight: float, rank: float) -> None:
        """Algorithm 1's ``insert`` function (Cases 1 and 2)."""
        if len(self._reservoir) < self.budget:
            # Case 1: non-full reservoir; τp and τq retained.
            if rank > self._tau_p:  # Case 1.1
                self._admit(edge, weight, rank)
            # Case 1.2: discard silently.
            return
        # Case 2: full reservoir; τp <- minimum rank in R.
        min_rank = self._reservoir.min_priority()
        self._tau_p = min_rank
        if rank > min_rank:  # Case 2.1: replace the minimum.
            evicted, _ = self._reservoir.replace_min(edge, rank)
            self._evict(evicted)
            self._admit_replaced(edge, weight)
            self._set_tau_q(self._tau_p)
        elif rank > self._tau_q:  # Case 2.2: near miss raises τq.
            self._set_tau_q(rank)
        # Case 2.3: discard silently.

    def _process_deletion(self, edge: Edge) -> None:
        # Case 3 first: removing e_t from the reservoir does not change
        # any other edge's membership or τq, and it keeps e_t from
        # appearing as an "other" edge during enumeration below.
        if edge in self._reservoir:
            self._reservoir.remove(edge)
            self._evict(edge)
        u, v = edge
        observers = self.instance_observers
        for instance in self.pattern.instances_completed(
            self._sampled_graph, u, v
        ):
            value = self._instance_value(instance)
            self._estimate -= value
            if observers:
                self._emit_instance(edge, instance, -value)

    # -- batched ingestion -------------------------------------------------------

    def process_batch(self, events: Iterable[EdgeEvent]) -> float:
        """Consume a batch of events with amortised per-event overhead.

        Bit-identical to event-at-a-time :meth:`process` under a fixed
        seed: the rank randomness for all insertions is pre-drawn in one
        numpy block (the exact doubles scalar draws would produce) and
        the same floating-point operations run in the same order. The
        hoisted fast loop engages when no context capture is requested,
        the weight function is context-free, no observers are
        registered, and the rank family supports ``rank_from_uniform``;
        otherwise it falls back to the per-event path. If an event
        raises mid-batch, state reflects the events processed so far but
        the pre-drawn randomness of the remaining insertions is already
        consumed.
        """
        if not isinstance(events, (list, tuple)):
            events = list(events)
        wf = self.weight_fn
        fast = (
            not self._capture_context
            and not wf.needs_context
            and not self.instance_observers
        )
        if fast:
            try:
                rfu = self.rank_fn.rank_from_uniform
                rfu(1.0, 0.0)
            except NotImplementedError:
                fast = False
        if not fast:
            process = self.process
            for event in events:
                process(event)
            return self._estimate

        # Estimator dispatch: the triangle and wedge enumerations are
        # inlined below (no generator machinery, no instance tuples);
        # other patterns go through ``instances_completed``. The inlined
        # loops visit the same instances in the same order with the same
        # floating-point operations, so estimates stay bit-identical.
        pattern_type = type(self.pattern)
        mode = (
            1 if pattern_type is Triangle else 2 if pattern_type is Wedge
            else 0
        )
        # Weight / rank dispatch: the stock heuristic weight and the
        # paper's inverse-uniform ranks are inlined the same way (their
        # light_weight / rank_from_uniform are pure arithmetic).
        wmode = 0
        w_slope = w_offset = 0.0
        if type(wf) is GPSHeuristicWeight:
            wmode = 1
            w_slope = wf.slope
            w_offset = wf.offset
        elif type(wf) is UniformWeight:
            wmode = 2
            w_offset = 1.0

        # Pre-draw one uniform per insertion in a single numpy block
        # (the count costs one C-level pass over the ops). For the
        # inverse-uniform family the 1-u mapping to (0, 1] is done
        # vectorised, as are the ranks of zero-instance insertions
        # (whose weight is the constant ``w_offset``) — all the same
        # IEEE operations the scalar path performs, element by element.
        num_insertions = [event.op for event in events].count(INSERT)
        uniforms = (
            self.rng.random(num_insertions) if num_insertions else None
        )
        inline_iu = type(self.rank_fn) is InverseUniformRank
        denominators = base_ranks = None
        ui = 0
        next_uniform = iter(()).__next__
        if uniforms is not None:
            if inline_iu:
                block = 1.0 - uniforms
                denominators = block.tolist()
                if wmode:
                    base_ranks = (w_offset / block).tolist()
            else:
                next_uniform = iter(uniforms.tolist()).__next__

        # Hoisted hot-loop state. Plain floats/ints are tracked locally
        # and written back in ``finally``; containers are aliased.
        instances_completed = self.pattern.instances_completed
        light_weight = wf.light_weight
        inc_prob = self.rank_fn.inclusion_probability
        canonical = canonical_edge
        graph = self._sampled_graph
        adj = graph._adj
        intern = graph._interner.intern
        reservoir = self._reservoir
        res_positions = reservoir._position
        res_priorities = reservoir._priorities
        res_push = reservoir.push
        res_replace_min = reservoir.replace_min
        res_remove = reservoir.remove
        cache = self._prob_cache
        cache_get = cache.get
        weights = self._edge_weights
        edge_times = self._edge_times
        budget = self.budget
        res_size = len(res_positions)
        estimate = self._estimate
        time_now = self._time
        tau_p = self._tau_p
        tau_q = self._tau_q
        generation = self._tau_q_generation
        weight = self.last_weight

        try:
            for event in events:
                time_now += 1
                edge = event.edge
                u, v = edge
                if event.op == INSERT:
                    # -- Algorithm 2: estimate before sampling.
                    num_instances = 0
                    if mode == 1:  # triangle
                        try:
                            nu = adj[u]
                            nv = adj[v]
                        except KeyError:
                            nv = None
                        # isdisjoint() skips the result-set allocation
                        # on the (common) zero-instance events.
                        if nv and not nu.isdisjoint(nv):
                            for w in nu & nv:
                                num_instances += 1
                                # Inline canonicalisation: w is a
                                # neighbour, so w != u and w != v; the
                                # fallback covers unorderable labels.
                                try:
                                    e1 = (u, w) if u < w else (w, u)
                                    e2 = (v, w) if v < w else (w, v)
                                except TypeError:
                                    e1 = canonical(u, w)
                                    e2 = canonical(v, w)
                                if inline_iu:
                                    # min(1, w/τq) computed directly —
                                    # cheaper than the memo dict when τq
                                    # churns, bit-identical either way.
                                    if tau_q > 0.0:
                                        p1 = weights[e1] / tau_q
                                        if p1 > 1.0:
                                            p1 = 1.0
                                        p2 = weights[e2] / tau_q
                                        if p2 > 1.0:
                                            p2 = 1.0
                                        estimate += 1.0 / p1 / p2
                                    else:
                                        estimate += 1.0
                                else:
                                    p1 = cache_get(e1)
                                    if p1 is None:
                                        p1 = inc_prob(weights[e1], tau_q)
                                        cache[e1] = p1
                                    p2 = cache_get(e2)
                                    if p2 is None:
                                        p2 = inc_prob(weights[e2], tau_q)
                                        cache[e2] = p2
                                    estimate += 1.0 / p1 / p2
                    elif mode == 2:  # wedge
                        for centre, tip in ((u, v), (v, u)):
                            nc = adj.get(centre)
                            if nc:
                                for w in nc:
                                    if w != tip:
                                        num_instances += 1
                                        try:
                                            e = (
                                                (centre, w)
                                                if centre < w
                                                else (w, centre)
                                            )
                                        except TypeError:
                                            e = canonical(centre, w)
                                        if inline_iu:
                                            if tau_q > 0.0:
                                                p = weights[e] / tau_q
                                                if p > 1.0:
                                                    p = 1.0
                                                estimate += 1.0 / p
                                            else:
                                                estimate += 1.0
                                        else:
                                            p = cache_get(e)
                                            if p is None:
                                                p = inc_prob(
                                                    weights[e], tau_q
                                                )
                                                cache[e] = p
                                            estimate += 1.0 / p
                    else:
                        for instance in instances_completed(graph, u, v):
                            num_instances += 1
                            value = 1.0
                            for other in instance:
                                p = cache_get(other)
                                if p is None:
                                    p = inc_prob(weights[other], tau_q)
                                    cache[other] = p
                                value /= p
                            estimate += value
                    if inline_iu:
                        if wmode and not num_instances:
                            # Constant-weight insertion: the rank was
                            # already computed in the numpy block.
                            weight = w_offset
                            rank = base_ranks[ui]
                        else:
                            if wmode == 1:
                                weight = w_slope * num_instances + w_offset
                            elif wmode == 2:
                                weight = 1.0
                            else:
                                weight = float(
                                    light_weight(num_instances, graph, u, v)
                                )
                                if weight <= 0.0:
                                    raise ConfigurationError(
                                        "weight must be positive, got "
                                        f"{weight}"
                                    )
                            rank = weight / denominators[ui]
                        ui += 1
                    else:
                        if wmode == 1:
                            weight = w_slope * num_instances + w_offset
                        elif wmode == 2:
                            weight = 1.0
                        else:
                            weight = float(
                                light_weight(num_instances, graph, u, v)
                            )
                        rank = rfu(weight, next_uniform())
                    # -- Algorithm 1: the insert cases.
                    if res_size < budget:
                        if rank > tau_p:  # Case 1.1
                            res_push(edge, rank)
                            res_size += 1
                            weights[edge] = weight
                            edge_times[edge] = time_now
                            s = adj.get(u)
                            if s is None:
                                adj[u] = {v}
                                intern(u)
                            elif v in s:
                                raise EdgeExistsError(
                                    f"edge {edge!r} already present"
                                )
                            else:
                                s.add(v)
                            s = adj.get(v)
                            if s is None:
                                adj[v] = {u}
                                intern(v)
                            else:
                                s.add(u)
                            # Written through eagerly so custom patterns
                            # and weight functions observing the live
                            # graph see a coherent edge count.
                            graph._num_edges += 1
                    else:
                        min_rank = res_priorities[0]
                        tau_p = min_rank
                        if rank > min_rank:  # Case 2.1
                            evicted, _ = res_replace_min(edge, rank)
                            del weights[evicted]
                            del edge_times[evicted]
                            cache.pop(evicted, None)
                            # Inline sampled-graph remove + add (the
                            # canonical-edge dict operations, with the
                            # edge-count delta restored in ``finally``).
                            a, b = evicted
                            s = adj[a]
                            s.remove(b)
                            if not s:
                                del adj[a]
                            s = adj[b]
                            s.remove(a)
                            if not s:
                                del adj[b]
                            weights[edge] = weight
                            edge_times[edge] = time_now
                            s = adj.get(u)
                            if s is None:
                                adj[u] = {v}
                                intern(u)
                            elif v in s:
                                raise EdgeExistsError(
                                    f"edge {edge!r} already present"
                                )
                            else:
                                s.add(v)
                            s = adj.get(v)
                            if s is None:
                                adj[v] = {u}
                                intern(v)
                            else:
                                s.add(u)
                            if tau_p != tau_q:
                                tau_q = tau_p
                                generation += 1
                                cache.clear()
                        elif rank > tau_q:  # Case 2.2
                            tau_q = rank
                            generation += 1
                            cache.clear()
                        # Case 2.3: discard silently.
                else:
                    # -- Case 3 (deletion): reservoir first, then count
                    # the destroyed instances.
                    if edge in res_positions:
                        res_remove(edge)
                        res_size -= 1
                        del weights[edge]
                        del edge_times[edge]
                        cache.pop(edge, None)
                        s = adj[u]
                        s.remove(v)
                        if not s:
                            del adj[u]
                        s = adj[v]
                        s.remove(u)
                        if not s:
                            del adj[v]
                        graph._num_edges -= 1
                    if mode == 1:  # triangle
                        try:
                            nu = adj[u]
                            nv = adj[v]
                        except KeyError:
                            nv = None
                        # isdisjoint() skips the result-set allocation
                        # on the (common) zero-instance events.
                        if nv and not nu.isdisjoint(nv):
                            for w in nu & nv:
                                try:
                                    e1 = (u, w) if u < w else (w, u)
                                    e2 = (v, w) if v < w else (w, v)
                                except TypeError:
                                    e1 = canonical(u, w)
                                    e2 = canonical(v, w)
                                if inline_iu:
                                    if tau_q > 0.0:
                                        p1 = weights[e1] / tau_q
                                        if p1 > 1.0:
                                            p1 = 1.0
                                        p2 = weights[e2] / tau_q
                                        if p2 > 1.0:
                                            p2 = 1.0
                                        estimate -= 1.0 / p1 / p2
                                    else:
                                        estimate -= 1.0
                                else:
                                    p1 = cache_get(e1)
                                    if p1 is None:
                                        p1 = inc_prob(weights[e1], tau_q)
                                        cache[e1] = p1
                                    p2 = cache_get(e2)
                                    if p2 is None:
                                        p2 = inc_prob(weights[e2], tau_q)
                                        cache[e2] = p2
                                    estimate -= 1.0 / p1 / p2
                    elif mode == 2:  # wedge
                        for centre, tip in ((u, v), (v, u)):
                            nc = adj.get(centre)
                            if nc:
                                for w in nc:
                                    if w != tip:
                                        try:
                                            e = (
                                                (centre, w)
                                                if centre < w
                                                else (w, centre)
                                            )
                                        except TypeError:
                                            e = canonical(centre, w)
                                        if inline_iu:
                                            if tau_q > 0.0:
                                                p = weights[e] / tau_q
                                                if p > 1.0:
                                                    p = 1.0
                                                estimate -= 1.0 / p
                                            else:
                                                estimate -= 1.0
                                        else:
                                            p = cache_get(e)
                                            if p is None:
                                                p = inc_prob(
                                                    weights[e], tau_q
                                                )
                                                cache[e] = p
                                            estimate -= 1.0 / p
                    else:
                        for instance in instances_completed(graph, u, v):
                            value = 1.0
                            for other in instance:
                                p = cache_get(other)
                                if p is None:
                                    p = inc_prob(weights[other], tau_q)
                                    cache[other] = p
                                value /= p
                            estimate -= value
        finally:
            self._estimate = estimate
            self._time = time_now
            self._tau_p = tau_p
            self._tau_q = tau_q
            self._tau_q_generation = generation
            self.last_weight = weight
        return estimate

    # -- reservoir bookkeeping ----------------------------------------------------

    def _admit(self, edge: Edge, weight: float, rank: float) -> None:
        self._reservoir.push(edge, rank)
        self._admit_replaced(edge, weight)

    def _admit_replaced(self, edge: Edge, weight: float) -> None:
        """Record sample state for an edge already placed in the heap."""
        self._edge_weights[edge] = weight
        self._edge_times[edge] = self._time
        self._sample_add(edge)

    def _evict(self, edge: Edge) -> None:
        del self._edge_weights[edge]
        del self._edge_times[edge]
        self._prob_cache.pop(edge, None)
        self._sample_remove(edge)

    # -- introspection ------------------------------------------------------------

    @property
    def sample_size(self) -> int:
        return len(self._reservoir)

    def sampled_edges(self) -> Iterator[Edge]:
        return iter(self._reservoir)

    def sampled_weight(self, edge: Edge) -> float:
        """Return the stored weight of a sampled edge."""
        return self._edge_weights[edge]
