"""WSD: weighted sampling with deletions (Section III-C, Algorithms 1 & 2).

WSD is the paper's core contribution: the first fixed-size,
weight-sensitive, one-pass sampling framework for *fully dynamic* graph
streams. It keeps a min-priority reservoir of at most M edges keyed by
random rank r(e) = f(w(e)) and maintains two thresholds:

* ``τp`` — the rank an arriving edge must exceed to be sampled;
* ``τq`` — the rank defining each sampled edge's inclusion probability,
  P[e ∈ R(t)] = P[r(e) > τq] (Lemma 1).

The update rules follow Algorithm 1 case by case:

* Case 1 (insertion, reservoir not full): sample iff r(e) > τp; τp and
  τq are *retained* (crucial — see the Example 1 discussion).
* Case 2 (insertion, reservoir full): τp ← minimum rank in R; if
  r(e) > τp the minimum edge is evicted, e enters, and τq ← τp
  (Case 2.1); else if r(e) > τq then τq ← r(e) (Case 2.2); else discard
  (Case 2.3).
* Case 3 (deletion): remove the edge from the reservoir if present;
  thresholds are untouched.

The estimator (Algorithm 2) updates *before* the reservoir: an
insertion (deletion) adds (subtracts) ∏_{e ∈ J\\e_t} 1 / P[r(e) > τq]
for every instance J completed (destroyed) by e_t together with sampled
edges. Theorem 4 proves unbiasedness for any M ≥ |H|.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graph.edges import Edge
from repro.patterns.base import Pattern
from repro.samplers.base import SampledGraphMixin, SubgraphCountingSampler
from repro.samplers.heap import IndexedMinHeap
from repro.samplers.ranks import RankFunction, get_rank_function
from repro.weights.base import WeightContext, WeightFunction

__all__ = ["WSD"]


class WSD(SampledGraphMixin, SubgraphCountingSampler):
    """The WSD sampler + unbiased estimator (Algorithms 1 and 2).

    Args:
        pattern: the subgraph pattern H ("triangle", "wedge",
            "4-clique", or a :class:`~repro.patterns.base.Pattern`).
        budget: M, the maximum number of sampled edges.
        weight_fn: the weight function W(e, R); WSD-H and WSD-L are this
            sampler with different weight functions.
        rank_fn: the rank family r = f(w); defaults to the paper's
            ``w/u`` inverse-uniform ranks.
        rng: seed or generator driving the rank randomness.
    """

    def __init__(
        self,
        pattern: str | Pattern,
        budget: int,
        weight_fn: WeightFunction,
        rank_fn: str | RankFunction = "inverse-uniform",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        SubgraphCountingSampler.__init__(self, pattern, budget, rng)
        SampledGraphMixin.__init__(self)
        self.weight_fn = weight_fn
        self.rank_fn = get_rank_function(rank_fn)
        self._reservoir = IndexedMinHeap()
        self._edge_weights: dict[Edge, float] = {}
        self._edge_times: dict[Edge, int] = {}
        self._tau_p = 0.0
        self._tau_q = 0.0
        #: Most recent WeightContext (exposed for RL transition capture).
        self.last_context: WeightContext | None = None
        #: Weight assigned to the most recent insertion (for diagnostics
        #: and the Figure 2(d)/4(d) weight-vs-count analysis).
        self.last_weight: float | None = None

    # -- thresholds -----------------------------------------------------------

    @property
    def tau_p(self) -> float:
        """The sampling rank threshold τp."""
        return self._tau_p

    @property
    def tau_q(self) -> float:
        """The probability rank threshold τq of Eq. (10)."""
        return self._tau_q

    def inclusion_probability(self, edge: Edge) -> float:
        """P[e ∈ R(t)] = P[r(e) > τq] for a currently sampled edge."""
        weight = self._edge_weights[edge]
        return self.rank_fn.inclusion_probability(weight, self._tau_q)

    # -- estimator (Algorithm 2) ----------------------------------------------

    def _instance_value(self, instance: tuple[Edge, ...]) -> float:
        """∏_{e ∈ J\\e_t} 1 / P[r(e) > τq] for one instance."""
        value = 1.0
        for other in instance:
            p = self.rank_fn.inclusion_probability(
                self._edge_weights[other], self._tau_q
            )
            value /= p
        return value

    # -- event handlers ---------------------------------------------------------

    def _process_insertion(self, edge: Edge) -> None:
        u, v = edge
        instances = list(
            self.pattern.instances_completed(self._sampled_graph, u, v)
        )
        for instance in instances:
            value = self._instance_value(instance)
            self._estimate += value
            if self.instance_observers:
                self._emit_instance(edge, instance, value)

        ctx = WeightContext(
            edge=edge,
            time=self._time,
            instances=instances,
            adjacency=self._sampled_graph,
            edge_times=self._edge_times,
            pattern=self.pattern,
        )
        self.last_context = ctx
        weight = float(self.weight_fn(ctx))
        self.last_weight = weight
        rank = self.rank_fn.rank(weight, self.rng)
        self._insert(edge, weight, rank)

    def _insert(self, edge: Edge, weight: float, rank: float) -> None:
        """Algorithm 1's ``insert`` function (Cases 1 and 2)."""
        if len(self._reservoir) < self.budget:
            # Case 1: non-full reservoir; τp and τq retained.
            if rank > self._tau_p:  # Case 1.1
                self._admit(edge, weight, rank)
            # Case 1.2: discard silently.
            return
        # Case 2: full reservoir; τp <- minimum rank in R.
        _, min_rank = self._reservoir.peek_min()
        self._tau_p = min_rank
        if rank > self._tau_p:  # Case 2.1: replace the minimum.
            evicted, _ = self._reservoir.pop_min()
            self._evict(evicted)
            self._admit(edge, weight, rank)
            self._tau_q = self._tau_p
        elif rank > self._tau_q:  # Case 2.2: near miss raises τq.
            self._tau_q = rank
        # Case 2.3: discard silently.

    def _process_deletion(self, edge: Edge) -> None:
        # Case 3 first: removing e_t from the reservoir does not change
        # any other edge's membership or τq, and it keeps e_t from
        # appearing as an "other" edge during enumeration below.
        if edge in self._reservoir:
            self._reservoir.remove(edge)
            self._evict(edge)
        u, v = edge
        for instance in self.pattern.instances_completed(
            self._sampled_graph, u, v
        ):
            value = self._instance_value(instance)
            self._estimate -= value
            if self.instance_observers:
                self._emit_instance(edge, instance, -value)

    # -- reservoir bookkeeping ----------------------------------------------------

    def _admit(self, edge: Edge, weight: float, rank: float) -> None:
        self._reservoir.push(edge, rank)
        self._edge_weights[edge] = weight
        self._edge_times[edge] = self._time
        self._sample_add(edge)

    def _evict(self, edge: Edge) -> None:
        del self._edge_weights[edge]
        del self._edge_times[edge]
        self._sample_remove(edge)

    # -- introspection ------------------------------------------------------------

    @property
    def sample_size(self) -> int:
        return len(self._reservoir)

    def sampled_edges(self) -> Iterator[Edge]:
        return iter(self._reservoir)

    def sampled_weight(self, edge: Edge) -> float:
        """Return the stored weight of a sampled edge."""
        return self._edge_weights[edge]
