"""Indexed binary min-heap with O(log n) removal by key.

The weighted reservoirs (GPS / GPS-A / WSD) need a min-priority queue
over sampled edges keyed by rank that also supports *deleting an
arbitrary edge* when a deletion event arrives (WSD Case 3). The standard
library ``heapq`` cannot remove by key without lazy tombstones, which
would violate the fixed-memory constraint, so this is a classic indexed
binary heap: a position map gives O(1) lookup and O(log n)
sift-up/sift-down removal.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

__all__ = ["IndexedMinHeap"]


class IndexedMinHeap:
    """A binary min-heap of ``(priority, key)`` pairs indexed by key.

    Keys must be hashable and unique. Ties in priority are broken
    arbitrarily (heap order only guarantees the minimum).
    """

    def __init__(self) -> None:
        self._keys: list[Hashable] = []
        self._priorities: list[float] = []
        self._position: dict[Hashable, int] = {}

    # -- core helpers -------------------------------------------------------

    def _swap(self, i: int, j: int) -> None:
        self._keys[i], self._keys[j] = self._keys[j], self._keys[i]
        self._priorities[i], self._priorities[j] = (
            self._priorities[j],
            self._priorities[i],
        )
        self._position[self._keys[i]] = i
        self._position[self._keys[j]] = j

    def _sift_up(self, i: int) -> None:
        while i > 0:
            parent = (i - 1) >> 1
            if self._priorities[i] < self._priorities[parent]:
                self._swap(i, parent)
                i = parent
            else:
                break

    def _sift_down(self, i: int) -> None:
        n = len(self._keys)
        while True:
            left = 2 * i + 1
            right = left + 1
            smallest = i
            if left < n and self._priorities[left] < self._priorities[smallest]:
                smallest = left
            if right < n and self._priorities[right] < self._priorities[smallest]:
                smallest = right
            if smallest == i:
                break
            self._swap(i, smallest)
            i = smallest

    # -- public API ---------------------------------------------------------

    def push(self, key: Hashable, priority: float) -> None:
        """Insert ``key`` with ``priority``. Raises if the key exists."""
        if key in self._position:
            raise KeyError(f"key {key!r} already in heap")
        self._keys.append(key)
        self._priorities.append(priority)
        self._position[key] = len(self._keys) - 1
        self._sift_up(len(self._keys) - 1)

    def peek_min(self) -> tuple[Hashable, float]:
        """Return (key, priority) of the minimum without removing it."""
        if not self._keys:
            raise IndexError("peek on empty heap")
        return self._keys[0], self._priorities[0]

    def pop_min(self) -> tuple[Hashable, float]:
        """Remove and return (key, priority) of the minimum."""
        if not self._keys:
            raise IndexError("pop on empty heap")
        result = (self._keys[0], self._priorities[0])
        self._remove_at(0)
        return result

    def remove(self, key: Hashable) -> float:
        """Remove ``key`` and return its priority. Raises KeyError if absent."""
        i = self._position.get(key)
        if i is None:
            raise KeyError(f"key {key!r} not in heap")
        priority = self._priorities[i]
        self._remove_at(i)
        return priority

    def _remove_at(self, i: int) -> None:
        last = len(self._keys) - 1
        key = self._keys[i]
        if i != last:
            self._swap(i, last)
        self._keys.pop()
        self._priorities.pop()
        del self._position[key]
        if i <= last - 1 and self._keys:
            # The moved element may need to go either direction.
            self._sift_down(i)
            self._sift_up(i)

    def priority(self, key: Hashable) -> float:
        """Return the priority of ``key``. Raises KeyError if absent."""
        i = self._position.get(key)
        if i is None:
            raise KeyError(f"key {key!r} not in heap")
        return self._priorities[i]

    def update(self, key: Hashable, priority: float) -> None:
        """Change the priority of an existing key."""
        i = self._position.get(key)
        if i is None:
            raise KeyError(f"key {key!r} not in heap")
        old = self._priorities[i]
        self._priorities[i] = priority
        if priority < old:
            self._sift_up(i)
        else:
            self._sift_down(i)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._position

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[Hashable]:
        """Iterate keys in arbitrary (heap-internal) order."""
        return iter(list(self._keys))

    def items(self) -> Iterator[tuple[Hashable, float]]:
        """Iterate (key, priority) pairs in arbitrary order."""
        return iter(list(zip(self._keys, self._priorities)))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"IndexedMinHeap(size={len(self)})"
