"""Indexed binary min-heap with O(log n) removal by key.

The weighted reservoirs (GPS / GPS-A / WSD) need a min-priority queue
over sampled edges keyed by rank that also supports *deleting an
arbitrary edge* when a deletion event arrives (WSD Case 3). The standard
library ``heapq`` cannot remove by key without lazy tombstones, which
would violate the fixed-memory constraint, so this is a classic indexed
binary heap: a position map gives O(1) lookup and O(log n)
sift-up/sift-down removal.

The sift loops use hole-percolation (shift parents/children into the
hole, write the moved element once at the end) rather than pairwise
swaps — half the list writes and position-map updates per level, which
matters because every full-reservoir replacement (WSD Case 2.1) pays
one sift. :meth:`replace_min` performs that replacement with a single
sift-down instead of a ``pop_min`` + ``push`` pair.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

__all__ = ["IndexedMinHeap"]


class IndexedMinHeap:
    """A binary min-heap of ``(priority, key)`` pairs indexed by key.

    Keys must be hashable and unique. Ties in priority are broken
    arbitrarily (heap order only guarantees the minimum).
    """

    __slots__ = ("_keys", "_priorities", "_position")

    def __init__(self) -> None:
        self._keys: list[Hashable] = []
        self._priorities: list[float] = []
        self._position: dict[Hashable, int] = {}

    # -- core helpers -------------------------------------------------------

    def _sift_up(self, i: int) -> None:
        keys, priorities, position = self._keys, self._priorities, self._position
        key = keys[i]
        priority = priorities[i]
        while i > 0:
            parent = (i - 1) >> 1
            parent_priority = priorities[parent]
            if priority < parent_priority:
                parent_key = keys[parent]
                keys[i] = parent_key
                priorities[i] = parent_priority
                position[parent_key] = i
                i = parent
            else:
                break
        keys[i] = key
        priorities[i] = priority
        position[key] = i

    def _sift_down(self, i: int) -> None:
        keys, priorities, position = self._keys, self._priorities, self._position
        n = len(keys)
        key = keys[i]
        priority = priorities[i]
        while True:
            child = 2 * i + 1
            if child >= n:
                break
            right = child + 1
            if right < n and priorities[right] < priorities[child]:
                child = right
            child_priority = priorities[child]
            if child_priority < priority:
                child_key = keys[child]
                keys[i] = child_key
                priorities[i] = child_priority
                position[child_key] = i
                i = child
            else:
                break
        keys[i] = key
        priorities[i] = priority
        position[key] = i

    # -- public API ---------------------------------------------------------

    def push(self, key: Hashable, priority: float) -> None:
        """Insert ``key`` with ``priority``. Raises if the key exists."""
        if key in self._position:
            raise KeyError(f"key {key!r} already in heap")
        self._keys.append(key)
        self._priorities.append(priority)
        self._position[key] = len(self._keys) - 1
        self._sift_up(len(self._keys) - 1)

    def peek_min(self) -> tuple[Hashable, float]:
        """Return (key, priority) of the minimum without removing it."""
        if not self._keys:
            raise IndexError("peek on empty heap")
        return self._keys[0], self._priorities[0]

    def min_priority(self) -> float:
        """Return the minimum priority without removing it."""
        if not self._priorities:
            raise IndexError("peek on empty heap")
        return self._priorities[0]

    def pop_min(self) -> tuple[Hashable, float]:
        """Remove and return (key, priority) of the minimum."""
        if not self._keys:
            raise IndexError("pop on empty heap")
        result = (self._keys[0], self._priorities[0])
        self._remove_at(0)
        return result

    def replace_min(self, key: Hashable, priority: float) -> tuple[Hashable, float]:
        """Replace the minimum element with ``key`` in one sift.

        Returns the evicted ``(key, priority)``. Equivalent to
        ``pop_min()`` followed by ``push(key, priority)`` but does a
        single sift-down — the fast path for reservoir replacement.
        """
        if not self._keys:
            raise IndexError("replace_min on empty heap")
        if key in self._position:
            raise KeyError(f"key {key!r} already in heap")
        old = (self._keys[0], self._priorities[0])
        del self._position[old[0]]
        self._keys[0] = key
        self._priorities[0] = priority
        self._position[key] = 0
        self._sift_down(0)
        return old

    def remove(self, key: Hashable) -> float:
        """Remove ``key`` and return its priority. Raises KeyError if absent."""
        i = self._position.get(key)
        if i is None:
            raise KeyError(f"key {key!r} not in heap")
        priority = self._priorities[i]
        self._remove_at(i)
        return priority

    def _remove_at(self, i: int) -> None:
        last = len(self._keys) - 1
        key = self._keys[i]
        del self._position[key]
        if i == last:
            self._keys.pop()
            self._priorities.pop()
            return
        moved_key = self._keys.pop()
        moved_priority = self._priorities.pop()
        self._keys[i] = moved_key
        self._priorities[i] = moved_priority
        self._position[moved_key] = i
        # The moved element may need to go either direction.
        self._sift_down(i)
        self._sift_up(self._position[moved_key])

    def priority(self, key: Hashable) -> float:
        """Return the priority of ``key``. Raises KeyError if absent."""
        i = self._position.get(key)
        if i is None:
            raise KeyError(f"key {key!r} not in heap")
        return self._priorities[i]

    def update(self, key: Hashable, priority: float) -> None:
        """Change the priority of an existing key."""
        i = self._position.get(key)
        if i is None:
            raise KeyError(f"key {key!r} not in heap")
        old = self._priorities[i]
        self._priorities[i] = priority
        if priority < old:
            self._sift_up(i)
        else:
            self._sift_down(i)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._position

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[Hashable]:
        """Iterate keys in arbitrary (heap-internal) order."""
        return iter(list(self._keys))

    def items(self) -> Iterator[tuple[Hashable, float]]:
        """Iterate (key, priority) pairs in arbitrary order."""
        return iter(list(zip(self._keys, self._priorities)))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"IndexedMinHeap(size={len(self)})"
