"""Indexed binary min-heap with O(log n) removal by key.

The weighted reservoirs (GPS / GPS-A / WSD) need a min-priority queue
over sampled edges keyed by rank that also supports *deleting an
arbitrary edge* when a deletion event arrives (WSD Case 3). The standard
library ``heapq`` cannot remove by key without lazy tombstones, which
would violate the fixed-memory constraint, so this is a classic indexed
binary heap: a position map gives O(1) lookup and O(log n)
sift-up/sift-down removal.

Storage is a single list of ``(priority, key)`` pairs rather than two
parallel ``_keys`` / ``_priorities`` lists: every sift level moves one
tuple reference instead of two list entries, halving the list writes
per level on :meth:`replace_min` — the operation every full-reservoir
replacement (WSD Case 2.1) pays. (Measured on CPython 3.11 the halved
writes are offset by the tuple-element reads, landing within a few
percent of the parallel-list layout — see the ROADMAP perf notes; the
pair layout is kept for its simpler invariants and single-allocation
entries.) The sift loops use hole-percolation (shift parents/children
into the hole, write the moved element once at the end) rather than
pairwise swaps. Comparisons are always on the priority alone (never
tuple-vs-tuple, which would fall back to comparing keys on priority
ties and could raise ``TypeError`` for mixed key types).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

__all__ = ["IndexedMinHeap"]


class IndexedMinHeap:
    """A binary min-heap of ``(priority, key)`` pairs indexed by key.

    Keys must be hashable and unique. Ties in priority are broken
    arbitrarily (heap order only guarantees the minimum).
    """

    __slots__ = ("_heap", "_position")

    def __init__(self) -> None:
        #: The heap array: ``(priority, key)`` pairs in heap order.
        self._heap: list[tuple[float, Hashable]] = []
        self._position: dict[Hashable, int] = {}

    # -- core helpers -------------------------------------------------------

    def _sift_up(self, i: int) -> None:
        heap, position = self._heap, self._position
        entry = heap[i]
        priority = entry[0]
        while i > 0:
            parent = (i - 1) >> 1
            parent_entry = heap[parent]
            if priority < parent_entry[0]:
                heap[i] = parent_entry
                position[parent_entry[1]] = i
                i = parent
            else:
                break
        heap[i] = entry
        position[entry[1]] = i

    def _sift_down(self, i: int) -> None:
        heap, position = self._heap, self._position
        n = len(heap)
        entry = heap[i]
        priority = entry[0]
        while True:
            child = 2 * i + 1
            if child >= n:
                break
            # Fetch each candidate entry once; compare on the priority
            # slot only (never whole tuples — a priority tie must not
            # fall back to comparing keys).
            child_entry = heap[child]
            child_priority = child_entry[0]
            right = child + 1
            if right < n:
                right_entry = heap[right]
                right_priority = right_entry[0]
                if right_priority < child_priority:
                    child = right
                    child_entry = right_entry
                    child_priority = right_priority
            if child_priority < priority:
                heap[i] = child_entry
                position[child_entry[1]] = i
                i = child
            else:
                break
        heap[i] = entry
        position[entry[1]] = i

    # -- public API ---------------------------------------------------------

    def push(self, key: Hashable, priority: float) -> None:
        """Insert ``key`` with ``priority``. Raises if the key exists."""
        if key in self._position:
            raise KeyError(f"key {key!r} already in heap")
        self._heap.append((priority, key))
        self._position[key] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def peek_min(self) -> tuple[Hashable, float]:
        """Return (key, priority) of the minimum without removing it."""
        if not self._heap:
            raise IndexError("peek on empty heap")
        priority, key = self._heap[0]
        return key, priority

    def min_priority(self) -> float:
        """Return the minimum priority without removing it."""
        if not self._heap:
            raise IndexError("peek on empty heap")
        return self._heap[0][0]

    def pop_min(self) -> tuple[Hashable, float]:
        """Remove and return (key, priority) of the minimum."""
        if not self._heap:
            raise IndexError("pop on empty heap")
        priority, key = self._heap[0]
        self._remove_at(0)
        return key, priority

    def replace_min(self, key: Hashable, priority: float) -> tuple[Hashable, float]:
        """Replace the minimum element with ``key`` in one sift.

        Returns the evicted ``(key, priority)``. Equivalent to
        ``pop_min()`` followed by ``push(key, priority)`` but does a
        single sift-down — the fast path for reservoir replacement.
        """
        if not self._heap:
            raise IndexError("replace_min on empty heap")
        if key in self._position:
            raise KeyError(f"key {key!r} already in heap")
        old_priority, old_key = self._heap[0]
        del self._position[old_key]
        self._heap[0] = (priority, key)
        self._position[key] = 0
        self._sift_down(0)
        return old_key, old_priority

    def remove(self, key: Hashable) -> float:
        """Remove ``key`` and return its priority. Raises KeyError if absent."""
        i = self._position.get(key)
        if i is None:
            raise KeyError(f"key {key!r} not in heap")
        priority = self._heap[i][0]
        self._remove_at(i)
        return priority

    def _remove_at(self, i: int) -> None:
        heap = self._heap
        last = len(heap) - 1
        del self._position[heap[i][1]]
        if i == last:
            heap.pop()
            return
        moved = heap.pop()
        heap[i] = moved
        self._position[moved[1]] = i
        # The moved element may need to go either direction.
        self._sift_down(i)
        self._sift_up(self._position[moved[1]])

    def priority(self, key: Hashable) -> float:
        """Return the priority of ``key``. Raises KeyError if absent."""
        i = self._position.get(key)
        if i is None:
            raise KeyError(f"key {key!r} not in heap")
        return self._heap[i][0]

    def update(self, key: Hashable, priority: float) -> None:
        """Change the priority of an existing key."""
        i = self._position.get(key)
        if i is None:
            raise KeyError(f"key {key!r} not in heap")
        old = self._heap[i][0]
        self._heap[i] = (priority, key)
        if priority < old:
            self._sift_up(i)
        else:
            self._sift_down(i)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._position

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[Hashable]:
        """Iterate keys in arbitrary (heap-internal) order."""
        return iter([key for _, key in self._heap])

    def items(self) -> Iterator[tuple[Hashable, float]]:
        """Iterate (key, priority) pairs in arbitrary order."""
        return iter([(key, priority) for priority, key in self._heap])

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"IndexedMinHeap(size={len(self)})"
