"""Composable sampler kernel: the shared plumbing behind every sampler.

Every algorithm in this library is one of two sampling designs plus an
estimator rule:

* **Rank-threshold reservoirs** (WSD, GPS, GPS-A): a min-priority heap
  over random ranks r(e) = f(w(e)), an estimator threshold (τq for WSD,
  r_{M+1} for GPS/GPS-A), Horvitz-Thompson instance values
  ∏ 1 / P[r(e) > threshold], and a weight function deciding each edge's
  rank distribution. :class:`ThresholdSamplerKernel` owns all of that —
  the weight computation (context-heavy and context-free paths), the
  memoized inclusion probabilities keyed on a threshold generation
  counter, the reservoir bookkeeping, and the batched ingestion fast
  loop — while subclasses contribute only their *reservoir policy*: what
  happens when an edge's rank competes for a slot, and what a deletion
  event does.

* **Uniform reservoirs** (ThinkD, Triest, WRS): a random-pairing sample
  (or a waiting room composed with one) with closed-form joint inclusion
  probabilities. :class:`PairingSamplerKernel` owns the shared reservoir
  state and introspection; the estimator rules differ enough per
  algorithm (HT-before-sampling, τ-counter, waiting-room mixing) that
  each subclass keeps its own update but inherits the kernel's batched
  driver.

The batched ingestion path (:meth:`ThresholdSamplerKernel.process_batch`)
generalises the PR-1 WSD fast loop to every threshold sampler: rank
randomness for a whole batch is pre-drawn in one numpy block
(``rng.random(n)`` yields the exact doubles of n scalar draws), the
triangle/wedge estimators are inlined, and the reservoir policy is
dispatched on a hoisted integer — so estimates stay bit-identical to
event-at-a-time :meth:`process` under a fixed seed, for all policies.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError, EdgeExistsError, SamplerError
from repro.graph.edges import Edge, canonical_edge
from repro.graph.stream import INSERT, EdgeEvent, EventBlock
from repro.patterns.base import Pattern
from repro.patterns.cliques import FourClique, KClique, Triangle
from repro.patterns.paths import Wedge, WedgeDeltaTracker
from repro.patterns.temporal import ArrivalTimeTracker
from repro.samplers.base import SampledGraphMixin, SubgraphCountingSampler
from repro.samplers.heap import IndexedMinHeap
from repro.samplers.random_pairing import RandomPairingReservoir
from repro.samplers.ranks import (
    InverseUniformRank,
    RankFunction,
    get_rank_function,
)
from repro.weights.base import WeightContext, WeightFunction
from repro.weights.heuristic import GPSHeuristicWeight, UniformWeight

__all__ = [
    "ThresholdSamplerKernel",
    "PairingSamplerKernel",
    "KERNEL_WSD",
    "KERNEL_GPS",
    "KERNEL_GPSA",
    "set_wedge_vectorization",
    "set_arena_acceleration",
    "set_arena_cutoff",
    "batch_columns",
]

#: Reservoir-policy dispatch codes for the batched fast loop. Subclasses
#: of :class:`ThresholdSamplerKernel` set ``_policy`` to one of these.
KERNEL_WSD = 1
KERNEL_GPS = 2
KERNEL_GPSA = 3

#: Whether new wedge samplers get the O(1) aggregated wedge-delta
#: estimator (see :class:`~repro.patterns.paths.WedgeDeltaTracker`).
#: Module-level so the A/B benchmark harness can run the scalar
#: per-neighbour path against the vectorised one in a single process.
_WEDGE_VECTORIZATION = True


def set_wedge_vectorization(enabled: bool) -> bool:
    """Toggle the aggregated wedge-delta fast path; return the old value.

    Read at *sampler construction* time: samplers built while disabled
    keep the scalar per-neighbour estimator for their whole lifetime
    (the two paths group float terms differently, so mixing them inside
    one sampler would break per-event/batched bit-identity).
    """
    global _WEDGE_VECTORIZATION
    previous = _WEDGE_VECTORIZATION
    _WEDGE_VECTORIZATION = bool(enabled)
    return previous


#: Whether new clique samplers mirror their sampled graph into an
#: :class:`~repro.graph.arena.AdjacencyArena` (sorted neighbour slabs +
#: payload lanes for the vectorised triangle delta). Module-level for
#: the same reason as the wedge switch: the A/B benchmark harness runs
#: the scalar set-intersection path against the arena path in one
#: process.
_ARENA_ACCELERATION = True

#: Degree at which a vertex earns an arena slab; ``None`` uses
#: :data:`repro.graph.adjacency.DEFAULT_SLAB_CUTOFF`. Tests lower it to
#: exercise the vectorised paths on small graphs.
_ARENA_CUTOFF: int | None = None


def set_arena_acceleration(enabled: bool) -> bool:
    """Toggle the sampled-graph arena fast paths; return the old value.

    Read at *sampler construction* time, like
    :func:`set_wedge_vectorization`: samplers built while disabled keep
    the scalar set-intersection estimators for their whole lifetime
    (the arena path regroups the per-instance float sums, so mixing the
    two inside one sampler would break per-event/batched bit-identity).
    """
    global _ARENA_ACCELERATION
    previous = _ARENA_ACCELERATION
    _ARENA_ACCELERATION = bool(enabled)
    return previous


def set_arena_cutoff(cutoff: int | None) -> int | None:
    """Set the slab-earning degree for new samplers; return the old value.

    ``None`` restores the library default. Construction-time, and part
    of a sampler's trajectory contract: two runs (or a checkpointed
    continuation — the v3 format records it) must use the same cutoff
    for their adaptive query routing, and therefore their float
    accumulation order, to agree.
    """
    global _ARENA_CUTOFF
    previous = _ARENA_CUTOFF
    _ARENA_CUTOFF = cutoff if cutoff is None else int(cutoff)
    return previous


def _arena_triangle_delta(wa, wb, threshold: float) -> float:
    """Triangle estimator delta over gathered weight lanes.

    The vectorised form of the scalar loop's
    ``estimate += 1 / min(1, w1/θ) / min(1, w2/θ)`` accumulation:
    element order is ascending dense id and the reduction is numpy's
    pairwise sum, so the value can differ from the scalar path in the
    last float bits (same contribution multiset, different grouping) —
    which is why arena routing is fixed at construction time and both
    the per-event and the batched path call *this* function.
    """
    if threshold > 0.0:
        p = np.minimum(wa / threshold, 1.0)
        p *= np.minimum(wb / threshold, 1.0)
        np.divide(1.0, p, out=p)
        return float(p.sum())
    return float(len(wa))


def batch_columns(events) -> tuple[list, list, list]:
    """Normalise a batch to ``(is_insert, u, v)`` parallel lists.

    :class:`EventBlock` inputs convert with one C-level pass per
    column; :class:`EdgeEvent` sequences are unpacked once up front so
    the mega-loops iterate plain scalars either way.
    """
    if isinstance(events, EventBlock):
        return events.columns()
    ops: list[bool] = []
    us: list = []
    vs: list = []
    op_insert = INSERT
    for event in events:
        ops.append(event.op == op_insert)
        u, v = event.edge
        us.append(u)
        vs.append(v)
    return ops, us, vs


class ThresholdSamplerKernel(SampledGraphMixin, SubgraphCountingSampler):
    """Shared kernel of the rank-threshold samplers (WSD, GPS, GPS-A).

    Owns the reservoir heap, per-edge weight/arrival-time state, the
    estimator threshold with its generation-counted probability memo,
    the weight-function dispatch (context-heavy vs light paths), and the
    batched ingestion loop. Subclasses define:

    * ``_policy`` — the batched-loop dispatch code (``KERNEL_WSD`` /
      ``KERNEL_GPS`` / ``KERNEL_GPSA``);
    * ``_memoize_light`` — whether the per-event light paths use the
      probability memo (WSD's τq is stable between Case 2 transitions,
      so memoization pays; GPS's r_{M+1} grows on almost every
      full-reservoir event, so entries rarely survive — values are
      identical either way);
    * :meth:`_insert` — the reservoir policy for an arriving edge whose
      weight and rank are already computed;
    * :meth:`_process_deletion` — the deletion rule.

    Args:
        pattern: the subgraph pattern H ("triangle", "wedge",
            "4-clique", or a :class:`~repro.patterns.base.Pattern`).
        budget: M, the maximum number of reservoir slots.
        weight_fn: the weight function W(e, R).
        rank_fn: the rank family r = f(w); defaults to the paper's
            ``w/u`` inverse-uniform ranks.
        rng: seed or generator driving the rank randomness.
        capture_context: force building (and exposing via
            :attr:`last_context`) the :class:`WeightContext` for every
            insertion even when the weight function does not need it —
            required by RL transition capture and the local-counting
            examples. Default ``None`` builds the context only when
            ``weight_fn.needs_context`` is true.
    """

    #: Batched-loop reservoir-policy dispatch; subclasses must override.
    _policy = 0
    #: Whether the per-event light paths use the probability memo.
    _memoize_light = True

    def __init__(
        self,
        pattern: str | Pattern,
        budget: int,
        weight_fn: WeightFunction,
        rank_fn: str | RankFunction = "inverse-uniform",
        rng: np.random.Generator | int | None = None,
        capture_context: bool | None = None,
    ) -> None:
        SubgraphCountingSampler.__init__(self, pattern, budget, rng)
        SampledGraphMixin.__init__(self)
        self.weight_fn = weight_fn
        # One-time pattern announcement: weight functions validate
        # pattern-dependent invariants here (e.g. the learned policy's
        # state dimension against |H|+3) instead of per event.
        weight_fn.bind_pattern(self.pattern)
        self.rank_fn = get_rank_function(rank_fn)
        #: Block-serving learned weight (WSD-L fast path), or ``None``.
        #: When set, insertions bypass both the WeightContext and the
        #: light_weight paths: the kernels assemble the raw state
        #: features (instance count, degrees, per-position temporal
        #: aggregates) inline from summaries the estimator walk already
        #: produces and call ``state_weight`` per event.
        self._learned = (
            weight_fn if getattr(weight_fn, "block_serving", False)
            else None
        )
        self._reservoir = IndexedMinHeap()
        self._edge_weights: dict[Edge, float] = {}
        self._edge_times: dict[Edge, int] = {}
        #: The estimator threshold: τq for WSD, r_{M+1} for GPS/GPS-A.
        self._threshold = 0.0
        #: P[r(e) > threshold] per sampled edge, valid for the current
        #: threshold generation; cleared whenever the threshold changes.
        self._prob_cache: dict[Edge, float] = {}
        self._threshold_generation = 0
        self._capture_context = (
            weight_fn.needs_context if capture_context is None
            else capture_context
        )
        #: O(1) wedge-delta aggregates (per-vertex heavy counts + light
        #: inverse-weight sums); only built when the pattern is the
        #: wedge and the rank family is the paper's inverse-uniform one
        #: (whose inclusion probability the aggregation is derived for).
        self._wedge_tracker = (
            WedgeDeltaTracker()
            if (
                _WEDGE_VECTORIZATION
                and type(self.pattern) is Wedge
                and type(self.rank_fn) is InverseUniformRank
            )
            else None
        )
        #: Arena mirror of the sampled graph for the clique patterns:
        #: the weight lane feeds the vectorised triangle delta (only
        #: derived for the paper's inverse-uniform ranks, whose
        #: inclusion probability is min(1, w/θ)), and the sorted slabs
        #: accelerate the 4-/k-clique common-neighbour intersections
        #: for any rank family.
        self._tri_arena = (
            _ARENA_ACCELERATION
            and type(self.pattern) is Triangle
            and type(self.rank_fn) is InverseUniformRank
        )
        if self._tri_arena or (
            _ARENA_ACCELERATION
            and isinstance(self.pattern, (FourClique, KClique))
        ):
            # WSD-L's triangle state features need each common
            # neighbour's two edge *times* next to its two edge
            # weights, so learned triangle samplers activate the
            # arena's second payload lane (filled from the same
            # per-edge state at slab build, carried inline on insert).
            self._sampled_graph.enable_arena(
                self._arena_payload,
                cutoff=_ARENA_CUTOFF,
                payload2_fn=(
                    self._arena_time
                    if (self._tri_arena and self._learned is not None)
                    else None
                ),
            )
        #: Per-vertex arrival-time aggregates (sum + max over incident
        #: sampled edges) for the wedge learned path: the wedge's
        #: per-position temporal features reduce to per-vertex
        #: aggregates (the instance set of an arriving edge is exactly
        #: the incident sampled edges of its endpoints), so the state
        #: vector costs O(1) per event instead of a neighbour walk.
        #: Maintained at the same sampled-graph choke points as the
        #: wedge-delta tracker.
        self._att = (
            ArrivalTimeTracker()
            if (
                self._learned is not None
                and self._wedge_tracker is not None
            )
            else None
        )
        #: Most recent WeightContext (exposed for RL transition capture).
        #: Only maintained when the context path is active — pass
        #: ``capture_context=True`` to guarantee it; on the light path it
        #: stays ``None``.
        self.last_context: WeightContext | None = None
        #: Weight assigned to the most recent insertion (for diagnostics
        #: and the Figure 2(d)/4(d) weight-vs-count analysis).
        self.last_weight: float | None = None

    # -- threshold bookkeeping ------------------------------------------------

    @property
    def threshold(self) -> float:
        """The current estimator threshold (τq / r_{M+1})."""
        return self._threshold

    @property
    def threshold_generation(self) -> int:
        """Number of estimator-threshold changes so far.

        The memoized inclusion probabilities are valid within one
        generation and invalidated exactly when this counter bumps.
        """
        return self._threshold_generation

    def _set_threshold(self, value: float) -> None:
        """Set the threshold, invalidating the memo iff it changed."""
        if value != self._threshold:
            self._threshold = value
            self._threshold_generation += 1
            self._prob_cache.clear()
            if self._wedge_tracker is not None:
                self._wedge_tracker.set_threshold(value)

    def _raise_threshold(self, rank: float) -> None:
        """threshold ← max(threshold, rank), invalidating the memo."""
        if rank > self._threshold:
            self._threshold = rank
            self._threshold_generation += 1
            self._prob_cache.clear()
            if self._wedge_tracker is not None:
                self._wedge_tracker.raise_threshold(rank)

    def inclusion_probability(self, edge: Edge) -> float:
        """P[e ∈ R(t)] = P[r(e) > threshold] for a sampled edge."""
        cache = self._prob_cache
        p = cache.get(edge)
        if p is None:
            p = self.rank_fn.inclusion_probability(
                self._edge_weights[edge], self._threshold
            )
            cache[edge] = p
        return p

    # -- estimator (Algorithm 2 / Theorems 1 & 2) ------------------------------

    def _instance_value(self, instance: tuple[Edge, ...]) -> float:
        """∏_{e ∈ J\\e_t} 1 / P[r(e) > threshold] for one instance."""
        cache = self._prob_cache
        weights = self._edge_weights
        inc_prob = self.rank_fn.inclusion_probability
        threshold = self._threshold
        value = 1.0
        for other in instance:
            p = cache.get(other)
            if p is None:
                p = inc_prob(weights[other], threshold)
                cache[other] = p
            value /= p
        return value

    # -- event handlers ---------------------------------------------------------

    def _process_insertion(self, edge: Edge) -> None:
        u, v = edge
        wf = self.weight_fn
        if self._capture_context or wf.needs_context or (
            self._learned is not None and self.instance_observers
        ):
            edge_times = self._edge_times
            instances = list(
                self.pattern.instances_completed(self._sampled_graph, u, v)
            )
            # Context-needing weight functions walk the instances again
            # for the temporal features; collect each instance's sorted
            # arrival times during the estimator pass so the state
            # builder consumes them instead of re-enumerating.
            inst_times = [] if wf.needs_context else None
            for instance in instances:
                value = self._instance_value(instance)
                self._estimate += value
                if inst_times is not None:
                    inst_times.append(
                        sorted(edge_times[other] for other in instance)
                    )
                if self.instance_observers:
                    self._emit_instance(edge, instance, value)
            ctx = WeightContext(
                edge=edge,
                time=self._time,
                instances=instances,
                adjacency=self._sampled_graph,
                edge_times=edge_times,
                pattern=self.pattern,
                instance_times=inst_times,
            )
            self.last_context = ctx
            weight = float(wf(ctx))
        elif self._learned is not None:
            # WSD-L block path, one event: the estimator pass below
            # produces the state features as a side effect — instance
            # count, sampled degrees, and the per-position temporal
            # aggregates of Eq. (20)-(21) — and the frozen policy maps
            # them to the weight via ``state_weight``. Branch structure,
            # float operations, and adaptive routing are mirrored
            # exactly by the batched mega-loop's learned section, which
            # is what keeps per-event and batched runs bit-identical.
            lw = self._learned
            graph = self._sampled_graph
            adj = graph._adj
            time_now = self._time
            threshold = self._threshold
            use_avg = lw.temporal_aggregation == "avg"
            nu = adj.get(u)
            deg_u = len(nu) if nu else 0
            nv = adj.get(v)
            deg_v = len(nv) if nv else 0
            if self._wedge_tracker is not None:
                # O(1): instance set == incident sampled edges of both
                # endpoints (the arriving edge is never sampled yet),
                # so the wedge's temporal features are per-vertex
                # aggregates from the arrival-time tracker.
                num_instances = deg_u + deg_v
                self._estimate += self._wedge_tracker.delta(u, v)
                if not num_instances:
                    positions = None
                elif use_avg:
                    positions = (
                        float(self._att.sum_pair(u, v)) / num_instances,
                        float(time_now),
                    )
                else:
                    positions = (
                        float(self._att.max_pair(u, v)),
                        float(time_now),
                    )
            elif type(self.pattern) is Triangle:
                estimate = self._estimate
                pair = (
                    graph.common_payloads2(u, v) if self._tri_arena
                    else None
                )
                if pair is not None:
                    wa, wb, ta, tb = pair
                    num_instances = len(wa)
                    if num_instances:
                        estimate += _arena_triangle_delta(
                            wa, wb, threshold
                        )
                        mins = np.minimum(ta, tb)
                        maxs = np.maximum(ta, tb)
                        if use_avg:
                            positions = (
                                float(mins.sum()) / num_instances,
                                float(maxs.sum()) / num_instances,
                                float(time_now),
                            )
                        else:
                            positions = (
                                float(mins.max()),
                                float(maxs.max()),
                                float(time_now),
                            )
                    else:
                        positions = None
                else:
                    num_instances = 0
                    a1 = a2 = 0  # per-position int sums or maxes
                    if nu and nv and not nu.isdisjoint(nv):
                        inline_iu = (
                            type(self.rank_fn) is InverseUniformRank
                        )
                        inc_prob = self.rank_fn.inclusion_probability
                        cache = self._prob_cache
                        cache_get = cache.get
                        weights = self._edge_weights
                        edge_times = self._edge_times
                        for w in nu & nv:
                            num_instances += 1
                            try:
                                e1 = (u, w) if u < w else (w, u)
                                e2 = (v, w) if v < w else (w, v)
                            except TypeError:
                                e1 = canonical_edge(u, w)
                                e2 = canonical_edge(v, w)
                            t1 = edge_times[e1]
                            t2 = edge_times[e2]
                            if t1 > t2:
                                t1, t2 = t2, t1
                            if use_avg:
                                a1 += t1
                                a2 += t2
                            else:
                                if t1 > a1:
                                    a1 = t1
                                if t2 > a2:
                                    a2 = t2
                            if inline_iu:
                                if threshold > 0.0:
                                    p1 = weights[e1] / threshold
                                    if p1 > 1.0:
                                        p1 = 1.0
                                    p2 = weights[e2] / threshold
                                    if p2 > 1.0:
                                        p2 = 1.0
                                    estimate += 1.0 / p1 / p2
                                else:
                                    estimate += 1.0
                            else:
                                p1 = cache_get(e1)
                                if p1 is None:
                                    p1 = inc_prob(weights[e1], threshold)
                                    cache[e1] = p1
                                p2 = cache_get(e2)
                                if p2 is None:
                                    p2 = inc_prob(weights[e2], threshold)
                                    cache[e2] = p2
                                estimate += 1.0 / p1 / p2
                    if not num_instances:
                        positions = None
                    elif use_avg:
                        positions = (
                            float(a1) / num_instances,
                            float(a2) / num_instances,
                            float(time_now),
                        )
                    else:
                        positions = (
                            float(a1), float(a2), float(time_now)
                        )
                self._estimate = estimate
            else:
                # Generic pattern: one fused pass collects the
                # estimator values and the per-position time
                # aggregates (all integers, so any accumulation
                # grouping reproduces the reference matrix exactly).
                estimate = self._estimate
                num_instances = 0
                acc = [0] * (self.pattern.num_edges - 1)
                inc_prob = self.rank_fn.inclusion_probability
                cache = self._prob_cache
                cache_get = cache.get
                weights = self._edge_weights
                edge_times = self._edge_times
                for instance in self.pattern.instances_completed(
                    graph, u, v
                ):
                    num_instances += 1
                    value = 1.0
                    times = []
                    for other in instance:
                        p = cache_get(other)
                        if p is None:
                            p = inc_prob(weights[other], threshold)
                            cache[other] = p
                        value /= p
                        times.append(edge_times[other])
                    estimate += value
                    times.sort()
                    if use_avg:
                        for j, tv in enumerate(times):
                            acc[j] += tv
                    else:
                        for j, tv in enumerate(times):
                            if tv > acc[j]:
                                acc[j] = tv
                self._estimate = estimate
                if not num_instances:
                    positions = None
                elif use_avg:
                    positions = [
                        float(a) / num_instances for a in acc
                    ]
                    positions.append(float(time_now))
                else:
                    positions = [float(a) for a in acc]
                    positions.append(float(time_now))
            weight = lw.state_weight(
                num_instances, deg_u, deg_v, time_now, positions
            )
        elif (
            self._wedge_tracker is not None and not self.instance_observers
        ):
            # Vectorised wedge path: the per-vertex aggregates replace
            # the per-neighbour loop, and the instance count is just the
            # degree sum (the arriving edge is never in the sampled
            # graph, so no tip exclusion is needed).
            adj = self._sampled_graph._adj
            nc = adj.get(u)
            num_instances = len(nc) if nc else 0
            nc = adj.get(v)
            if nc:
                num_instances += len(nc)
            self._estimate += self._wedge_tracker.delta(u, v)
            weight = float(
                wf.light_weight(num_instances, self._sampled_graph, u, v)
            )
        elif (
            self._tri_arena
            and not self.instance_observers
            and (pair := self._sampled_graph.common_payloads(u, v))
            is not None
        ):
            # Vectorised triangle path: both endpoints hold arena
            # slabs, so the common-neighbour weights arrive as two
            # gathered lanes and the delta is one array expression
            # (same routing rule and same float grouping as the
            # batched loop — both call _arena_triangle_delta).
            wa, wb = pair
            num_instances = len(wa)
            if num_instances:
                self._estimate += _arena_triangle_delta(
                    wa, wb, self._threshold
                )
            weight = float(
                wf.light_weight(num_instances, self._sampled_graph, u, v)
            )
        else:
            # Light path: stream the instances, never materialise the
            # context — heuristic weights only need cheap summaries.
            num_instances = 0
            observers = self.instance_observers
            inc_prob = self.rank_fn.inclusion_probability
            weights = self._edge_weights
            threshold = self._threshold
            estimate = self._estimate
            if self._memoize_light:
                cache = self._prob_cache
                cache_get = cache.get
                for instance in self.pattern.instances_completed(
                    self._sampled_graph, u, v
                ):
                    num_instances += 1
                    value = 1.0
                    for other in instance:
                        p = cache_get(other)
                        if p is None:
                            p = inc_prob(weights[other], threshold)
                            cache[other] = p
                        value /= p
                    estimate += value
                    if observers:
                        self._estimate = estimate
                        self._emit_instance(edge, instance, value)
            else:
                for instance in self.pattern.instances_completed(
                    self._sampled_graph, u, v
                ):
                    num_instances += 1
                    value = 1.0
                    for other in instance:
                        value /= inc_prob(weights[other], threshold)
                    estimate += value
                    if observers:
                        self._estimate = estimate
                        self._emit_instance(edge, instance, value)
            self._estimate = estimate
            weight = float(
                wf.light_weight(num_instances, self._sampled_graph, u, v)
            )
        self.last_weight = weight
        rank = self.rank_fn.rank(weight, self.rng)
        self._insert(edge, weight, rank)

    def _insert(self, edge: Edge, weight: float, rank: float) -> None:
        """Reservoir policy: place (or reject) an edge with known rank."""
        raise NotImplementedError

    def _subtract_destroyed(self, edge: Edge) -> None:
        """Subtract the values of the instances destroyed by ``edge``.

        Enumerates against the sampled graph (which must already reflect
        the deletion's effect on the sample) so ``edge`` never appears
        as an "other" edge.
        """
        u, v = edge
        observers = self.instance_observers
        if self._wedge_tracker is not None and not observers:
            self._estimate -= self._wedge_tracker.delta(u, v)
            return
        if self._tri_arena and not observers:
            pair = self._sampled_graph.common_payloads(u, v)
            if pair is not None:
                wa, wb = pair
                if len(wa):
                    self._estimate -= _arena_triangle_delta(
                        wa, wb, self._threshold
                    )
                return
        inc_prob = self.rank_fn.inclusion_probability
        weights = self._edge_weights
        threshold = self._threshold
        estimate = self._estimate
        if self._memoize_light:
            cache = self._prob_cache
            cache_get = cache.get
            for instance in self.pattern.instances_completed(
                self._sampled_graph, u, v
            ):
                value = 1.0
                for other in instance:
                    p = cache_get(other)
                    if p is None:
                        p = inc_prob(weights[other], threshold)
                        cache[other] = p
                    value /= p
                estimate -= value
                if observers:
                    self._estimate = estimate
                    self._emit_instance(edge, instance, -value)
        else:
            for instance in self.pattern.instances_completed(
                self._sampled_graph, u, v
            ):
                value = 1.0
                for other in instance:
                    value /= inc_prob(weights[other], threshold)
                estimate -= value
                if observers:
                    self._estimate = estimate
                    self._emit_instance(edge, instance, -value)
        self._estimate = estimate

    # -- reservoir bookkeeping ----------------------------------------------------

    def _admit(self, edge: Edge, weight: float, rank: float) -> None:
        self._reservoir.push(edge, rank)
        self._record_admission(edge, weight)

    def _record_admission(self, edge: Edge, weight: float) -> None:
        """Record sample state for an edge already placed in the heap."""
        self._edge_weights[edge] = weight
        self._edge_times[edge] = self._time
        self._sample_add(edge)

    def _evict(self, edge: Edge) -> None:
        del self._edge_weights[edge]
        del self._edge_times[edge]
        self._prob_cache.pop(edge, None)
        self._sample_remove(edge)

    # The wedge-delta aggregates mirror the sampled graph exactly, so
    # they are maintained at the same choke points pattern enumeration
    # depends on. ``_sample_add`` runs after ``_edge_weights`` is set
    # (both on admission and on checkpoint restore), which is where the
    # tracker reads the weight from.

    def _sample_add(self, edge: Edge) -> None:
        # The weight doubles as the arena payload-lane value (ignored
        # when no arena is enabled); it is invariant while the edge is
        # sampled, so the lane stays coherent across τq/r_{M+1}
        # generation bumps without any invalidation sweep — the
        # vectorised delta recomputes min(1, w/θ) against the *current*
        # threshold at query time, exactly like the scalar path. The
        # arrival time rides along as the second lane value (ignored
        # unless the learned triangle path activated that lane).
        self._sampled_graph.add_edge_canonical(
            edge, self._edge_weights[edge], self._edge_times[edge]
        )
        if self._wedge_tracker is not None:
            self._wedge_tracker.add(edge, self._edge_weights[edge])
        if self._att is not None:
            # Runs after ``_edge_times`` is set (admission and
            # checkpoint replay both guarantee it), so replay rebuilds
            # the aggregates exactly.
            self._att.add(edge, self._edge_times[edge])

    def _sample_remove(self, edge: Edge) -> None:
        self._sampled_graph.remove_edge_canonical(edge)
        if self._wedge_tracker is not None:
            self._wedge_tracker.remove(edge)
        if self._att is not None:
            self._att.remove(edge)

    def _arena_payload(self, u, v) -> float:
        """Lane value of an existing sampled edge (slab builds)."""
        return self._edge_weights[canonical_edge(u, v)]

    def _arena_time(self, u, v) -> float:
        """Second-lane value (arrival time) of a sampled edge."""
        return float(self._edge_times[canonical_edge(u, v)])

    # -- introspection ------------------------------------------------------------

    @property
    def sample_size(self) -> int:
        return len(self._reservoir)

    def sampled_edges(self) -> Iterator[Edge]:
        return iter(self._reservoir)

    def sampled_weight(self, edge: Edge) -> float:
        """Return the stored weight of a sampled edge."""
        return self._edge_weights[edge]

    # -- batched ingestion -------------------------------------------------------

    def process_batch(
        self, events: EventBlock | Iterable[EdgeEvent]
    ) -> float:
        """Consume a batch of events with amortised per-event overhead.

        Accepts an :class:`~repro.graph.stream.EventBlock` (the
        columnar representation — insertion counting and column
        extraction are C-level passes) or any :class:`EdgeEvent`
        iterable; results are bit-identical across representations.

        Bit-identical to event-at-a-time :meth:`process` under a fixed
        seed for every reservoir policy: the rank randomness for all
        insertions is pre-drawn in one numpy block (the exact doubles
        scalar draws would produce) and the same floating-point
        operations run in the same order. The hoisted fast loop engages
        when no context capture is requested, the weight function is
        context-free, no observers are registered, and the rank family
        supports ``rank_from_uniform``; otherwise it falls back to the
        per-event path. If an event raises mid-batch, state reflects the
        events processed so far but the pre-drawn randomness of the
        remaining insertions is already consumed.
        """
        is_block = isinstance(events, EventBlock)
        if not is_block and not isinstance(events, (list, tuple)):
            events = list(events)
        wf = self.weight_fn
        fast = (
            not self._capture_context
            and not wf.needs_context
            and not self.instance_observers
        )
        if fast:
            try:
                rfu = self.rank_fn.rank_from_uniform
                rfu(1.0, 0.0)
            except NotImplementedError:
                fast = False
        if not fast:
            return SubgraphCountingSampler.process_batch(self, events)

        if is_block:
            ops, us, vs = events.columns()
            num_insertions = events.num_insertions
        else:
            ops, us, vs = batch_columns(events)
            num_insertions = sum(ops)

        policy = self._policy
        # Estimator dispatch: the triangle and wedge enumerations are
        # inlined below (no generator machinery, no instance tuples);
        # other patterns go through ``instances_completed``. The inlined
        # loops visit the same instances in the same order with the same
        # floating-point operations, so estimates stay bit-identical.
        pattern_type = type(self.pattern)
        mode = (
            1 if pattern_type is Triangle else 2 if pattern_type is Wedge
            else 0
        )
        # Weight / rank dispatch: the stock heuristic weight and the
        # paper's inverse-uniform ranks are inlined the same way (their
        # light_weight / rank_from_uniform are pure arithmetic).
        wmode = 0
        w_slope = w_offset = 0.0
        if type(wf) is GPSHeuristicWeight:
            wmode = 1
            w_slope = wf.slope
            w_offset = wf.offset
        elif type(wf) is UniformWeight:
            wmode = 2
            w_offset = 1.0

        # Pre-draw one uniform per insertion in a single numpy block.
        # For the inverse-uniform family the 1-u mapping to (0, 1] is
        # done vectorised, as are the ranks of zero-instance insertions
        # (whose weight is the constant ``w_offset``) — all the same
        # IEEE operations the scalar path performs, element by element.
        uniforms = (
            self.rng.random(num_insertions) if num_insertions else None
        )
        inline_iu = type(self.rank_fn) is InverseUniformRank
        denominators = base_ranks = None
        ui = 0
        next_uniform = iter(()).__next__
        if uniforms is not None:
            if inline_iu:
                block = 1.0 - uniforms
                denominators = block.tolist()
                if wmode:
                    base_ranks = (w_offset / block).tolist()
            else:
                next_uniform = iter(uniforms.tolist()).__next__

        # Hoisted hot-loop state. Plain floats/ints are tracked locally
        # and written back in ``finally``; containers are aliased.
        instances_completed = self.pattern.instances_completed
        light_weight = wf.light_weight
        inc_prob = self.rank_fn.inclusion_probability
        canonical = canonical_edge
        graph = self._sampled_graph
        adj = graph._adj
        intern = graph._interner.intern
        reservoir = self._reservoir
        res_positions = reservoir._position
        res_heap = reservoir._heap
        res_push = reservoir.push
        res_replace_min = reservoir.replace_min
        res_remove = reservoir.remove
        cache = self._prob_cache
        cache_get = cache.get
        weights = self._edge_weights
        edge_times = self._edge_times
        budget = self.budget
        res_size = len(res_positions)
        estimate = self._estimate
        time_now = self._time
        threshold = self._threshold
        generation = self._threshold_generation
        weight = self.last_weight
        # Policy dispatch hoisted to plain booleans (one truth test per
        # event instead of repeated integer comparisons).
        is_wsd = policy == KERNEL_WSD
        is_gps = policy == KERNEL_GPS
        tau_p = self._tau_p if is_wsd else 0.0
        tagged = None if is_wsd or is_gps else self._tagged
        # Wedge-delta aggregates: when present (wedge pattern +
        # inverse-uniform ranks) the mode-2 estimator is O(1) per event
        # and the tracker is maintained inline at every sampled-graph
        # mutation and threshold change below.
        wt = self._wedge_tracker
        if wt is not None:
            wt_add = wt.add
            wt_remove = wt.remove
            wt_raise = wt.raise_threshold
            wt_delta = wt.delta
        else:
            wt_add = wt_remove = wt_raise = wt_delta = None
        # Arena hooks: ``note_add`` / ``note_remove`` mirror the inlined
        # sampled-graph mutations into the sorted slabs (cheap dict
        # probes when no endpoint is slabbed), and ``cp`` gathers the
        # weight lanes over the common neighbourhood for the vectorised
        # mode-1 delta (None return → scalar fallback per event).
        # ``arena_slabs`` is the live slab dict (never reassigned): its
        # truthiness is the ~ns-scale gate that keeps sparse runs —
        # where no vertex ever earns a slab — off both the query helper
        # and the maintenance hooks. Additions must also fire on a
        # cutoff crossing (the *first* slab), hence the degree test at
        # the add sites; removals can only matter once a slab exists.
        arena = graph._arena
        if arena is not None:
            note_add = graph._note_add
            note_remove = graph._note_remove
            arena_slabs = arena._slabs
            slab_cut = graph._slab_cutoff
        else:
            note_add = note_remove = None
            arena_slabs = None
            slab_cut = 0
        cp = graph.common_payloads if self._tri_arena else None
        tri_delta = _arena_triangle_delta
        # WSD-L block serving: ``lw_sw`` evaluates the frozen policy on
        # the state features the estimator pass assembles inline; the
        # arrival-time tracker (wedge) and the arena's time lane
        # (triangle) supply the temporal aggregates in O(1)/vectorised
        # form. All hooks mirror the per-event learned branch exactly.
        lw = self._learned
        lw_sw = lw.state_weight if lw is not None else None
        lw_avg = lw is not None and lw.temporal_aggregation == "avg"
        h_other = self.pattern.num_edges - 1
        att = self._att
        if att is not None:
            att_add = att.add
            att_remove = att.remove
            att_max_pair = att.max_pair
            att_sum_pair = att.sum_pair
        else:
            att_add = att_remove = att_max_pair = att_sum_pair = None
        cp2 = (
            graph.common_payloads2
            if (self._tri_arena and lw is not None)
            else None
        )

        try:
            for is_ins, u, v in zip(ops, us, vs):
                time_now += 1
                edge = (u, v)
                if is_ins:
                    # -- estimate before sampling (Algorithm 2 / Thm 1/2).
                    num_instances = 0
                    if lw_sw is not None:
                        # WSD-L: estimator pass + state features fused.
                        nu = adj.get(u)
                        deg_u = len(nu) if nu else 0
                        nv = adj.get(v)
                        deg_v = len(nv) if nv else 0
                        if wt is not None:  # wedge
                            num_instances = deg_u + deg_v
                            estimate += wt_delta(u, v)
                            if not num_instances:
                                positions = None
                            elif lw_avg:
                                positions = (
                                    float(att_sum_pair(u, v))
                                    / num_instances,
                                    float(time_now),
                                )
                            else:
                                positions = (
                                    float(att_max_pair(u, v)),
                                    float(time_now),
                                )
                        elif mode == 1:  # triangle
                            pair = cp2(u, v) if arena_slabs else None
                            if pair is not None:
                                wa, wb, ta, tb = pair
                                num_instances = len(wa)
                                if num_instances:
                                    estimate += tri_delta(
                                        wa, wb, threshold
                                    )
                                    mins = np.minimum(ta, tb)
                                    maxs = np.maximum(ta, tb)
                                    if lw_avg:
                                        positions = (
                                            float(mins.sum())
                                            / num_instances,
                                            float(maxs.sum())
                                            / num_instances,
                                            float(time_now),
                                        )
                                    else:
                                        positions = (
                                            float(mins.max()),
                                            float(maxs.max()),
                                            float(time_now),
                                        )
                                else:
                                    positions = None
                            else:
                                a1 = a2 = 0
                                if nu and nv and not nu.isdisjoint(nv):
                                    for w in nu & nv:
                                        num_instances += 1
                                        try:
                                            e1 = (
                                                (u, w) if u < w else (w, u)
                                            )
                                            e2 = (
                                                (v, w) if v < w else (w, v)
                                            )
                                        except TypeError:
                                            e1 = canonical(u, w)
                                            e2 = canonical(v, w)
                                        t1 = edge_times[e1]
                                        t2 = edge_times[e2]
                                        if t1 > t2:
                                            t1, t2 = t2, t1
                                        if lw_avg:
                                            a1 += t1
                                            a2 += t2
                                        else:
                                            if t1 > a1:
                                                a1 = t1
                                            if t2 > a2:
                                                a2 = t2
                                        if inline_iu:
                                            if threshold > 0.0:
                                                p1 = (
                                                    weights[e1] / threshold
                                                )
                                                if p1 > 1.0:
                                                    p1 = 1.0
                                                p2 = (
                                                    weights[e2] / threshold
                                                )
                                                if p2 > 1.0:
                                                    p2 = 1.0
                                                estimate += 1.0 / p1 / p2
                                            else:
                                                estimate += 1.0
                                        else:
                                            p1 = cache_get(e1)
                                            if p1 is None:
                                                p1 = inc_prob(
                                                    weights[e1], threshold
                                                )
                                                cache[e1] = p1
                                            p2 = cache_get(e2)
                                            if p2 is None:
                                                p2 = inc_prob(
                                                    weights[e2], threshold
                                                )
                                                cache[e2] = p2
                                            estimate += 1.0 / p1 / p2
                                if not num_instances:
                                    positions = None
                                elif lw_avg:
                                    positions = (
                                        float(a1) / num_instances,
                                        float(a2) / num_instances,
                                        float(time_now),
                                    )
                                else:
                                    positions = (
                                        float(a1),
                                        float(a2),
                                        float(time_now),
                                    )
                        else:  # generic pattern
                            acc = [0] * (h_other)
                            for instance in instances_completed(
                                graph, u, v
                            ):
                                num_instances += 1
                                value = 1.0
                                times = []
                                for other in instance:
                                    p = cache_get(other)
                                    if p is None:
                                        p = inc_prob(
                                            weights[other], threshold
                                        )
                                        cache[other] = p
                                    value /= p
                                    times.append(edge_times[other])
                                estimate += value
                                times.sort()
                                if lw_avg:
                                    for j, tv in enumerate(times):
                                        acc[j] += tv
                                else:
                                    for j, tv in enumerate(times):
                                        if tv > acc[j]:
                                            acc[j] = tv
                            if not num_instances:
                                positions = None
                            elif lw_avg:
                                positions = [
                                    float(a) / num_instances for a in acc
                                ]
                                positions.append(float(time_now))
                            else:
                                positions = [float(a) for a in acc]
                                positions.append(float(time_now))
                    elif mode == 1:  # triangle
                        pair = cp(u, v) if arena_slabs else None
                        if pair is not None:
                            # Vectorised: searchsorted intersection of
                            # the two sorted slabs + one gathered array
                            # expression over the weight lanes.
                            wa = pair[0]
                            num_instances = len(wa)
                            if num_instances:
                                estimate += tri_delta(
                                    wa, pair[1], threshold
                                )
                            nv = None  # scalar loop below stays off
                        else:
                            try:
                                nu = adj[u]
                                nv = adj[v]
                            except KeyError:
                                nv = None
                        # isdisjoint() skips the result-set allocation
                        # on the (common) zero-instance events.
                        if nv and not nu.isdisjoint(nv):
                            for w in nu & nv:
                                num_instances += 1
                                # Inline canonicalisation: w is a
                                # neighbour, so w != u and w != v; the
                                # fallback covers unorderable labels.
                                try:
                                    e1 = (u, w) if u < w else (w, u)
                                    e2 = (v, w) if v < w else (w, v)
                                except TypeError:
                                    e1 = canonical(u, w)
                                    e2 = canonical(v, w)
                                if inline_iu:
                                    # min(1, w/θ) computed directly —
                                    # cheaper than the memo dict when θ
                                    # churns, bit-identical either way.
                                    if threshold > 0.0:
                                        p1 = weights[e1] / threshold
                                        if p1 > 1.0:
                                            p1 = 1.0
                                        p2 = weights[e2] / threshold
                                        if p2 > 1.0:
                                            p2 = 1.0
                                        estimate += 1.0 / p1 / p2
                                    else:
                                        estimate += 1.0
                                else:
                                    p1 = cache_get(e1)
                                    if p1 is None:
                                        p1 = inc_prob(weights[e1], threshold)
                                        cache[e1] = p1
                                    p2 = cache_get(e2)
                                    if p2 is None:
                                        p2 = inc_prob(weights[e2], threshold)
                                        cache[e2] = p2
                                    estimate += 1.0 / p1 / p2
                    elif mode == 2:  # wedge
                        if wt is not None:
                            # O(1): degree sum + per-vertex aggregates
                            # (the arriving edge is never in the
                            # sampled graph, so no tip exclusion).
                            nc = adj.get(u)
                            if nc:
                                num_instances = len(nc)
                            nc = adj.get(v)
                            if nc:
                                num_instances += len(nc)
                            estimate += wt_delta(u, v)
                        else:
                            for centre, tip in ((u, v), (v, u)):
                                nc = adj.get(centre)
                                if nc:
                                    for w in nc:
                                        if w != tip:
                                            num_instances += 1
                                            try:
                                                e = (
                                                    (centre, w)
                                                    if centre < w
                                                    else (w, centre)
                                                )
                                            except TypeError:
                                                e = canonical(centre, w)
                                            if inline_iu:
                                                if threshold > 0.0:
                                                    p = (
                                                        weights[e]
                                                        / threshold
                                                    )
                                                    if p > 1.0:
                                                        p = 1.0
                                                    estimate += 1.0 / p
                                                else:
                                                    estimate += 1.0
                                            else:
                                                p = cache_get(e)
                                                if p is None:
                                                    p = inc_prob(
                                                        weights[e],
                                                        threshold,
                                                    )
                                                    cache[e] = p
                                                estimate += 1.0 / p
                    else:
                        for instance in instances_completed(graph, u, v):
                            num_instances += 1
                            value = 1.0
                            for other in instance:
                                p = cache_get(other)
                                if p is None:
                                    p = inc_prob(weights[other], threshold)
                                    cache[other] = p
                                value /= p
                            estimate += value
                    if lw_sw is not None:
                        # WSD-L weight from the fused state features;
                        # the rank consumes the same pre-drawn uniform
                        # the scalar path would (weights feed back into
                        # the trajectory, so serving is per event — the
                        # saving is skipping context materialisation
                        # and instance re-walks, not batching the
                        # policy itself).
                        weight = lw_sw(
                            num_instances, deg_u, deg_v, time_now,
                            positions,
                        )
                        if inline_iu:
                            rank = weight / denominators[ui]
                            ui += 1
                        else:
                            rank = rfu(weight, next_uniform())
                    elif inline_iu:
                        if wmode and not num_instances:
                            # Constant-weight insertion: the rank was
                            # already computed in the numpy block.
                            weight = w_offset
                            rank = base_ranks[ui]
                        else:
                            if wmode == 1:
                                weight = w_slope * num_instances + w_offset
                            elif wmode == 2:
                                weight = 1.0
                            else:
                                weight = float(
                                    light_weight(num_instances, graph, u, v)
                                )
                                if weight <= 0.0:
                                    raise ConfigurationError(
                                        "weight must be positive, got "
                                        f"{weight}"
                                    )
                            rank = weight / denominators[ui]
                        ui += 1
                    else:
                        if wmode == 1:
                            weight = w_slope * num_instances + w_offset
                        elif wmode == 2:
                            weight = 1.0
                        else:
                            weight = float(
                                light_weight(num_instances, graph, u, v)
                            )
                        rank = rfu(weight, next_uniform())
                    # -- reservoir policy. The sampled-graph updates are
                    # inlined (the canonical-edge dict operations of
                    # ``add/remove_edge_canonical``) so the hot loop
                    # keeps every name a plain local — a closure would
                    # demote ``adj`` to a cell variable for the whole
                    # loop, estimator included.
                    if is_wsd:
                        # Algorithm 1's insert cases.
                        if res_size < budget:
                            if rank > tau_p:  # Case 1.1
                                res_push(edge, rank)
                                res_size += 1
                                weights[edge] = weight
                                edge_times[edge] = time_now
                                s = adj.get(u)
                                if s is None:
                                    adj[u] = {v}
                                    intern(u)
                                elif v in s:
                                    raise EdgeExistsError(
                                        f"edge {edge!r} already present"
                                    )
                                else:
                                    s.add(v)
                                s = adj.get(v)
                                if s is None:
                                    adj[v] = {u}
                                    intern(v)
                                else:
                                    s.add(u)
                                # Written through eagerly so custom
                                # patterns and weight functions observing
                                # the live graph see a coherent count.
                                graph._num_edges += 1
                                if wt is not None:
                                    wt_add(edge, weight)
                                    if att_add is not None:
                                        att_add(edge, time_now)
                                if note_add is not None and (
                                    arena_slabs
                                    or len(adj[u]) >= slab_cut
                                    or len(adj[v]) >= slab_cut
                                ):
                                    note_add(u, v, weight, time_now)
                        else:
                            min_rank = res_heap[0][0]
                            tau_p = min_rank
                            if rank > min_rank:  # Case 2.1
                                evicted, _ = res_replace_min(edge, rank)
                                del weights[evicted]
                                del edge_times[evicted]
                                cache.pop(evicted, None)
                                a, b = evicted
                                s = adj[a]
                                s.remove(b)
                                if not s:
                                    del adj[a]
                                s = adj[b]
                                s.remove(a)
                                if not s:
                                    del adj[b]
                                if note_remove is not None and arena_slabs:
                                    note_remove(a, b)
                                weights[edge] = weight
                                edge_times[edge] = time_now
                                s = adj.get(u)
                                if s is None:
                                    adj[u] = {v}
                                    intern(u)
                                elif v in s:
                                    raise EdgeExistsError(
                                        f"edge {edge!r} already present"
                                    )
                                else:
                                    s.add(v)
                                s = adj.get(v)
                                if s is None:
                                    adj[v] = {u}
                                    intern(v)
                                else:
                                    s.add(u)
                                if wt is not None:
                                    wt_remove(evicted)
                                    wt_add(edge, weight)
                                    if att_add is not None:
                                        att_remove(evicted)
                                        att_add(edge, time_now)
                                if note_add is not None and (
                                    arena_slabs
                                    or len(adj[u]) >= slab_cut
                                    or len(adj[v]) >= slab_cut
                                ):
                                    note_add(u, v, weight, time_now)
                                if tau_p != threshold:
                                    threshold = tau_p
                                    generation += 1
                                    cache.clear()
                                    if wt is not None:
                                        wt_raise(threshold)
                            elif rank > threshold:  # Case 2.2
                                threshold = rank
                                generation += 1
                                cache.clear()
                                if wt is not None:
                                    wt_raise(threshold)
                            # Case 2.3: discard silently.
                    else:
                        # GPS / GPS-A priority competition.
                        if tagged is not None and edge in res_positions:
                            # Re-insertion over a tagged ghost: replace
                            # it with the fresh arrival (the one
                            # departure from pure laziness needed to
                            # keep edge keys unique).
                            res_remove(edge)
                            res_size -= 1
                            del weights[edge]
                            del edge_times[edge]
                            cache.pop(edge, None)
                            if edge in tagged:
                                tagged.discard(edge)
                            else:
                                s = adj[u]
                                s.remove(v)
                                if not s:
                                    del adj[u]
                                s = adj[v]
                                s.remove(u)
                                if not s:
                                    del adj[v]
                                graph._num_edges -= 1
                                if wt is not None:
                                    wt_remove(edge)
                                    if att_remove is not None:
                                        att_remove(edge)
                                if note_remove is not None and arena_slabs:
                                    note_remove(u, v)
                        if res_size < budget:
                            res_push(edge, rank)
                            res_size += 1
                            weights[edge] = weight
                            edge_times[edge] = time_now
                            s = adj.get(u)
                            if s is None:
                                adj[u] = {v}
                                intern(u)
                            elif v in s:
                                raise EdgeExistsError(
                                    f"edge {edge!r} already present"
                                )
                            else:
                                s.add(v)
                            s = adj.get(v)
                            if s is None:
                                adj[v] = {u}
                                intern(v)
                            else:
                                s.add(u)
                            graph._num_edges += 1
                            if wt is not None:
                                wt_add(edge, weight)
                                if att_add is not None:
                                    att_add(edge, time_now)
                            if note_add is not None and (
                                arena_slabs
                                or len(adj[u]) >= slab_cut
                                or len(adj[v]) >= slab_cut
                            ):
                                note_add(u, v, weight, time_now)
                        else:
                            min_rank = res_heap[0][0]
                            if rank > min_rank:
                                evicted, evicted_rank = res_replace_min(
                                    edge, rank
                                )
                                del weights[evicted]
                                del edge_times[evicted]
                                cache.pop(evicted, None)
                                if tagged is not None and evicted in tagged:
                                    tagged.discard(evicted)
                                    # A ghost freed a slot: the useful
                                    # sample grows by one edge.
                                    graph._num_edges += 1
                                else:
                                    a, b = evicted
                                    s = adj[a]
                                    s.remove(b)
                                    if not s:
                                        del adj[a]
                                    s = adj[b]
                                    s.remove(a)
                                    if not s:
                                        del adj[b]
                                    if wt is not None:
                                        wt_remove(evicted)
                                        if att_remove is not None:
                                            att_remove(evicted)
                                    if note_remove is not None and arena_slabs:
                                        note_remove(a, b)
                                if evicted_rank > threshold:
                                    threshold = evicted_rank
                                    generation += 1
                                    cache.clear()
                                    if wt is not None:
                                        wt_raise(threshold)
                                weights[edge] = weight
                                edge_times[edge] = time_now
                                s = adj.get(u)
                                if s is None:
                                    adj[u] = {v}
                                    intern(u)
                                elif v in s:
                                    raise EdgeExistsError(
                                        f"edge {edge!r} already present"
                                    )
                                else:
                                    s.add(v)
                                s = adj.get(v)
                                if s is None:
                                    adj[v] = {u}
                                    intern(v)
                                else:
                                    s.add(u)
                                if wt is not None:
                                    wt_add(edge, weight)
                                    if att_add is not None:
                                        att_add(edge, time_now)
                                if note_add is not None and (
                                    arena_slabs
                                    or len(adj[u]) >= slab_cut
                                    or len(adj[v]) >= slab_cut
                                ):
                                    note_add(u, v, weight, time_now)
                            elif rank > threshold:
                                threshold = rank
                                generation += 1
                                cache.clear()
                                if wt is not None:
                                    wt_raise(threshold)
                else:
                    # -- deletion.
                    if is_wsd:
                        # Case 3 first: removing e_t from the reservoir
                        # does not change any other edge's membership or
                        # τq, and it keeps e_t from appearing as an
                        # "other" edge during enumeration below.
                        if edge in res_positions:
                            res_remove(edge)
                            res_size -= 1
                            del weights[edge]
                            del edge_times[edge]
                            cache.pop(edge, None)
                            s = adj[u]
                            s.remove(v)
                            if not s:
                                del adj[u]
                            s = adj[v]
                            s.remove(u)
                            if not s:
                                del adj[v]
                            graph._num_edges -= 1
                            if wt is not None:
                                wt_remove(edge)
                                if att_remove is not None:
                                    att_remove(edge)
                            if note_remove is not None and arena_slabs:
                                note_remove(u, v)
                    elif is_gps:
                        raise SamplerError(
                            "GPS only supports insertion-only streams; use "
                            "GPSA or WSD for fully dynamic streams (paper "
                            "Section III-A, Example 1)"
                        )
                    else:  # GPS-A: tag first, keep the slot occupied.
                        if edge in res_positions and edge not in tagged:
                            tagged.add(edge)
                            s = adj[u]
                            s.remove(v)
                            if not s:
                                del adj[u]
                            s = adj[v]
                            s.remove(u)
                            if not s:
                                del adj[v]
                            graph._num_edges -= 1
                            if wt is not None:
                                wt_remove(edge)
                                if att_remove is not None:
                                    att_remove(edge)
                            if note_remove is not None and arena_slabs:
                                note_remove(u, v)
                    if mode == 1:  # triangle
                        pair = cp(u, v) if arena_slabs else None
                        if pair is not None:
                            wa = pair[0]
                            if len(wa):
                                estimate -= tri_delta(
                                    wa, pair[1], threshold
                                )
                            nv = None  # scalar loop below stays off
                        else:
                            try:
                                nu = adj[u]
                                nv = adj[v]
                            except KeyError:
                                nv = None
                        # isdisjoint() skips the result-set allocation
                        # on the (common) zero-instance events.
                        if nv and not nu.isdisjoint(nv):
                            for w in nu & nv:
                                try:
                                    e1 = (u, w) if u < w else (w, u)
                                    e2 = (v, w) if v < w else (w, v)
                                except TypeError:
                                    e1 = canonical(u, w)
                                    e2 = canonical(v, w)
                                if inline_iu:
                                    if threshold > 0.0:
                                        p1 = weights[e1] / threshold
                                        if p1 > 1.0:
                                            p1 = 1.0
                                        p2 = weights[e2] / threshold
                                        if p2 > 1.0:
                                            p2 = 1.0
                                        estimate -= 1.0 / p1 / p2
                                    else:
                                        estimate -= 1.0
                                else:
                                    p1 = cache_get(e1)
                                    if p1 is None:
                                        p1 = inc_prob(weights[e1], threshold)
                                        cache[e1] = p1
                                    p2 = cache_get(e2)
                                    if p2 is None:
                                        p2 = inc_prob(weights[e2], threshold)
                                        cache[e2] = p2
                                    estimate -= 1.0 / p1 / p2
                    elif mode == 2:  # wedge
                        if wt is not None:
                            estimate -= wt_delta(u, v)
                        else:
                            for centre, tip in ((u, v), (v, u)):
                                nc = adj.get(centre)
                                if nc:
                                    for w in nc:
                                        if w != tip:
                                            try:
                                                e = (
                                                    (centre, w)
                                                    if centre < w
                                                    else (w, centre)
                                                )
                                            except TypeError:
                                                e = canonical(centre, w)
                                            if inline_iu:
                                                if threshold > 0.0:
                                                    p = (
                                                        weights[e]
                                                        / threshold
                                                    )
                                                    if p > 1.0:
                                                        p = 1.0
                                                    estimate -= 1.0 / p
                                                else:
                                                    estimate -= 1.0
                                            else:
                                                p = cache_get(e)
                                                if p is None:
                                                    p = inc_prob(
                                                        weights[e],
                                                        threshold,
                                                    )
                                                    cache[e] = p
                                                estimate -= 1.0 / p
                    else:
                        for instance in instances_completed(graph, u, v):
                            value = 1.0
                            for other in instance:
                                p = cache_get(other)
                                if p is None:
                                    p = inc_prob(weights[other], threshold)
                                    cache[other] = p
                                value /= p
                            estimate -= value
        finally:
            self._estimate = estimate
            self._time = time_now
            self._threshold = threshold
            self._threshold_generation = generation
            self.last_weight = weight
            if policy == KERNEL_WSD:
                self._tau_p = tau_p
        return estimate


class PairingSamplerKernel(SampledGraphMixin, SubgraphCountingSampler):
    """Shared kernel of the uniform (random-pairing) samplers.

    Owns the :class:`RandomPairingReservoir` and the sampled-graph
    bookkeeping that ThinkD, Triest and (for its reservoir half) WRS all
    duplicate. Subclasses keep their estimator rules — the designs
    differ in *when* the estimate moves, not in how the sample is kept.

    Args:
        pattern: the target pattern H.
        budget: M, the reported storage budget.
        rng: seed or generator.
        reservoir_capacity: capacity of the RP reservoir; defaults to
            ``budget`` (WRS passes its post-waiting-room remainder).
    """

    def __init__(
        self,
        pattern: str | Pattern,
        budget: int,
        rng: np.random.Generator | int | None = None,
        reservoir_capacity: int | None = None,
    ) -> None:
        SubgraphCountingSampler.__init__(self, pattern, budget, rng)
        SampledGraphMixin.__init__(self)
        self._rp = RandomPairingReservoir(
            budget if reservoir_capacity is None else reservoir_capacity,
            self.rng,
        )
        # No arena here: the plain RP kernels (ThinkD, Triest) count
        # common neighbours with one C-level set intersection — there
        # is no per-element Python loop for the slabs to beat, and the
        # measured arena path is a net loss for them at every density
        # (the same reason thinkd/wedge sat out the PR-4 wedge
        # vectorisation). WRS — whose triangle delta *does* run a
        # per-instance Python membership loop — enables the arena in
        # its own constructor with the waiting-room membership lane.

    def _batch_counter(self):
        """A hoisted ``count(u, v)`` closure for the batched loops.

        Counts the pattern instances an edge ``{u, v}`` completes
        against the sampled graph, with the triangle/wedge cases
        inlined on the graph's raw adjacency dict (identical values to
        ``pattern.count_completed``). Shared by the ThinkD and Triest
        batched ingestion overrides; the random-pairing skeletons
        around it stay per-sampler because each interleaves its own
        estimator/τ updates between the rng-order-sensitive steps.
        """
        pattern_type = type(self.pattern)
        mode = (
            1 if pattern_type is Triangle else 2 if pattern_type is Wedge
            else 0
        )
        count_completed = self.pattern.count_completed
        graph = self._sampled_graph
        adj = graph._adj

        def count(u, v):
            if mode == 1:  # triangle
                nu = adj.get(u)
                if not nu:
                    return 0
                nv = adj.get(v)
                if not nv or nu.isdisjoint(nv):
                    return 0
                return len(nu & nv)
            if mode == 2:  # wedge
                nu = adj.get(u)
                nv = adj.get(v)
                return (len(nu) if nu else 0) + (len(nv) if nv else 0)
            return count_completed(graph, u, v)

        return count

    @property
    def sample_size(self) -> int:
        return len(self._rp)

    def sampled_edges(self) -> Iterator[Edge]:
        return iter(self._rp)
