"""Sampler interfaces shared by every algorithm in the library.

A :class:`SubgraphCountingSampler` consumes a fully dynamic edge stream
one event at a time under the Section II constraints (no knowledge,
memory budget of M edges, single pass) and maintains a running estimate
of the pattern count |J(t)|. All six algorithms (WSD, GPS, GPS-A,
Triest, ThinkD, WRS) implement this interface, which is what the
experiment runner and the examples program against.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterable, Iterator
from itertools import islice

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.adjacency import DynamicAdjacency
from repro.graph.edges import Edge
from repro.graph.stream import INSERT, EdgeEvent, EdgeStream, EventBlock
from repro.patterns.base import Instance, Pattern
from repro.patterns.matching import get_pattern
from repro.utils.rng import ensure_rng

__all__ = ["SubgraphCountingSampler", "SampledGraphMixin", "InstanceObserver"]

#: Callback invoked for every estimator contribution: the triggering
#: edge, the instance's other edges, and the signed Horvitz-Thompson
#: value added to the global estimate (negative for destructions).
InstanceObserver = Callable[[Edge, Instance, float], None]


class SubgraphCountingSampler(abc.ABC):
    """Base class: one-pass subgraph-count estimation with M-edge budget."""

    def __init__(
        self,
        pattern: str | Pattern,
        budget: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if budget < 1:
            raise ConfigurationError(f"budget must be >= 1, got {budget}")
        self.pattern = get_pattern(pattern)
        if budget < self.pattern.num_edges:
            raise ConfigurationError(
                f"budget M={budget} is below |H|={self.pattern.num_edges}; "
                "the estimators require M >= |H| (Theorems 2/4)"
            )
        self.budget = budget
        self.rng = ensure_rng(rng)
        self._estimate = 0.0
        self._time = 0
        #: Observers notified of every per-instance estimator update —
        #: the hook behind local (per-vertex) counting. Supported by the
        #: estimate-before-sample algorithms (WSD, GPS, GPS-A, ThinkD,
        #: WRS); Triest only re-weights at query time and cannot emit
        #: per-instance values.
        self.instance_observers: list[InstanceObserver] = []

    # -- core API -----------------------------------------------------------

    @property
    def estimate(self) -> float:
        """The current estimate of |J(t)|."""
        return self._estimate

    @property
    def time(self) -> int:
        """Number of events processed so far (the stream clock t)."""
        return self._time

    def process(self, event: EdgeEvent) -> None:
        """Consume one stream event, updating estimate and sample."""
        self._time += 1
        if event.is_insertion:
            self._process_insertion(event.edge)
        else:
            self._process_deletion(event.edge)

    @abc.abstractmethod
    def _process_insertion(self, edge: Edge) -> None:
        """Handle an insertion event (estimate first, then sample)."""

    @abc.abstractmethod
    def _process_deletion(self, edge: Edge) -> None:
        """Handle a deletion event (estimate first, then sample)."""

    def _emit_instance(
        self, trigger: Edge, instance: Instance, value: float
    ) -> None:
        """Notify observers of one signed per-instance contribution."""
        for observer in self.instance_observers:
            observer(trigger, instance, value)

    def process_batch(
        self, events: EventBlock | Iterable[EdgeEvent]
    ) -> float:
        """Consume a batch of events; return the estimate afterwards.

        Semantically identical to calling :meth:`process` per event
        (bit-identical estimates under a fixed seed). Accepts either an
        :class:`EdgeEvent` iterable or a columnar
        :class:`~repro.graph.stream.EventBlock` (whose columns are
        unpacked in one C-level pass each); results are bit-identical
        across the two representations. This default already amortises
        the per-event dispatch — the handlers are hoisted to locals and
        the insertion test reads ``event.op`` directly instead of going
        through the ``is_insertion`` property. The hot-path kernels
        (:mod:`repro.samplers.kernel`) and samplers override it
        further: pre-drawing rank randomness in numpy blocks, inlining
        the triangle/wedge estimators, and skipping observer plumbing
        when no observers are registered.
        """
        insertion = self._process_insertion
        deletion = self._process_deletion
        time_now = self._time
        if isinstance(events, EventBlock):
            for is_ins, u, v in zip(*events.columns()):
                time_now += 1
                self._time = time_now
                if is_ins:
                    insertion((u, v))
                else:
                    deletion((u, v))
            return self.estimate
        if not isinstance(events, (list, tuple)):
            events = list(events)
        op_insert = INSERT
        for event in events:
            time_now += 1
            self._time = time_now
            if event.op == op_insert:
                insertion(event.edge)
            else:
                deletion(event.edge)
        return self.estimate

    def process_stream(
        self, stream: EdgeStream | EventBlock | Iterable[EdgeEvent]
    ) -> float:
        """Consume a whole stream; return the final estimate.

        Materialised streams (and columnar
        :class:`~repro.graph.stream.EventBlock` batches) are handed to
        :meth:`process_batch` whole; lazy iterables (e.g.
        :func:`~repro.graph.stream.iter_stream_file`) are consumed in
        bounded chunks so the single-pass, fixed-memory contract of
        Section II is preserved. Chunking does not change results:
        batches are bit-identical to per-event processing regardless of
        their boundaries.
        """
        if isinstance(stream, (list, tuple, EdgeStream, EventBlock)):
            return self.process_batch(stream)
        iterator = iter(stream)
        while True:
            chunk = list(islice(iterator, 8192))
            if not chunk:
                break
            self.process_batch(chunk)
        return self.estimate

    # -- introspection -------------------------------------------------------

    @property
    @abc.abstractmethod
    def sample_size(self) -> int:
        """Number of edges currently held in the sample."""

    @abc.abstractmethod
    def sampled_edges(self) -> Iterator[Edge]:
        """Iterate over the edges currently held in the sample."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{type(self).__name__}(pattern={self.pattern.name!r}, "
            f"M={self.budget}, t={self._time}, "
            f"estimate={self._estimate:.3f})"
        )


class SampledGraphMixin:
    """Maintains a :class:`DynamicAdjacency` view of the sampled edges.

    Subclasses call :meth:`_sample_add` / :meth:`_sample_remove` whenever
    an edge enters or leaves their sample so pattern enumeration can run
    against the sampled graph.
    """

    def __init__(self) -> None:
        self._sampled_graph = DynamicAdjacency()

    @property
    def sampled_graph(self) -> DynamicAdjacency:
        """Read-only view of the sampled graph (do not mutate)."""
        return self._sampled_graph

    def _sample_add(self, edge: Edge) -> None:
        # Edges reaching the sample come from stream events and are
        # already canonical — skip re-canonicalisation.
        self._sampled_graph.add_edge_canonical(edge)

    def _sample_remove(self, edge: Edge) -> None:
        self._sampled_graph.remove_edge_canonical(edge)
