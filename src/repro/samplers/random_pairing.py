"""Random pairing: uniform reservoir sampling under deletions.

Gemulla, Lehner and Haas's *random pairing* (RP) extends classic
reservoir sampling to fully dynamic streams: every deletion is
conceptually "paired with" a later insertion that re-fills the freed
slot. RP maintains two counters of uncompensated deletions —

* ``d_i`` ("bad"): deletions of items that *were* in the sample;
* ``d_o`` ("good"): deletions of items that were not —

and guarantees that at all times the sample is a uniformly random
subset (of random size) of the alive population. All three uniform
baselines (Triest, ThinkD, WRS) are built on this class.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import ensure_rng

__all__ = ["RandomPairingReservoir"]


class RandomPairingReservoir:
    """A uniform sample of at most ``capacity`` alive items under RP.

    :meth:`insert` / :meth:`delete` must be called for every population
    insertion/deletion. Both report how the *sample* changed so callers
    can keep auxiliary structures (e.g. a sampled-graph adjacency) in
    sync.
    """

    def __init__(
        self,
        capacity: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.rng = ensure_rng(rng)
        self._items: list[Hashable] = []
        self._index: dict[Hashable, int] = {}
        self.d_i = 0
        self.d_o = 0
        self.population = 0

    # -- sample container ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._index

    def __iter__(self) -> Iterator[Hashable]:
        return iter(list(self._items))

    def _add(self, item: Hashable) -> None:
        self._index[item] = len(self._items)
        self._items.append(item)

    def _remove(self, item: Hashable) -> None:
        i = self._index.pop(item)
        last = self._items.pop()
        if i < len(self._items):
            self._items[i] = last
            self._index[last] = i

    def _evict_random(self) -> Hashable:
        victim = self._items[int(self.rng.integers(0, len(self._items)))]
        self._remove(victim)
        return victim

    # -- RP operations ------------------------------------------------------------

    def insert(self, item: Hashable) -> tuple[bool, Hashable | None]:
        """Process a population insertion.

        Returns ``(added, evicted)``: whether ``item`` entered the
        sample and, if a standard reservoir replacement occurred, the
        evicted item (otherwise ``None``).
        """
        if item in self._index:
            raise ConfigurationError(f"item {item!r} already sampled")
        self.population += 1
        uncompensated = self.d_i + self.d_o
        if uncompensated == 0:
            if len(self._items) < self.capacity:
                self._add(item)
                return True, None
            if self.rng.random() < self.capacity / self.population:
                evicted = self._evict_random()
                self._add(item)
                return True, evicted
            return False, None
        # Pair this insertion with one earlier uncompensated deletion.
        if self.rng.random() < self.d_i / uncompensated:
            self.d_i -= 1
            self._add(item)
            return True, None
        self.d_o -= 1
        return False, None

    def delete(self, item: Hashable) -> bool:
        """Process a population deletion.

        Returns whether ``item`` was in the sample (and got removed).
        """
        self.population -= 1
        if item in self._index:
            self._remove(item)
            self.d_i += 1
            return True
        self.d_o += 1
        return False

    # -- estimation helpers ----------------------------------------------------------

    def joint_inclusion_probability(self, k: int) -> float:
        """P[k specific alive items are all in the sample].

        Conditioned on the realised sample size s (the RP uniformity
        guarantee), this is ∏_{j<k} (s - j) / (n - j) with n the alive
        population. Returns 0.0 when the sample is too small.
        """
        s = len(self._items)
        n = self.population
        if k <= 0:
            return 1.0
        if s < k or n < k:
            return 0.0
        p = 1.0
        for j in range(k):
            p *= (s - j) / (n - j)
        return p

    def triest_inclusion_probability(self, k: int) -> float:
        """Triest-FD's closed-form P[k specific alive items sampled].

        Uses ω = min(M, n + d_i + d_o) over the *augmented* population
        W = n + d_i + d_o, as in the Triest-FD estimator:
        ∏_{j<k} (ω - j) / (W - j). Returns 0.0 when ω < k.
        """
        w = self.population + self.d_i + self.d_o
        omega = min(self.capacity, w)
        if k <= 0:
            return 1.0
        if omega < k or w < k:
            return 0.0
        p = 1.0
        for j in range(k):
            p *= (omega - j) / (w - j)
        return p
