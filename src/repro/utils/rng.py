"""Seeded random-number management.

Every stochastic component of the library (stream generation, sampling,
RL exploration, experiment repetition) draws from a
:class:`numpy.random.Generator`. To keep experiments reproducible while
letting components evolve independently, randomness is organised as a
*tree*: a root seed spawns named child generators, and the child for a
given name is stable regardless of the order in which other children are
requested.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory", "ensure_rng", "derive_seed", "spawn_generators"]

_MASK_63 = (1 << 63) - 1


def derive_seed(root_seed: int, name: str) -> int:
    """Return a deterministic 63-bit seed derived from a root seed and a label.

    The derivation hashes ``(root_seed, name)`` with SHA-256, so distinct
    labels yield statistically independent seeds and the mapping is stable
    across runs, platforms and Python versions.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _MASK_63


def spawn_generators(root_seed: int, n: int) -> list[np.random.Generator]:
    """Return ``n`` independent generators spawned from one root seed.

    Uses :meth:`numpy.random.SeedSequence.spawn`, numpy's supported way
    to derive statistically independent child streams: the children are
    a pure function of ``(root_seed, index)``, stable across platforms
    and Python versions. This is the per-shard seeding scheme of the
    sharded executor — because the derivation happens once in the
    parent, a ``process``-backend run draws exactly the same randomness
    as a ``serial`` run of the same root seed.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    children = np.random.SeedSequence(root_seed).spawn(n)
    return [np.random.default_rng(child) for child in children]


def ensure_rng(
    rng: np.random.Generator | int | None,
) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` (fresh OS-entropy generator).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


class RngFactory:
    """A tree of named, independently-seeded random generators.

    Example::

        factory = RngFactory(seed=42)
        stream_rng = factory.generator("stream")
        sampler_rng = factory.generator("sampler")
        child = factory.child("trial-3")      # independent sub-factory

    The generator returned for a given name is a fresh object each call
    (callers own its state), but it is always seeded identically for the
    same ``(seed, name)`` pair.
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed

    def generator(self, name: str) -> np.random.Generator:
        """Return a fresh generator deterministically seeded by ``name``."""
        return np.random.default_rng(derive_seed(self.seed, name))

    def child(self, name: str) -> "RngFactory":
        """Return an independent sub-factory labelled ``name``."""
        return RngFactory(derive_seed(self.seed, f"child:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RngFactory(seed={self.seed})"
