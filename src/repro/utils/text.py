"""Text helpers shared by the wire-facing layers.

One job today: :func:`clip_text`, the head+tail truncation applied to
every remote traceback before it rides an ``("error", ...)`` control
frame. A pathological exception chain (deep ``__cause__`` nesting,
megabyte repr values) must not be able to balloon an error reply past
the frame cap — the report exists to *diagnose* a failure, not to
become one.
"""

from __future__ import annotations

__all__ = ["TRACEBACK_LIMIT", "clip_text"]

#: Default budget (in characters, which is bytes for the ASCII bulk of
#: a traceback) for a remote error report. Generous for real
#: tracebacks — hundreds of frames fit — but far below any frame cap.
TRACEBACK_LIMIT = 16 * 1024


def clip_text(text: str, limit: int = TRACEBACK_LIMIT) -> str:
    """Bound ``text`` to ``limit`` characters, keeping head and tail.

    The head carries the exception site, the tail carries the final
    "raised from" chain — the two halves a human actually reads — with
    an explicit elision marker in between so a clipped report is never
    mistaken for a complete one.
    """
    if len(text) <= limit:
        return text
    head = max(0, (limit - 64) // 2)
    tail = max(0, limit - 64 - head)
    elided = len(text) - head - tail
    return (
        text[:head]
        + f"\n... [{elided} characters elided] ...\n"
        + text[len(text) - tail:]
    )
