"""Small timing utilities used by the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "Timer"]


class Stopwatch:
    """A resumable stopwatch accumulating elapsed wall-clock seconds.

    Used by the experiment runner to attribute time to algorithm work
    while excluding ground-truth bookkeeping::

        sw = Stopwatch()
        with sw:
            sampler.process(event)
        ... ground truth update, not timed ...
        print(sw.elapsed)
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch is not running")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    @property
    def running(self) -> bool:
        return self._start is not None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


@dataclass
class Timer:
    """One-shot context manager recording a single duration.

    ``Timer`` is for measuring one block; :class:`Stopwatch` is for
    accumulating many.
    """

    seconds: float = field(default=0.0)
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.seconds = time.perf_counter() - self._start
