"""Durable file writes.

Checkpoint files are the crash-recovery story of the serving tier: a
torn write (process killed mid-``write``, disk full halfway) must never
leave a half-checkpoint that a restart then tries to restore.
:func:`atomic_write_bytes` gives every checkpoint save path the same
guarantee: readers observe either the old complete file or the new
complete file, never a prefix of the new one.

The recipe is the classic POSIX one: write the payload to a temporary
file in the *same directory* (so the final rename cannot cross a
filesystem boundary), flush and ``fsync`` the temporary file so the
bytes are on disk before the rename publishes them, then
``os.replace`` — an atomic rename that overwrites any existing file.
The temporary file is unlinked on any failure, so aborted writes leave
no debris next to the real checkpoints.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text"]


def atomic_write_bytes(path: str | Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (write-tmp + ``os.replace``).

    The payload is fsynced before the rename, so after this returns the
    new contents survive a crash; a reader racing the write sees either
    the previous file or the complete new one.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(
    path: str | Path, text: str, encoding: str = "utf-8"
) -> None:
    """:func:`atomic_write_bytes` for text payloads."""
    atomic_write_bytes(path, text.encode(encoding))
