"""Shared utilities: RNG management, timing, and table rendering."""

from repro.utils.io import atomic_write_bytes, atomic_write_text
from repro.utils.rng import RngFactory, derive_seed, ensure_rng
from repro.utils.tables import format_sections, format_table
from repro.utils.timer import Stopwatch, Timer

__all__ = [
    "RngFactory",
    "atomic_write_bytes",
    "atomic_write_text",
    "derive_seed",
    "ensure_rng",
    "format_sections",
    "format_table",
    "Stopwatch",
    "Timer",
]
