"""Fixed-width text rendering of result tables.

The experiment harness reports every paper table as plain text with the
same row/column layout as the paper, so outputs can be compared side by
side. This module knows nothing about experiments; it only formats.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_sections"]


def _fmt_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Floats are formatted with ``precision`` decimals; everything else is
    ``str()``-ed. Columns are sized to their widest cell.
    """
    str_rows = [[_fmt_cell(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    lines.append(render_row(list(headers)))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def format_sections(
    headers: Sequence[str],
    sections: Sequence[tuple[str, Sequence[Sequence[object]]]],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render several titled sections sharing one header row.

    Mirrors the paper's tables, which stack an "Absolute Relative Error"
    block, a "Mean Absolute Relative Error" block and a "Running Time"
    block under a single column header.
    """
    parts: list[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    for i, (section_title, rows) in enumerate(sections):
        table = format_table(headers, rows, title=section_title,
                             precision=precision)
        parts.append(table)
        if i != len(sections) - 1:
            parts.append("")
    return "\n".join(parts)
