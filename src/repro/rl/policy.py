"""Deployable weight policies.

After DDPG training, only the actor matters at inference time; the
paper "hardcodes the parameters θ = {W, b}" into its C++ runtime. The
:class:`Policy` here is the same idea: a frozen copy of the actor's
single linear layer, evaluated with one dot product per edge, with
``.npz`` save/load so trained policies can ship with experiments.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import PolicyError
from repro.rl.networks import ActorNetwork

__all__ = ["Policy"]


class Policy:
    """A frozen actor: action(s) = ReLU(w · s + b) + 1.

    Attributes:
        weights: the actor weight vector, shape (state_dim,).
        bias: the actor bias (scalar).
        metadata: provenance (pattern name, feature settings, training
            parameters) persisted alongside the parameters.
    """

    def __init__(
        self,
        weights: np.ndarray,
        bias: float,
        metadata: dict | None = None,
    ) -> None:
        weights = np.asarray(weights, dtype=np.float64).reshape(-1)
        if weights.size < 1:
            raise PolicyError("policy weights must be non-empty")
        if not np.all(np.isfinite(weights)) or not np.isfinite(bias):
            raise PolicyError("policy parameters must be finite")
        self.weights = weights
        self.bias = float(bias)
        self.metadata = dict(metadata or {})

    @property
    def state_dim(self) -> int:
        return int(self.weights.size)

    def action(self, state: np.ndarray) -> float:
        """Eq. (27) with the +1 offset: always >= 1."""
        state = np.asarray(state, dtype=np.float64).reshape(-1)
        if state.size != self.weights.size:
            raise PolicyError(
                f"state dim {state.size} != policy dim {self.weights.size}"
            )
        pre = float(self.weights @ state) + self.bias
        return (pre if pre > 0.0 else 0.0) + 1.0

    @classmethod
    def from_actor(
        cls, actor: ActorNetwork, metadata: dict | None = None
    ) -> "Policy":
        """Freeze a trained actor network into a deployable policy."""
        weight = actor.linear.weight.value.reshape(-1).copy()
        bias = float(actor.linear.bias.value.reshape(-1)[0])
        return cls(weight, bias, metadata)

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist to an ``.npz`` file (parameters + JSON metadata)."""
        np.savez(
            Path(path),
            weights=self.weights,
            bias=np.float64(self.bias),
            metadata=np.bytes_(json.dumps(self.metadata).encode("utf-8")),
        )

    @classmethod
    def load(cls, path: str | Path) -> "Policy":
        """Load a policy saved by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise PolicyError(f"policy file not found: {path}")
        with np.load(path, allow_pickle=False) as data:
            try:
                weights = data["weights"]
                bias = float(data["bias"])
                metadata = json.loads(bytes(data["metadata"]).decode("utf-8"))
            except KeyError as exc:
                raise PolicyError(f"malformed policy file {path}: {exc}") from exc
        return cls(weights, bias, metadata)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Policy(dim={self.state_dim}, bias={self.bias:.4f}, "
            f"metadata={self.metadata})"
        )
