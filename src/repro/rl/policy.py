"""Deployable weight policies.

After DDPG training, only the actor matters at inference time; the
paper "hardcodes the parameters θ = {W, b}" into its C++ runtime. The
:class:`Policy` here is the same idea: a frozen copy of the actor's
single linear layer, evaluated with one dot product per edge, with
``.npz`` save/load so trained policies can ship with experiments.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np

from repro.errors import PolicyError
from repro.rl.networks import ActorNetwork
from repro.utils.io import atomic_write_bytes

__all__ = ["Policy", "FrozenPolicy"]


class Policy:
    """A frozen actor: action(s) = ReLU(w · s + b) + 1.

    Attributes:
        weights: the actor weight vector, shape (state_dim,).
        bias: the actor bias (scalar).
        metadata: provenance (pattern name, feature settings, training
            parameters) persisted alongside the parameters.
    """

    def __init__(
        self,
        weights: np.ndarray,
        bias: float,
        metadata: dict | None = None,
    ) -> None:
        weights = np.asarray(weights, dtype=np.float64).reshape(-1)
        if weights.size < 1:
            raise PolicyError("policy weights must be non-empty")
        if not np.all(np.isfinite(weights)) or not np.isfinite(bias):
            raise PolicyError("policy parameters must be finite")
        self.weights = weights
        self.bias = float(bias)
        self.metadata = dict(metadata or {})

    @property
    def state_dim(self) -> int:
        return int(self.weights.size)

    def action(self, state: np.ndarray) -> float:
        """Eq. (27) with the +1 offset: always >= 1."""
        state = np.asarray(state, dtype=np.float64).reshape(-1)
        if state.size != self.weights.size:
            raise PolicyError(
                f"state dim {state.size} != policy dim {self.weights.size}"
            )
        pre = float(self.weights @ state) + self.bias
        return (pre if pre > 0.0 else 0.0) + 1.0

    @classmethod
    def from_actor(
        cls, actor: ActorNetwork, metadata: dict | None = None
    ) -> "Policy":
        """Freeze a trained actor network into a deployable policy."""
        weight = actor.linear.weight.value.reshape(-1).copy()
        bias = float(actor.linear.bias.value.reshape(-1)[0])
        return cls(weight, bias, metadata)

    def freeze(self) -> "FrozenPolicy":
        """Return the serving-grade :class:`FrozenPolicy` of this actor."""
        return FrozenPolicy(self.weights, self.bias, self.metadata)

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist to an ``.npz`` file (parameters + JSON metadata).

        The archive is built in memory and written atomically
        (write-tmp + ``os.replace``), so a crash mid-save never leaves
        a truncated policy file. Like ``np.savez``, a ``.npz`` suffix
        is appended when the path does not already carry one.
        """
        path = Path(path)
        if not path.name.endswith(".npz"):
            path = path.with_name(path.name + ".npz")
        buffer = io.BytesIO()
        np.savez(
            buffer,
            weights=self.weights,
            bias=np.float64(self.bias),
            metadata=np.bytes_(json.dumps(self.metadata).encode("utf-8")),
        )
        atomic_write_bytes(path, buffer.getvalue())

    @classmethod
    def load(cls, path: str | Path) -> "Policy":
        """Load a policy saved by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise PolicyError(f"policy file not found: {path}")
        with np.load(path, allow_pickle=False) as data:
            try:
                weights = data["weights"]
                bias = float(data["bias"])
                metadata = json.loads(bytes(data["metadata"]).decode("utf-8"))
            except KeyError as exc:
                raise PolicyError(f"malformed policy file {path}: {exc}") from exc
        return cls(weights, bias, metadata)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{type(self).__name__}(dim={self.state_dim}, "
            f"bias={self.bias:.4f}, metadata={self.metadata})"
        )


class FrozenPolicy(Policy):
    """A :class:`Policy` with a pinned evaluation order for serving.

    The serving contract of the block-weight protocol is that the same
    state produces the *bit-identical* weight whether it is evaluated
    one edge at a time (the kernel's scalar serving path, the legacy
    context path) or as a whole block (``actions``). The base class's
    ``weights @ state`` goes through BLAS, whose accumulation grouping
    is unspecified; this subclass evaluates the dot product as an
    explicit left-to-right scalar chain and the block method as the
    elementwise column accumulation of exactly that chain, so all three
    routes perform the same IEEE operations in the same order.

    ``.npz`` round-trips through the inherited :meth:`Policy.save` /
    :meth:`Policy.load` (the format stores only parameters + metadata,
    so ``FrozenPolicy.load(...)`` rehydrates the serving class).
    """

    def __init__(
        self,
        weights: np.ndarray,
        bias: float,
        metadata: dict | None = None,
    ) -> None:
        Policy.__init__(self, weights, bias, metadata)
        #: Python-float copies of the parameters: the scalar serving
        #: chain stays in pure-CPython float arithmetic (bit-identical
        #: to the numpy scalar ops, without per-element ufunc dispatch).
        self._wlist = self.weights.tolist()

    def action(self, state: np.ndarray) -> float:
        """Eq. (27) with the +1 offset, fixed-order accumulation."""
        state = np.asarray(state, dtype=np.float64).reshape(-1)
        if state.size != self.weights.size:
            raise PolicyError(
                f"state dim {state.size} != policy dim {self.weights.size}"
            )
        return self.action_from_values(state.tolist())

    def action_from_values(self, values) -> float:
        """The scalar serving chain over a list of Python floats.

        No dimension check — the kernel's serving path validates once
        at bind time and calls this with trusted per-event features.
        """
        acc = 0.0
        for w, s in zip(self._wlist, values):
            acc += w * s
        pre = acc + self.bias
        return (pre if pre > 0.0 else 0.0) + 1.0

    def actions(self, states: np.ndarray) -> np.ndarray:
        """Block serving: ``relu(S @ W + b) + 1`` over ``(n, dim)`` states.

        Evaluated by column accumulation — elementwise the same
        multiply/add sequence as :meth:`action_from_values` — so
        ``actions(S)[k]`` is bit-identical to ``action(S[k])``.
        """
        states = np.asarray(states, dtype=np.float64)
        if states.ndim != 2 or states.shape[1] != self.weights.size:
            raise PolicyError(
                f"states must have shape (n, {self.weights.size}), got "
                f"{states.shape}"
            )
        acc = np.zeros(states.shape[0], dtype=np.float64)
        for j, w in enumerate(self._wlist):
            acc += w * states[:, j]
        acc += self.bias
        np.maximum(acc, 0.0, out=acc)
        acc += 1.0
        return acc
