"""Experience replay buffer (Section V-A: capacity 10,000, batch 128)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import ensure_rng

__all__ = ["ReplayBuffer", "TransitionBatch"]


@dataclass(frozen=True)
class TransitionBatch:
    """A sampled mini-batch of transitions (s, a, r, s')."""

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray

    def __len__(self) -> int:
        return self.states.shape[0]


class ReplayBuffer:
    """A fixed-capacity circular buffer of MDP transitions."""

    def __init__(
        self,
        state_dim: int,
        capacity: int = 10_000,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if state_dim < 1:
            raise ConfigurationError(f"state_dim must be >= 1, got {state_dim}")
        self.capacity = capacity
        self.state_dim = state_dim
        self.rng = ensure_rng(rng)
        self._states = np.zeros((capacity, state_dim))
        self._actions = np.zeros((capacity, 1))
        self._rewards = np.zeros((capacity, 1))
        self._next_states = np.zeros((capacity, state_dim))
        self._size = 0
        self._cursor = 0

    def push(
        self,
        state: np.ndarray,
        action: float,
        reward: float,
        next_state: np.ndarray,
    ) -> None:
        """Store one transition, overwriting the oldest when full."""
        i = self._cursor
        self._states[i] = state
        self._actions[i, 0] = action
        self._rewards[i, 0] = reward
        self._next_states[i] = next_state
        self._cursor = (self._cursor + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size: int) -> TransitionBatch:
        """Sample ``batch_size`` transitions uniformly with replacement."""
        if self._size == 0:
            raise ConfigurationError("cannot sample from an empty buffer")
        idx = self.rng.integers(0, self._size, size=batch_size)
        return TransitionBatch(
            states=self._states[idx],
            actions=self._actions[idx],
            rewards=self._rewards[idx],
            next_states=self._next_states[idx],
        )

    def __len__(self) -> int:
        return self._size
