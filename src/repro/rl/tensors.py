"""Parameter containers and initialisers for the from-scratch networks.

The RL stack deliberately avoids external deep-learning frameworks: the
paper's deployed model is a single linear layer, and its training setup
(DDPG with a 10-neuron critic) is small enough that explicit
numpy forward/backward passes are both faster to ship and easier to
verify with finite-difference tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter", "glorot_uniform", "zeros"]


class Parameter:
    """A trainable array with an accumulated gradient."""

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    def copy_from(self, other: "Parameter") -> None:
        """Hard copy of another parameter's value (target-network init)."""
        self.value[...] = other.value

    def soft_update_from(self, other: "Parameter", tau: float) -> None:
        """Polyak update: value <- tau * other + (1 - tau) * value."""
        self.value *= 1.0 - tau
        self.value += tau * other.value

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Parameter(name={self.name!r}, shape={self.shape})"


def glorot_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a (fan_out, fan_in) matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_out, fan_in))


def zeros(*shape: int) -> np.ndarray:
    """Convenience zero initialiser."""
    return np.zeros(shape, dtype=np.float64)
