"""Optimisers: Adam (the paper's choice) and SGD.

Both operate on lists of :class:`~repro.rl.tensors.Parameter` and apply
accumulated gradients in place.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rl.tensors import Parameter

__all__ = ["Adam", "SGD"]


class SGD:
    """Plain stochastic gradient descent (optionally with momentum)."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        if lr <= 0.0:
            raise ConfigurationError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for p, vel in zip(self.parameters, self._velocity):
            if self.momentum:
                vel *= self.momentum
                vel += p.grad
                p.value -= self.lr * vel
            else:
                p.value -= self.lr * p.grad

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


class Adam:
    """Adam with bias correction (Kingma & Ba), lr 1e-3 as in the paper."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0.0:
            raise ConfigurationError(f"lr must be positive, got {lr}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError("betas must be in [0, 1)")
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * (p.grad * p.grad)
            m_hat = m / bias1
            v_hat = v / bias2
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()
